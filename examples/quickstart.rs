//! Quickstart: tune a simulated PostgreSQL for TPC-H with λ-Tune.
//!
//! ```sh
//! cargo run --release -p lambda-tune --example quickstart
//! ```
//!
//! The example walks the full pipeline: build a workload, stand up the
//! simulated DBMS, run λ-Tune with the simulated LLM, and compare the
//! winning configuration against the defaults.

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_common::Secs;
use lt_dbms::{Dbms, Hardware, SimDb};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Benchmark;

fn main() {
    // 1. Load a benchmark workload: catalog (schema + statistics) and the
    //    22 TPC-H queries at scale factor 1.
    let workload = Benchmark::TpchSf1.load();
    println!(
        "workload: {} — {} queries over {} tables (~{:.1} GB)",
        workload.name,
        workload.len(),
        workload.catalog.tables().len(),
        workload.catalog.total_bytes() as f64 / (1u64 << 30) as f64,
    );

    // 2. Stand up the simulated DBMS on the paper's hardware (61 GB RAM,
    //    8 cores). All times below are simulated seconds.
    let mut db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        42, // seed: fixes misestimation patterns and execution noise
    );

    // 3. Measure the default configuration for reference.
    let mut reference = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        42,
    );
    let mut default_time = Secs::ZERO;
    for q in &workload.queries {
        default_time += reference.execute(&q.parsed, Secs::INFINITY).time;
    }
    println!("default configuration: workload runs in {default_time:.1}");

    // 4. Run λ-Tune: compress the workload into a prompt, sample k = 5
    //    configurations from the (simulated) LLM, select the best with
    //    geometric timeouts.
    let llm = LlmClient::new(SimulatedLlm::new());
    let options = LambdaTuneOptions {
        seed: 42,
        ..Default::default()
    };
    let result = LambdaTune::new(options)
        .tune(&mut db, &workload, &llm)
        .expect("tuning succeeds");

    let best = result.best_config.expect("one configuration completed");
    println!(
        "\nλ-Tune finished in {:.0} of tuning time ({} LLM calls, ~${:.2} in fees):",
        result.tuning_time,
        result.llm_usage.calls,
        result.llm_usage.cost_usd(),
    );
    println!(
        "  best workload time: {:.1}  (default: {default_time:.1})",
        result.best_time
    );
    println!(
        "  speedup: {:.1}x",
        default_time.as_f64() / result.best_time.as_f64()
    );

    println!("\nwinning configuration script:");
    for line in best.to_script(Dbms::Postgres, db.catalog()).lines() {
        println!("  {line}");
    }
}
