//! Using λ-Tune and the what-if index advisors as pure index
//! recommendation tools on the Join Order Benchmark (the paper's Figure 8
//! scenario), and inspecting how the optimizer's plans change.
//!
//! ```sh
//! cargo run --release -p lambda-tune --example index_advisor
//! ```

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_common::Secs;
use lt_dbms::{Dbms, Hardware, SimDb};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Benchmark;

fn main() {
    let workload = Benchmark::Job.load();
    let mut db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        9,
    );

    // Run λ-Tune restricted to index recommendations (no knob changes).
    let llm = LlmClient::new(SimulatedLlm::new());
    let options = LambdaTuneOptions {
        indexes_only: true,
        seed: 9,
        ..Default::default()
    };
    let result = LambdaTune::new(options)
        .tune(&mut db, &workload, &llm)
        .expect("tuning succeeds");
    let config = result.best_config.expect("a configuration completed");

    println!(
        "λ-Tune recommends {} indexes for JOB:",
        config.index_specs().len()
    );
    for spec in config.index_specs() {
        let table = &workload.catalog.table(spec.table).name;
        let cols: Vec<&str> = spec
            .columns
            .iter()
            .map(|c| workload.catalog.column(*c).name.as_str())
            .collect();
        println!("  CREATE INDEX ON {table} ({})", cols.join(", "));
    }

    // Show a before/after plan for one query.
    let q = &workload.queries[1]; // JOB family 2a
    let mut before_db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        9,
    );
    println!(
        "\nplan for JOB {} without indexes:\n{}",
        q.label,
        before_db.explain(&q.parsed).explain()
    );
    for spec in config.index_specs() {
        before_db.create_index(spec);
    }
    println!(
        "with λ-Tune's indexes:\n{}",
        before_db.explain(&q.parsed).explain()
    );

    // Measure the whole workload with and without the indexes.
    let measure = |specs: &[&lt_dbms::IndexSpec]| -> Secs {
        let mut m = SimDb::new(
            Dbms::Postgres,
            workload.catalog.clone(),
            Hardware::p3_2xlarge(),
            9,
        );
        for s in specs {
            m.create_index(s);
        }
        let mut total = Secs::ZERO;
        for wq in &workload.queries {
            total += m.execute(&wq.parsed, Secs::INFINITY).time;
        }
        total
    };
    let without = measure(&[]);
    let with = measure(&config.index_specs());
    println!("workload: {without:.1} without indexes → {with:.1} with λ-Tune's indexes");
}
