//! Tuning TPC-H on both PostgreSQL and MySQL, inspecting the pipeline
//! stage by stage: snippet extraction, workload compression, the generated
//! prompt, the sampled configurations and the selection trajectory.
//!
//! ```sh
//! cargo run --release -p lambda-tune --example tune_tpch
//! ```

use lambda_tune::{extract_snippets, SelectorOptions};
use lambda_tune::{Compressor, ConfigSelector, Evaluator, PromptBuilder};
use lt_common::derive_seed;
use lt_dbms::{Configuration, Dbms, Hardware, SimDb};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Benchmark;

fn main() {
    let workload = Benchmark::TpchSf1.load();
    for dbms in [Dbms::Postgres, Dbms::Mysql] {
        println!("================ {dbms} ================");
        let mut db = SimDb::new(dbms, workload.catalog.clone(), Hardware::p3_2xlarge(), 7);

        // Stage 1: extract valued join snippets via EXPLAIN (§3.2).
        let snippets = extract_snippets(&db, &workload);
        println!("\n{} join snippets; the 5 most valuable:", snippets.len());
        let compressor = Compressor::new(db.catalog());
        for s in snippets.iter().take(5) {
            println!(
                "  {} ⋈ {}   V(p) = {:.0}",
                compressor.render_column(s.left),
                compressor.render_column(s.right),
                s.value
            );
        }

        // Stage 2: ILP-compress into a token budget (§3.3).
        let compressed = compressor
            .compress(&snippets, 300)
            .expect("compression succeeds");
        println!(
            "\ncompressed workload: {} lines, {} tokens, {:.0}% of join value:",
            compressed.lines.len(),
            compressed.tokens,
            compressed.coverage() * 100.0
        );
        for line in compressed.lines.iter().take(4) {
            println!("  {line}");
        }

        // Stage 3: build the prompt (§3.1, Listing 1) and sample k = 3
        // configurations.
        let prompt = PromptBuilder::new(dbms, db.hardware()).build(&compressed);
        println!(
            "\nprompt is {} tokens; sampling 3 configurations…",
            lt_llm::count_tokens(&prompt)
        );
        let llm = LlmClient::new(SimulatedLlm::new());
        let configs: Vec<Configuration> = (0..3)
            .map(|i| {
                let response = llm
                    .complete(&prompt, 0.7, derive_seed(7, i))
                    .expect("simulated model never fails");
                Configuration::parse(&response, dbms, db.catalog())
            })
            .collect();
        for (i, c) in configs.iter().enumerate() {
            println!(
                "  config {i}: {} knob changes, {} indexes",
                c.knob_changes().count(),
                c.index_specs().len()
            );
        }

        // Stage 4: select the best configuration (§4, Algorithm 2).
        let selector = ConfigSelector::new(SelectorOptions::default(), Evaluator::default());
        let selection = selector.select(&mut db, &workload, &configs);
        match selection.best {
            Some(i) => println!(
                "\nwinner: config {i} — workload in {:.1} after {} rounds",
                selection.best_time, selection.rounds
            ),
            None => println!("\nno configuration completed (try a larger timeout)"),
        }
        for p in &selection.trajectory {
            println!(
                "  at tuning time {:.0}: best workload time {:.1}",
                p.opt_time, p.best_workload_time
            );
        }
        println!();
    }
}
