//! Running λ-Tune with individual components disabled — the programmatic
//! version of the paper's §6.4 ablation study, on TPC-DS.
//!
//! ```sh
//! cargo run --release -p lambda-tune --example ablation
//! ```

use lambda_tune::{LambdaTune, LambdaTuneOptions, SelectorOptions};
use lt_dbms::{Dbms, Hardware, SimDb};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Benchmark;

fn run(label: &str, workload: &lt_workloads::Workload, options: LambdaTuneOptions) {
    let mut db = SimDb::new(
        Dbms::Postgres,
        workload.catalog.clone(),
        Hardware::p3_2xlarge(),
        21,
    );
    let llm = LlmClient::new(SimulatedLlm::new());
    let result = LambdaTune::new(options)
        .tune(&mut db, workload, &llm)
        .expect("tuning succeeds");
    println!(
        "{label:<28} tuning {:>7.0}  best {:>7.1}  workload tokens {:>5}  LLM ${:.2}",
        result.tuning_time,
        result.best_time,
        result.workload_tokens,
        result.llm_usage.cost_usd()
    );
}

fn main() {
    let workload = Benchmark::TpcdsSf1.load();
    println!(
        "λ-Tune ablations on {} ({} queries)\n",
        workload.name,
        workload.len()
    );
    let base = LambdaTuneOptions {
        seed: 21,
        ..Default::default()
    };

    run("full pipeline", &workload, base);
    run(
        "no adaptive timeout",
        &workload,
        LambdaTuneOptions {
            selector: SelectorOptions {
                adaptive_timeout: false,
                ..base.selector
            },
            ..base
        },
    );
    run(
        "no query scheduler",
        &workload,
        LambdaTuneOptions {
            use_scheduler: false,
            ..base
        },
    );
    run(
        "obfuscated workload",
        &workload,
        LambdaTuneOptions {
            obfuscate: true,
            ..base
        },
    );
    run(
        "no compressor (full SQL)",
        &workload,
        LambdaTuneOptions {
            use_compressor: false,
            token_budget: Some(6000),
            ..base
        },
    );
    run(
        "tiny token budget (64)",
        &workload,
        LambdaTuneOptions {
            token_budget: Some(64),
            ..base
        },
    );
    run(
        "parameters only",
        &workload,
        LambdaTuneOptions {
            params_only: true,
            ..base
        },
    );
    run(
        "indexes only",
        &workload,
        LambdaTuneOptions {
            indexes_only: true,
            ..base
        },
    );
}
