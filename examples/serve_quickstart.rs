//! Serving quickstart: run λ-Tune as a service and tune over HTTP.
//!
//! ```sh
//! cargo run --release -p lt-serve --example serve_quickstart
//! ```
//!
//! Starts an in-process `lt-serve` server on a loopback port, submits one
//! tuning session with plain HTTP requests, polls it to completion, and
//! prints the winning configuration script — the same round trip a curl
//! client would make against a standalone `lt-serve` daemon.

use lt_common::json::parse;
use lt_serve::http::request;
use lt_serve::{start, ServerConfig};
use std::time::Duration;

fn main() {
    // 1. Start the service: 2 tuning workers behind a bounded job queue,
    //    bound to a free loopback port.
    let mut server = start(ServerConfig::default()).expect("bind loopback");
    let addr = server.addr();
    println!("lt-serve listening on http://{addr}");

    // 2. Submit a session. The body is the same JSON you would pass with
    //    `curl -X POST http://…/sessions -d '…'`; the seed pins the run.
    let body = r#"{"benchmark": "tpch-sf1", "seed": 42, "num_configs": 3}"#;
    let (status, response) = request(addr, "POST", "/sessions", Some(body)).expect("submit");
    assert_eq!(status, 202, "unexpected submit response: {response}");
    let id = parse(&response)
        .ok()
        .and_then(|doc| doc.get("id")?.as_i64())
        .expect("submit response carries the session id");
    println!("submitted session {id}: {}", body.trim());

    // 3. Poll the status document until the state machine reaches a
    //    terminal state, watching the trajectory grow as the selector runs.
    let state = loop {
        let (status, response) =
            request(addr, "GET", &format!("/sessions/{id}"), None).expect("poll");
        assert_eq!(status, 200, "unexpected status response: {response}");
        let doc = parse(&response).expect("status document is JSON");
        let state = doc
            .get("state")
            .and_then(|v| v.as_str())
            .expect("status document carries a state")
            .to_string();
        let improvements = doc
            .get("trajectory")
            .and_then(|v| v.as_array())
            .map_or(0, |points| points.len());
        println!("  state: {state} ({improvements} improvements so far)");
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            break state;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(state, "done", "session did not finish cleanly");

    // 4. Fetch the result: winning script plus its cost scaled to the
    //    default configuration (lower is better; 1.0 = no improvement).
    let (status, response) =
        request(addr, "GET", &format!("/sessions/{id}/config"), None).expect("fetch config");
    assert_eq!(status, 200, "unexpected config response: {response}");
    let doc = parse(&response).expect("config document is JSON");
    let scaled = doc
        .get("scaled_cost")
        .and_then(|v| v.as_f64())
        .unwrap_or(1.0);
    println!("\nscaled cost vs default configuration: {scaled:.3}");
    println!("winning configuration script:");
    for line in doc
        .get("script")
        .and_then(|v| v.as_str())
        .expect("config document carries the script")
        .lines()
    {
        println!("  {line}");
    }

    // 5. Graceful shutdown: drains the worker pool before returning.
    server.shutdown();
    println!("\nserver drained and stopped");
}
