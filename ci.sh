#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
# Steps, in the same order the workflow runs them:
#   1. cargo build --release
#   2. cargo fmt --check
#   3. cargo clippy --all-targets -- -D warnings
#   4. cargo test -q
#   5. determinism gate: fig6 + table4 + fig4 twice (sequential vs
#      parallel eval matrix), results/*.json must match byte-for-byte
#   6. trace gate: LT_TRACE=1 fig6 must emit a trace whose per-phase
#      self-times sum to the run wall time (checked by trace_check)
#   7. serve smoke gate: lt-serve-load --smoke runs real sessions
#      through the HTTP service over loopback and checks /metrics
#   8. planner smoke: planner_bench --smoke must run to completion
#      (timing numbers are informational; the enumerator property
#      suite gating correctness already ran under step 4)
#   9. drift smoke: drift_bench --smoke must pass its own acceptance
#      bounds (zero false alarms, bounded detection, warm-start budget)
#  10. fleet smoke: fleet_bench --smoke must pass its acceptance bounds
#      (cache replay byte-identity, batched-sampling identity, transfer
#      quality) and emit a trace_check-clean sidecar; its smoke JSON is
#      also part of the determinism gate in step 5
set -euo pipefail
cd "$(dirname "$0")"

step() { echo; echo "=== $* ==="; }

step "build (release)"
cargo build --release

step "rustfmt"
cargo fmt --check

step "clippy"
cargo clippy --all-targets -- -D warnings

step "tests"
cargo test -q

step "determinism gate (sequential vs parallel bench matrix)"
export LT_TRIALS=1 LT_SEED=42
rm -rf results/.ci-seq && mkdir -p results/.ci-seq
LT_BENCH_THREADS=1 ./target/release/fig6 > /dev/null
LT_BENCH_THREADS=1 ./target/release/table4 > /dev/null
LT_BENCH_THREADS=1 ./target/release/fig4 > /dev/null
LT_BENCH_THREADS=1 ./target/release/drift_bench > /dev/null
LT_BENCH_THREADS=1 ./target/release/fleet_bench --smoke > /dev/null
cp results/fig6.json results/table4.json results/fig4.json results/BENCH_drift.json results/BENCH_fleet.smoke.json results/.ci-seq/
LT_BENCH_THREADS=4 ./target/release/fig6 > /dev/null
LT_BENCH_THREADS=4 ./target/release/table4 > /dev/null
LT_BENCH_THREADS=4 ./target/release/fig4 > /dev/null
LT_BENCH_THREADS=4 ./target/release/drift_bench > /dev/null
LT_BENCH_THREADS=4 ./target/release/fleet_bench --smoke > /dev/null
for f in fig6.json table4.json fig4.json BENCH_drift.json BENCH_fleet.smoke.json; do
    if ! cmp -s "results/.ci-seq/$f" "results/$f"; then
        echo "DETERMINISM FAILURE: results/$f differs between sequential and parallel runs" >&2
        diff "results/.ci-seq/$f" "results/$f" >&2 || true
        exit 1
    fi
    echo "results/$f identical across thread counts"
done
rm -rf results/.ci-seq

step "trace gate (LT_TRACE=1 fig6 + trace_check)"
LT_TRACE=1 LT_BENCH_THREADS=1 ./target/release/fig6 > /dev/null
./target/release/trace_check results/fig6.trace.json

step "serve smoke gate (lt-serve-load --smoke)"
./target/release/lt-serve-load --smoke

step "planner smoke (planner_bench --smoke, timing informational)"
./target/release/planner_bench --smoke

step "drift smoke (drift_bench --smoke, acceptance bounds gate)"
./target/release/drift_bench --smoke

step "fleet smoke (fleet_bench --smoke + trace_check on its sidecar)"
LT_BENCH_THREADS=1 ./target/release/fleet_bench --smoke
./target/release/trace_check results/BENCH_fleet.trace.json

echo
echo "ci.sh: all gates passed"
