#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
# The workflow runs these gates as parallel jobs; this script runs the
# same gate functions sequentially, or a single one via `--gate NAME`
# (which is exactly what each workflow job invokes):
#
#   build        cargo build --release
#   fmt          cargo fmt --check
#   clippy       cargo clippy --all-targets -- -D warnings
#   test         cargo test -q
#   determinism  every deterministic results file produced twice
#                (LT_BENCH_THREADS=1 vs =4, smoke runs repeated) must
#                match byte-for-byte: fig6/table4/fig4, drift full +
#                smoke, fleet smoke, serve-load smoke, crash smoke
#   trace        LT_TRACE=1 fig6 must emit a trace whose per-phase
#                self-times sum to the run wall time (trace_check)
#   serve        lt-serve-load --smoke: real sessions through the HTTP
#                service over loopback, /metrics checked
#   planner      planner_bench --smoke runs to completion (timing is
#                informational; enumerator properties gate under test)
#   drift        drift_bench --smoke acceptance bounds (zero false
#                alarms, bounded detection, warm-start budget)
#   fleet        fleet_bench --smoke acceptance bounds + trace_check
#                on its sidecar
#   crash        crash-bench --smoke: crash-injection recovery gate —
#                every enumerated WAL kill point, torn/corrupt logs,
#                and live LT_WAL_CRASH_AT child kills must recover
#                with no lost acknowledged sessions, byte-identical
#                winners, and no duplicated re-tunes
#   store        store_bench --smoke: the real lt-store engine must
#                respond to the knobs (hit rate rises with
#                shared_buffers, spills fall with work_mem), the
#                calibrated cost fit must beat the uncalibrated one,
#                and λ-Tune's winner must beat the default; its trace
#                sidecar must pass trace_check
#   synth        synth_bench --smoke: the seeded workload-synthesis
#                engine — every generated query catalog-valid, mixes
#                within tolerance, synthesized streams through the
#                drift monitor, spec feeds over HTTP, and delta-prompt
#                re-tuning bounded against the blind warm restart;
#                trace sidecar checked with trace_check
#   shard        lt-serve-load --smoke --shards 2: a real coordinator +
#                two shard daemons over loopback, sessions routed via
#                the consistent-hash ring, fleet /metrics aggregated;
#                the determinism gate additionally diffs the smoke
#                result between --shards 1 and --shards 2 (wall-clock
#                fields excluded) — placement must never change winners
#
# Per-gate wall seconds are printed at the end and written to
# results/ci_timing.txt (the workflow uploads it as an artifact).
set -euo pipefail
cd "$(dirname "$0")"

export LT_TRIALS="${LT_TRIALS:-1}" LT_SEED="${LT_SEED:-42}"

gate_build() {
    cargo build --release
}

gate_fmt() {
    cargo fmt --check
}

gate_clippy() {
    cargo clippy --all-targets -- -D warnings
}

gate_test() {
    cargo test -q
}

# Files every determinism run must reproduce byte-for-byte. The first
# three honour LT_BENCH_THREADS; the smoke files assert that repeated
# runs (whatever the ambient parallelism) are byte-identical.
DETERMINISM_FILES="fig6.json table4.json fig4.json BENCH_drift.json \
BENCH_drift.smoke.json BENCH_fleet.smoke.json serve_load.smoke.json \
BENCH_crash.smoke.json BENCH_synth.smoke.json"

determinism_pass() {
    LT_BENCH_THREADS="$1" ./target/release/fig6 > /dev/null
    LT_BENCH_THREADS="$1" ./target/release/table4 > /dev/null
    LT_BENCH_THREADS="$1" ./target/release/fig4 > /dev/null
    LT_BENCH_THREADS="$1" ./target/release/drift_bench > /dev/null
    LT_BENCH_THREADS="$1" ./target/release/drift_bench --smoke > /dev/null
    LT_BENCH_THREADS="$1" ./target/release/fleet_bench --smoke > /dev/null
    LT_BENCH_THREADS="$1" ./target/release/lt-serve-load --smoke > /dev/null
    LT_BENCH_THREADS="$1" ./target/release/crash-bench --smoke > /dev/null
    LT_BENCH_THREADS="$1" ./target/release/store_bench --smoke > /dev/null
    LT_BENCH_THREADS="$1" ./target/release/synth_bench --smoke > /dev/null
}

gate_determinism() {
    rm -rf results/.ci-seq && mkdir -p results/.ci-seq
    determinism_pass 1
    for f in $DETERMINISM_FILES; do cp "results/$f" results/.ci-seq/; done
    cp results/BENCH_store.smoke.json results/.ci-seq/
    determinism_pass 4
    for f in $DETERMINISM_FILES; do
        if ! cmp -s "results/.ci-seq/$f" "results/$f"; then
            echo "DETERMINISM FAILURE: results/$f differs between runs" >&2
            diff "results/.ci-seq/$f" "results/$f" >&2 || true
            exit 1
        fi
        echo "results/$f identical across runs"
    done
    # The store engine's result carries wall-clock diagnostic fields
    # (names start with "wall"); everything else — counters, proxy
    # times, calibration — must be thread-count invariant.
    if ! cmp -s <(grep -v '"wall' results/.ci-seq/BENCH_store.smoke.json) \
                <(grep -v '"wall' results/BENCH_store.smoke.json); then
        echo "DETERMINISM FAILURE: results/BENCH_store.smoke.json differs between runs" >&2
        diff <(grep -v '"wall' results/.ci-seq/BENCH_store.smoke.json) \
             <(grep -v '"wall' results/BENCH_store.smoke.json) >&2 || true
        exit 1
    fi
    echo "results/BENCH_store.smoke.json identical across runs (wall fields excluded)"
    # Sharded serving: the same client set through a 1-shard and a 2-shard
    # fabric must produce identical per-seed winners — placement (which
    # shard a session lands on) must never leak into results.
    ./target/release/lt-serve-load --smoke --shards 1 > /dev/null
    cp results/serve_shard.smoke.json results/.ci-seq/
    ./target/release/lt-serve-load --smoke --shards 2 > /dev/null
    if ! cmp -s <(grep -v '"wall' results/.ci-seq/serve_shard.smoke.json) \
                <(grep -v '"wall' results/serve_shard.smoke.json); then
        echo "DETERMINISM FAILURE: results/serve_shard.smoke.json differs between 1 and 2 shards" >&2
        diff <(grep -v '"wall' results/.ci-seq/serve_shard.smoke.json) \
             <(grep -v '"wall' results/serve_shard.smoke.json) >&2 || true
        exit 1
    fi
    echo "results/serve_shard.smoke.json identical across shard counts (wall fields excluded)"
    rm -rf results/.ci-seq
}

gate_trace() {
    LT_TRACE=1 LT_BENCH_THREADS=1 ./target/release/fig6 > /dev/null
    ./target/release/trace_check results/fig6.trace.json
}

gate_serve() {
    ./target/release/lt-serve-load --smoke
}

gate_planner() {
    ./target/release/planner_bench --smoke
}

gate_drift() {
    ./target/release/drift_bench --smoke
}

gate_fleet() {
    LT_BENCH_THREADS=1 ./target/release/fleet_bench --smoke
    ./target/release/trace_check results/BENCH_fleet.trace.json
}

gate_crash() {
    ./target/release/crash-bench --smoke
}

gate_store() {
    LT_TRACE=1 LT_BENCH_THREADS=1 ./target/release/store_bench --smoke
    ./target/release/trace_check results/BENCH_store.trace.json
}

gate_shard() {
    ./target/release/lt-serve-load --smoke --shards 2
}

gate_synth() {
    LT_TRACE=1 LT_BENCH_THREADS=1 ./target/release/synth_bench --smoke
    ./target/release/trace_check results/BENCH_synth.trace.json
}

ALL_GATES="build fmt clippy test determinism trace serve planner drift fleet crash store shard synth"
TIMING=()

run_gate() {
    local name="$1"
    echo
    echo "=== $name ==="
    local start elapsed
    start=$SECONDS
    "gate_$name"
    elapsed=$((SECONDS - start))
    TIMING+=("$(printf '%-12s %5ss' "$name" "$elapsed")")
}

# Writes the per-gate wall-seconds table. Single-gate runs append so a
# workflow job invoking several gates accumulates one table.
report_timing() {
    echo
    echo "=== gate timing ==="
    mkdir -p results
    if [[ "${1:-}" == "append" ]]; then
        printf '%s\n' "${TIMING[@]}" | tee -a results/ci_timing.txt
    else
        printf '%s\n' "${TIMING[@]}" | tee results/ci_timing.txt
    fi
}

if [[ "${1:-}" == "--gate" ]]; then
    gate="${2:-}"
    if [[ " $ALL_GATES " != *" $gate "* ]]; then
        echo "usage: ci.sh [--gate NAME]; gates: $ALL_GATES" >&2
        exit 2
    fi
    run_gate "$gate"
    report_timing append
    echo
    echo "ci.sh: gate '$gate' passed"
    exit 0
elif [[ $# -gt 0 ]]; then
    echo "usage: ci.sh [--gate NAME]; gates: $ALL_GATES" >&2
    exit 2
fi

for gate in $ALL_GATES; do
    run_gate "$gate"
done
report_timing
echo
echo "ci.sh: all gates passed"
