//! Consistent-hash ring mapping session ids onto shards.
//!
//! The coordinator places every session on one of N shard processes by
//! hashing its session id onto a ring of virtual nodes
//! ([`LT_SHARD_VNODES`](HashRing::from_env_vnodes) per shard, default
//! 64). Virtual nodes smooth the load spread; consistent hashing keeps
//! key movement minimal when the membership changes: when a shard
//! joins, only the keys it takes over move (≈ K/N of them), and every
//! moved key moves *to* the joining shard — no key shuffles between
//! surviving shards. The symmetric property holds on leave.
//!
//! Placement is part of the fabric's determinism story: the ring is a
//! pure function of `(session id, membership, vnodes)`, so replaying
//! the same ids against the same membership reproduces the same
//! placement. The *winner config* never depends on placement at all —
//! the tune is pure in `(request, seed)` — but deterministic placement
//! makes multi-process runs reproducible end to end.

use lt_common::hash_one;

/// Default number of virtual nodes per shard (`LT_SHARD_VNODES`).
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring over shard ids.
///
/// Points are sorted by hash; a key is owned by the first point at or
/// after its hash (wrapping). Ties between shards at the same hash
/// position are broken by shard id, so iteration order of construction
/// never matters.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point_hash, shard_id)`, sorted by `(point_hash, shard_id)`.
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

/// Murmur3's 64-bit finalizer. [`hash_one`] is FxHash — fast and stable,
/// but with weak high-bit diffusion on structurally similar inputs, which
/// is exactly what ring points are. Positions on the ring must be
/// uniform over the whole u64 range or the load spread collapses, so the
/// Fx output gets one strong mixing pass.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

fn point_hash(shard: u32, replica: usize) -> u64 {
    mix(hash_one(&("lt-shard-ring", shard, replica as u64)))
}

fn key_hash(session_id: u64) -> u64 {
    mix(hash_one(&("lt-session-key", session_id)))
}

impl HashRing {
    /// Builds a ring over `shards` with `vnodes` virtual nodes each.
    ///
    /// Duplicate shard ids are ignored. `vnodes` is clamped to at
    /// least 1.
    pub fn new(shards: &[u32], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut seen: Vec<u32> = Vec::new();
        let mut points = Vec::with_capacity(shards.len() * vnodes);
        for &shard in shards {
            if seen.contains(&shard) {
                continue;
            }
            seen.push(shard);
            for replica in 0..vnodes {
                points.push((point_hash(shard, replica), shard));
            }
        }
        points.sort_unstable();
        HashRing { points, vnodes }
    }

    /// Reads `LT_SHARD_VNODES` (default [`DEFAULT_VNODES`]).
    pub fn from_env_vnodes() -> usize {
        std::env::var("LT_SHARD_VNODES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v >= 1)
            .unwrap_or(DEFAULT_VNODES)
    }

    /// Number of distinct shards on the ring.
    pub fn len(&self) -> usize {
        if self.vnodes == 0 {
            return 0;
        }
        self.points.len() / self.vnodes
    }

    /// True when no shards are registered.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The shard owning `session_id`, or `None` on an empty ring.
    pub fn owner(&self, session_id: u64) -> Option<u32> {
        self.owner_filtered(session_id, |_| true)
    }

    /// The shard owning `session_id`, skipping shards for which
    /// `alive` returns false (walks clockwise to the next live owner).
    ///
    /// This is the route-around-failure primitive: a dead shard's keys
    /// spill to their clockwise successors, and revert as soon as the
    /// shard is healthy again.
    pub fn owner_filtered<F: Fn(u32) -> bool>(&self, session_id: u64, alive: F) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = key_hash(session_id);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        for i in 0..n {
            let (_, shard) = self.points[(start + i) % n];
            if alive(shard) {
                return Some(shard);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_common::derive_seed;

    /// Seeded ids exercised by the property tests. Spread over the full
    /// u64 space via `derive_seed` so the ring sees realistic hashes,
    /// not consecutive small integers.
    fn keys(n: u64, seed: u64) -> Vec<u64> {
        (0..n).map(|i| derive_seed(seed, i)).collect()
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(&[], DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(1), None);
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(&[0], DEFAULT_VNODES);
        for k in keys(100, 7) {
            assert_eq!(ring.owner(k), Some(0));
        }
    }

    #[test]
    fn placement_is_deterministic_and_order_independent() {
        let a = HashRing::new(&[0, 1, 2, 3], 32);
        let b = HashRing::new(&[3, 1, 0, 2, 2], 32);
        for k in keys(500, 11) {
            assert_eq!(a.owner(k), b.owner(k));
        }
    }

    /// Load spread: with 10k seeded keys and the default vnode count,
    /// every shard's share stays within ±35% of the fair share for
    /// 1..=8 shards. (The bound is loose enough to be seed-stable and
    /// tight enough to catch a broken hash or sort.)
    #[test]
    fn load_spread_within_bound_for_1_to_8_shards() {
        const KEYS: u64 = 10_000;
        let ids = keys(KEYS, 42);
        for n in 1u32..=8 {
            let shards: Vec<u32> = (0..n).collect();
            let ring = HashRing::new(&shards, DEFAULT_VNODES);
            let mut counts = vec![0u64; n as usize];
            for &k in &ids {
                counts[ring.owner(k).unwrap() as usize] += 1;
            }
            let fair = KEYS as f64 / n as f64;
            for (shard, &c) in counts.iter().enumerate() {
                let ratio = c as f64 / fair;
                assert!(
                    (0.65..=1.35).contains(&ratio),
                    "shard {shard}/{n}: {c} keys vs fair {fair:.0} (ratio {ratio:.3})"
                );
            }
        }
    }

    /// Join: going from N to N+1 shards moves at most ~K/N keys
    /// (with slack for hash variance), and every moved key moves *to*
    /// the joining shard — never between surviving shards.
    #[test]
    fn join_moves_at_most_k_over_n_keys_and_only_to_joiner() {
        const KEYS: u64 = 10_000;
        let ids = keys(KEYS, 1337);
        for n in 1u32..=7 {
            let before = HashRing::new(&(0..n).collect::<Vec<_>>(), DEFAULT_VNODES);
            let after = HashRing::new(&(0..=n).collect::<Vec<_>>(), DEFAULT_VNODES);
            let joiner = n;
            let mut moved = 0u64;
            for &k in &ids {
                let (a, b) = (before.owner(k).unwrap(), after.owner(k).unwrap());
                if a != b {
                    moved += 1;
                    assert_eq!(b, joiner, "key {k} moved {a}->{b}, not to joiner {joiner}");
                }
            }
            // Expected movement is K/(N+1); allow 1.5x slack for
            // vnode placement variance.
            let bound = (KEYS as f64 / (n + 1) as f64 * 1.5) as u64;
            assert!(
                moved <= bound,
                "join {n}->{}: moved {moved} > bound {bound}",
                n + 1
            );
        }
    }

    /// Leave: removing a shard moves exactly the keys it owned, and
    /// every moved key comes *from* the leaver.
    #[test]
    fn leave_moves_only_the_leavers_keys() {
        const KEYS: u64 = 10_000;
        let ids = keys(KEYS, 99);
        for n in 2u32..=8 {
            let before = HashRing::new(&(0..n).collect::<Vec<_>>(), DEFAULT_VNODES);
            let leaver = n - 1;
            let after = HashRing::new(&(0..leaver).collect::<Vec<_>>(), DEFAULT_VNODES);
            let mut moved = 0u64;
            for &k in &ids {
                let (a, b) = (before.owner(k).unwrap(), after.owner(k).unwrap());
                if a != b {
                    moved += 1;
                    assert_eq!(a, leaver, "key {k} moved {a}->{b} but {leaver} left");
                }
            }
            let bound = (KEYS as f64 / n as f64 * 1.5) as u64;
            assert!(moved <= bound, "leave of {leaver}: moved {moved} > {bound}");
        }
    }

    /// Route-around: filtering a dead shard reassigns exactly its keys,
    /// and owners revert when the shard comes back.
    #[test]
    fn owner_filtered_routes_around_dead_shard() {
        let ring = HashRing::new(&[0, 1, 2, 3], DEFAULT_VNODES);
        let ids = keys(2_000, 5);
        let mut rerouted = 0;
        for &k in &ids {
            let healthy = ring.owner(k).unwrap();
            let filtered = ring.owner_filtered(k, |s| s != 2).unwrap();
            assert_ne!(filtered, 2);
            if healthy == 2 {
                rerouted += 1;
            } else {
                assert_eq!(filtered, healthy, "live shard {healthy}'s key {k} moved");
            }
            // Recovery: with every shard alive again the original owner wins.
            assert_eq!(ring.owner_filtered(k, |_| true), Some(healthy));
        }
        assert!(rerouted > 0, "dead shard owned no keys in the sample");
    }

    #[test]
    fn all_shards_dead_yields_none() {
        let ring = HashRing::new(&[0, 1], 8);
        assert_eq!(ring.owner_filtered(7, |_| false), None);
    }
}
