//! `lt-serve`: the tuning service daemon.
//!
//! ```text
//! lt-serve [--addr HOST:PORT] [--workers N] [--queue N] [--conns N]
//!          [--wal-dir DIR]
//! ```
//!
//! Flags override the `LT_SERVE_ADDR` / `LT_SERVE_WORKERS` /
//! `LT_SERVE_QUEUE` / `LT_SERVE_CONNS` / `LT_WAL_DIR` environment
//! variables, which override the defaults (127.0.0.1:7878, 2 workers,
//! queue depth 64, 64 connections, no durability). With `--wal-dir` the
//! daemon keeps a write-ahead session log in `DIR/sessions.wal` and
//! recovers acknowledged sessions from it on startup. Stop with
//! `POST /shutdown` or Ctrl-C.

use lt_serve::ServerConfig;

fn main() {
    let mut config = ServerConfig::from_env();
    if config.addr == "127.0.0.1:0" {
        // The daemon wants a knowable default port; tests and the load
        // generator (which construct ServerConfig directly) keep port 0.
        config.addr = "127.0.0.1:7878".to_string();
    }

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => {
                config.workers = value("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("error: --workers must be a positive integer");
                    std::process::exit(2);
                })
            }
            "--queue" => {
                config.queue_depth = value("--queue").parse().unwrap_or_else(|_| {
                    eprintln!("error: --queue must be a positive integer");
                    std::process::exit(2);
                })
            }
            "--conns" => {
                config.max_connections = value("--conns").parse().unwrap_or_else(|_| {
                    eprintln!("error: --conns must be a positive integer");
                    std::process::exit(2);
                })
            }
            "--wal-dir" => config.wal_dir = Some(value("--wal-dir")),
            "--help" | "-h" => {
                println!(
                    "usage: lt-serve [--addr HOST:PORT] [--workers N] [--queue N] [--conns N] \
                     [--wal-dir DIR]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut server = match lt_serve::start(config.clone()) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("error: cannot bind {}: {err}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "lt-serve listening on http://{} ({} workers, queue {})",
        server.addr(),
        config.workers,
        config.queue_depth
    );
    println!(
        "submit:   curl -X POST http://{}/sessions -d '{{\"benchmark\": \"tpch-sf1\"}}'",
        server.addr()
    );
    println!("shutdown: curl -X POST http://{}/shutdown", server.addr());
    server.wait();
}
