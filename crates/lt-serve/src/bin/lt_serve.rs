//! `lt-serve`: the tuning service daemon — a standalone server, one shard
//! of a fabric, or the coordinator fronting a fabric.
//!
//! ```text
//! lt-serve [--addr HOST:PORT] [--workers N] [--queue N] [--conns N]
//!          [--wal-dir DIR] [--shard-id N]
//! lt-serve --coordinator --shard ID=HOST:PORT [--shard ID=HOST:PORT ...]
//!          [--addr HOST:PORT]
//! ```
//!
//! Server flags override the `LT_SERVE_ADDR` / `LT_SERVE_WORKERS` /
//! `LT_SERVE_QUEUE` / `LT_SERVE_CONNS` / `LT_WAL_DIR` / `LT_SHARD_ID`
//! environment variables, which override the defaults (127.0.0.1:7878,
//! 2 workers, queue depth 64, 64 connections, no durability). With
//! `--wal-dir` the daemon keeps a write-ahead session log in
//! `DIR/sessions.wal` and recovers acknowledged sessions from it on
//! startup. `--shard-id` gives the daemon a shard identity: `/shard/*`
//! control routes and a labelled `/metrics`.
//!
//! With `--coordinator` the daemon instead fronts the listed shards:
//! global admission (fleet-wide quotas answering 429 + `Retry-After`),
//! consistent-hash routing of new sessions, per-session proxying, health
//! probing and aggregated `/metrics`. Coordinator knobs come from
//! `LT_SHARD_VNODES`, `LT_SHARD_PROBE_MS`, `LT_SERVE_TENANT_CAP` and
//! `LT_SERVE_QUEUE` (see `CoordinatorConfig`). Stop either mode with
//! `POST /shutdown` or Ctrl-C.

use lt_serve::{CoordinatorConfig, ServerConfig, ShardSpec};

fn bad_usage(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn parse_shard(spec: &str) -> ShardSpec {
    let Some((id, addr)) = spec.split_once('=') else {
        bad_usage(&format!("--shard wants ID=HOST:PORT, got {spec:?}"));
    };
    let Ok(id) = id.trim().parse() else {
        bad_usage(&format!("--shard id must be an integer, got {id:?}"));
    };
    let Ok(addr) = addr.trim().parse() else {
        bad_usage(&format!("--shard address must be HOST:PORT, got {addr:?}"));
    };
    ShardSpec { id, addr }
}

fn run_coordinator(addr: Option<String>, shards: Vec<ShardSpec>) {
    if shards.is_empty() {
        bad_usage("--coordinator needs at least one --shard ID=HOST:PORT");
    }
    let mut config = CoordinatorConfig::new(shards);
    config.addr = addr.unwrap_or_else(|| {
        std::env::var("LT_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7879".to_string())
    });
    let shard_count = config.shards.len();
    let mut coordinator = match lt_serve::start_coordinator(config.clone()) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("error: cannot start coordinator on {}: {err}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "lt-serve coordinator listening on http://{} ({shard_count} shards, probe every {}ms)",
        coordinator.addr(),
        config.probe_ms
    );
    println!(
        "shutdown: curl -X POST http://{}/shutdown",
        coordinator.addr()
    );
    coordinator.wait();
}

fn main() {
    let mut config = ServerConfig::from_env();
    if config.addr == "127.0.0.1:0" {
        // The daemon wants a knowable default port; tests and the load
        // generator (which construct ServerConfig directly) keep port 0.
        config.addr = "127.0.0.1:7878".to_string();
    }
    let mut coordinator = false;
    let mut coordinator_addr: Option<String> = None;
    let mut shards: Vec<ShardSpec> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| bad_usage(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--coordinator" => coordinator = true,
            "--shard" => shards.push(parse_shard(&value("--shard"))),
            "--addr" => {
                let addr = value("--addr");
                coordinator_addr = Some(addr.clone());
                config.addr = addr;
            }
            "--workers" => {
                config.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| bad_usage("--workers must be a positive integer"))
            }
            "--queue" => {
                config.queue_depth = value("--queue")
                    .parse()
                    .unwrap_or_else(|_| bad_usage("--queue must be a positive integer"))
            }
            "--conns" => {
                config.max_connections = value("--conns")
                    .parse()
                    .unwrap_or_else(|_| bad_usage("--conns must be a positive integer"))
            }
            "--wal-dir" => config.wal_dir = Some(value("--wal-dir")),
            "--shard-id" => {
                config.shard_id = Some(
                    value("--shard-id")
                        .parse()
                        .unwrap_or_else(|_| bad_usage("--shard-id must be an integer")),
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: lt-serve [--addr HOST:PORT] [--workers N] [--queue N] [--conns N] \
                     [--wal-dir DIR] [--shard-id N]\n\
                     \x20      lt-serve --coordinator --shard ID=HOST:PORT [--shard ...] \
                     [--addr HOST:PORT]"
                );
                return;
            }
            other => bad_usage(&format!("unknown flag {other}")),
        }
    }

    if coordinator {
        run_coordinator(coordinator_addr, shards);
        return;
    }
    if !shards.is_empty() {
        bad_usage("--shard only makes sense with --coordinator");
    }

    let mut server = match lt_serve::start(config.clone()) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("error: cannot bind {}: {err}", config.addr);
            std::process::exit(1);
        }
    };
    let shard = config
        .shard_id
        .map(|id| format!(", shard {id}"))
        .unwrap_or_default();
    println!(
        "lt-serve listening on http://{} ({} workers, queue {}{shard})",
        server.addr(),
        config.workers,
        config.queue_depth
    );
    println!(
        "submit:   curl -X POST http://{}/sessions -d '{{\"benchmark\": \"tpch-sf1\"}}'",
        server.addr()
    );
    println!("shutdown: curl -X POST http://{}/shutdown", server.addr());
    server.wait();
}
