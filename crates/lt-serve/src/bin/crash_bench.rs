//! `crash-bench`: deterministic crash-injection harness for the durable
//! session log.
//!
//! ```text
//! crash-bench          # full matrix: every record-prefix kill point,
//!                      # corruption cases, live child kill points;
//!                      # writes results/BENCH_crash.json
//! crash-bench --smoke  # reduced scenario; the CI crash-recovery gate;
//!                      # writes results/BENCH_crash.smoke.json
//! ```
//!
//! Three layers of injection, strongest guarantee first:
//!
//! 1. **Prefix enumeration** — a baseline run records a known scenario
//!    (plain sessions plus one auto-re-tune session driven through a drift
//!    alarm); then for *every* `n`, a fresh server recovers from only the
//!    first `n` log records. A prefix is exactly what a crash between two
//!    fsyncs leaves behind, so this enumerates every kill point once
//!    without racing a real process.
//! 2. **Corruption** — the full log with a torn half-frame appended, and
//!    with a byte flipped mid-file: recovery must truncate to the valid
//!    prefix and satisfy the same invariants.
//! 3. **Live child** — the real `lt-serve` binary with `LT_WAL_CRASH_AT=n`
//!    aborts itself mid-scenario; a clean restart must recover every
//!    session the client had an acknowledgement for.
//!
//! Invariants checked at every kill point: no acknowledged session is
//! lost, every recovered session reaches the same terminal state, winners
//! are byte-identical to the uninterrupted baseline, and re-tunes are
//! never duplicated. Exit status is nonzero on the first violation. The
//! results file holds only deterministic fields (ids, fingerprints,
//! virtual times — no ports, paths or wall-clock durations), so the CI
//! determinism gate diffs it across thread counts.

use lt_common::json::{parse, Value};
use lt_common::wal::read_log;
use lt_common::{hash_one, json};
use lt_fleet::FleetCache;
use lt_serve::http::request;
use lt_serve::{start, ServerConfig, ServerHandle};
use lt_synth::{predicate_templates, Phase};
use lt_workloads::Benchmark;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Seed base for the harness's sessions; chosen to collide with no other
/// test or benchmark (the fleet cache is process-global).
const SEED_BASE: u64 = 7300;
/// Seed of the auto-re-tune session.
const RETUNE_SEED: u64 = 7350;

fn fail(why: &str) -> ! {
    eprintln!("crash-bench FAILED: {why}");
    std::process::exit(1);
}

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lt_crash_{}_{}_{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("mkdir {dir:?}: {e}")));
    dir
}

fn feed_body(sqls: &[String]) -> String {
    let queries: Vec<Value> = sqls.iter().map(|s| Value::String(s.clone())).collect();
    Value::Object(vec![("queries".to_string(), Value::Array(queries))]).to_string_pretty()
}

fn plain_body(i: usize) -> String {
    format!(r#"{{"seed": {}, "num_configs": 2}}"#, SEED_BASE + i as u64)
}

fn retune_body() -> String {
    format!(
        r#"{{"seed": {RETUNE_SEED}, "num_configs": 2, "auto_retune": true,
            "drift": {{"window": 16, "stride": 4, "confirm": 2, "cooldown": 32}}}}"#
    )
}

/// The two feed batches of the scenario: the tuned workload (must not
/// alarm), then the post-shift predicate templates repeated (must alarm).
fn feeds() -> (Vec<String>, Vec<String>) {
    let tpch: Vec<String> = Benchmark::TpchSf1
        .load()
        .queries
        .iter()
        .map(|q| q.sql.clone())
        .collect();
    let templates: Vec<String> = predicate_templates(Phase::After)
        .into_iter()
        .map(|(_, sql)| sql)
        .collect();
    let shifted: Vec<String> = std::iter::repeat_with(|| templates.clone())
        .take(16)
        .flatten()
        .collect();
    (tpch, shifted)
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Value) {
    match request(addr, "GET", path, None) {
        Ok((status, body)) => (
            status,
            parse(&body).unwrap_or_else(|e| fail(&format!("GET {path}: bad JSON: {e}"))),
        ),
        Err(e) => fail(&format!("GET {path}: {e}")),
    }
}

fn wait_terminal(addr: SocketAddr, id: i64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, doc) = get_json(addr, &format!("/sessions/{id}"));
        if status != 200 {
            fail(&format!("session {id} vanished: {status}"));
        }
        let state = doc
            .get("state")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let retuning = doc
            .get("drift")
            .and_then(|d| d.get("retunes"))
            .and_then(Value::as_i64)
            .unwrap_or(0);
        let _ = retuning;
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            return state;
        }
        if Instant::now() > deadline {
            fail(&format!("session {id} stuck in {state}"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Waits until the session is `done` with at least `want` completed
/// re-tunes (a re-tuning session is not terminal yet).
fn wait_retunes(addr: SocketAddr, id: i64, want: i64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, doc) = get_json(addr, &format!("/sessions/{id}"));
        let state = doc.get("state").and_then(Value::as_str).unwrap_or_default();
        let retunes = doc
            .get("drift")
            .and_then(|d| d.get("retunes"))
            .and_then(Value::as_i64)
            .unwrap_or(0);
        if state == "done" && retunes >= want {
            return;
        }
        if Instant::now() > deadline {
            fail(&format!("session {id}: {state} with {retunes} re-tunes"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A session's deterministic outcome: winner fingerprint + virtual times.
#[derive(Debug, Clone, PartialEq)]
struct Snapshot {
    state: String,
    fingerprint: Option<String>,
    best_time: Option<f64>,
    retunes: i64,
}

fn snapshot(addr: SocketAddr, id: i64) -> Snapshot {
    let (_, status_doc) = get_json(addr, &format!("/sessions/{id}"));
    let state = status_doc
        .get("state")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let retunes = status_doc
        .get("drift")
        .and_then(|d| d.get("retunes"))
        .and_then(Value::as_i64)
        .unwrap_or(0);
    let (config_status, config) = get_json(addr, &format!("/sessions/{id}/config"));
    let (fingerprint, best_time) = if config_status == 200 {
        (
            config
                .get("script")
                .and_then(Value::as_str)
                .map(|s| format!("{:016x}", hash_one(s))),
            config.get("best_time_s").and_then(Value::as_f64),
        )
    } else {
        (None, None)
    };
    Snapshot {
        state,
        fingerprint,
        best_time,
        retunes,
    }
}

struct Baseline {
    /// Raw frame payloads of the completed run, in append order.
    payloads: Vec<Vec<u8>>,
    /// Ids of the plain sessions, submission order.
    plain_ids: Vec<i64>,
    /// Id of the auto-re-tune session.
    retune_id: i64,
    /// Final outcome per plain session.
    plain: Vec<Snapshot>,
    /// The re-tune session before the drift feed (0 re-tunes)…
    retune_initial: Snapshot,
    /// …and after the re-tune completed.
    retune_final: Snapshot,
}

fn wal_server(dir: &Path) -> ServerHandle {
    FleetCache::global().clear();
    start(ServerConfig {
        workers: 1,
        wal_dir: Some(dir.display().to_string()),
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| fail(&format!("cannot start server: {e}")))
}

fn submit(addr: SocketAddr, body: &str) -> i64 {
    let (status, response) = request(addr, "POST", "/sessions", Some(body))
        .unwrap_or_else(|e| fail(&format!("submit: {e}")));
    if status != 202 {
        fail(&format!("submit answered {status}: {response}"));
    }
    parse(&response)
        .ok()
        .and_then(|d| d.get("id")?.as_i64())
        .unwrap_or_else(|| fail("202 without an id"))
}

/// Runs the scenario uninterrupted and captures everything the kill-point
/// runs will be compared against.
fn run_baseline(plain_sessions: usize) -> Baseline {
    let dir = fresh_dir("baseline");
    let mut server = wal_server(&dir);
    let addr = server.addr();

    let mut plain_ids = Vec::new();
    let mut plain = Vec::new();
    for i in 0..plain_sessions {
        let id = submit(addr, &plain_body(i));
        if wait_terminal(addr, id) != "done" {
            fail(&format!("baseline plain session {id} did not finish done"));
        }
        plain_ids.push(id);
        plain.push(snapshot(addr, id));
    }

    let retune_id = submit(addr, &retune_body());
    if wait_terminal(addr, retune_id) != "done" {
        fail("baseline re-tune session did not finish done");
    }
    let retune_initial = snapshot(addr, retune_id);

    let (tpch, shifted) = feeds();
    let path = format!("/sessions/{retune_id}/queries");
    let (status, response) = request(addr, "POST", &path, Some(&feed_body(&tpch)))
        .unwrap_or_else(|e| fail(&format!("feed: {e}")));
    if status != 200 {
        fail(&format!(
            "in-distribution feed answered {status}: {response}"
        ));
    }
    let (status, response) = request(addr, "POST", &path, Some(&feed_body(&shifted)))
        .unwrap_or_else(|e| fail(&format!("feed: {e}")));
    if status != 200 {
        fail(&format!("shifted feed answered {status}: {response}"));
    }
    let retune_kicked = parse(&response)
        .ok()
        .and_then(|d| d.get("retune")?.as_bool())
        .unwrap_or(false);
    if !retune_kicked {
        fail("shifted feed did not trigger the auto-re-tune");
    }
    wait_retunes(addr, retune_id, 1);
    let retune_final = snapshot(addr, retune_id);
    server.shutdown();

    let read = read_log(&dir.join("sessions.wal"))
        .unwrap_or_else(|e| fail(&format!("read baseline log: {e}")));
    if !matches!(read.tail, lt_common::wal::Tail::Clean) {
        fail("baseline log has a dirty tail");
    }
    let _ = std::fs::remove_dir_all(&dir);
    Baseline {
        payloads: read.records,
        plain_ids,
        retune_id,
        plain,
        retune_initial,
        retune_final,
    }
}

/// What a record prefix promises per session, decoded from the records
/// themselves: a session with a `retuning` transition (or a completed
/// re-tune) in the prefix must recover to the post-re-tune outcome; one
/// with only its `created` must re-run to the initial outcome.
struct Expectation {
    ids: Vec<i64>,
    retune_expected_final: bool,
}

fn expectation(baseline: &Baseline, payloads: &[Vec<u8>]) -> Expectation {
    let mut ids = Vec::new();
    let mut retune_expected_final = false;
    for payload in payloads {
        let Ok(doc) = parse(std::str::from_utf8(payload).unwrap_or_default()) else {
            continue;
        };
        let id = doc.get("id").and_then(Value::as_i64).unwrap_or(-1);
        match doc.get("type").and_then(Value::as_str) {
            Some("created") if !ids.contains(&id) => ids.push(id),
            Some("removed") => ids.retain(|&k| k != id),
            Some("transition")
                if id == baseline.retune_id
                    && doc.get("state").and_then(Value::as_str) == Some("retuning") =>
            {
                retune_expected_final = true;
            }
            Some("done")
                if id == baseline.retune_id
                    && doc.get("retunes").and_then(Value::as_i64).unwrap_or(0) >= 1 =>
            {
                retune_expected_final = true;
            }
            _ => {}
        }
    }
    Expectation {
        ids,
        retune_expected_final,
    }
}

/// Starts a server over `dir`, waits for every expected session, and
/// checks the recovery invariants against the baseline.
fn recover_and_check(dir: &Path, baseline: &Baseline, expect: &Expectation, what: &str) {
    let mut server = wal_server(dir);
    let addr = server.addr();
    for &id in &expect.ids {
        let state = wait_terminal(addr, id);
        let got = snapshot(addr, id);
        if let Some(i) = baseline.plain_ids.iter().position(|&p| p == id) {
            let want = &baseline.plain[i];
            if state != "done" || got != *want {
                fail(&format!(
                    "{what}: plain session {id} recovered to {got:?}, baseline {want:?}"
                ));
            }
        } else if id == baseline.retune_id {
            let want = if expect.retune_expected_final {
                &baseline.retune_final
            } else {
                &baseline.retune_initial
            };
            if got.retunes > baseline.retune_final.retunes {
                fail(&format!(
                    "{what}: re-tune duplicated — session {id} has {} re-tunes",
                    got.retunes
                ));
            }
            if state != "done" || got != *want {
                fail(&format!(
                    "{what}: re-tune session {id} recovered to {got:?}, expected {want:?}"
                ));
            }
        } else {
            fail(&format!("{what}: unexpected session {id} in the log"));
        }
    }
    // No resurrections either: the registry holds exactly the expected ids.
    let (_, listing) = get_json(addr, "/sessions");
    let listed = listing
        .get("sessions")
        .and_then(Value::as_array)
        .map(|s| s.len())
        .unwrap_or(0);
    if listed != expect.ids.len() {
        fail(&format!(
            "{what}: {listed} sessions recovered, expected {}",
            expect.ids.len()
        ));
    }
    server.shutdown();
}

/// Writes the first `n` baseline records into a fresh directory as the
/// crash artifact and checks recovery from it.
fn check_prefix(baseline: &Baseline, n: usize) {
    let dir = fresh_dir("prefix");
    lt_common::wal::rewrite_log(
        &dir.join("sessions.wal"),
        baseline.payloads.iter().take(n),
        false,
    )
    .unwrap_or_else(|e| fail(&format!("write prefix {n}: {e}")));
    let expect = expectation(baseline, &baseline.payloads[..n]);
    recover_and_check(&dir, baseline, &expect, &format!("prefix {n}"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corruption cases: a torn half-frame appended to the full log, and a
/// byte flipped mid-file. Both must truncate to the surviving prefix and
/// recover it.
fn check_corruption(baseline: &Baseline) {
    use std::io::Write;
    // Torn tail: a frame header promising 64 bytes with 7 behind it.
    let dir = fresh_dir("torn");
    let path = dir.join("sessions.wal");
    lt_common::wal::rewrite_log(&path, baseline.payloads.iter(), false)
        .unwrap_or_else(|e| fail(&format!("write torn-case log: {e}")));
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| fail(&format!("open torn-case log: {e}")));
        f.write_all(&64u32.to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        f.write_all(b"torn...").unwrap();
    }
    let expect = expectation(baseline, &baseline.payloads);
    recover_and_check(&dir, baseline, &expect, "torn tail");
    let _ = std::fs::remove_dir_all(&dir);

    // Byte flip at 60% of the file: everything from the damaged frame on
    // is dropped, so the invariants are those of the surviving prefix.
    let dir = fresh_dir("flip");
    let path = dir.join("sessions.wal");
    lt_common::wal::rewrite_log(&path, baseline.payloads.iter(), false)
        .unwrap_or_else(|e| fail(&format!("write flip-case log: {e}")));
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() * 3 / 5;
    bytes[at] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let surviving = read_log(&path)
        .unwrap_or_else(|e| fail(&format!("read flipped log: {e}")))
        .records;
    if surviving.len() >= baseline.payloads.len() {
        fail("byte flip did not damage the log");
    }
    let expect = expectation(baseline, &surviving);
    recover_and_check(&dir, baseline, &expect, "byte flip");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drives the scenario against a live child `lt-serve` that will abort
/// itself at the `kill_at`-th record append. Connection errors are the
/// crash being observed — the driver stops and moves to recovery.
fn drive_live(addr: SocketAddr, plain_sessions: usize) -> Vec<i64> {
    let mut acked = Vec::new();
    for i in 0..plain_sessions {
        match request(addr, "POST", "/sessions", Some(&plain_body(i))) {
            Ok((202, response)) => {
                if let Some(id) = parse(&response).ok().and_then(|d| d.get("id")?.as_i64()) {
                    acked.push(id);
                }
            }
            _ => return acked,
        }
        if !poll_live(addr, *acked.last().unwrap()) {
            return acked;
        }
    }
    let retune_id = match request(addr, "POST", "/sessions", Some(&retune_body())) {
        Ok((202, response)) => match parse(&response).ok().and_then(|d| d.get("id")?.as_i64()) {
            Some(id) => {
                acked.push(id);
                id
            }
            None => return acked,
        },
        _ => return acked,
    };
    if !poll_live(addr, retune_id) {
        return acked;
    }
    let (tpch, shifted) = feeds();
    let path = format!("/sessions/{retune_id}/queries");
    for batch in [&tpch, &shifted] {
        match request(addr, "POST", &path, Some(&feed_body(batch))) {
            Ok((200, _)) => {}
            _ => return acked,
        }
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        match request(addr, "GET", &format!("/sessions/{retune_id}"), None) {
            Ok((200, body)) => {
                let done = parse(&body).ok().is_some_and(|d| {
                    d.get("state").and_then(Value::as_str) == Some("done")
                        && d.get("drift")
                            .and_then(|dr| dr.get("retunes"))
                            .and_then(Value::as_i64)
                            .unwrap_or(0)
                            >= 1
                });
                if done {
                    return acked;
                }
            }
            _ => return acked,
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    acked
}

/// Polls a live session to a terminal state; `false` means the server died
/// (which is the expected way most live runs end).
fn poll_live(addr: SocketAddr, id: i64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        match request(addr, "GET", &format!("/sessions/{id}"), None) {
            Ok((200, body)) => {
                let state = parse(&body)
                    .ok()
                    .and_then(|d| Some(d.get("state")?.as_str()?.to_string()))
                    .unwrap_or_default();
                if matches!(state.as_str(), "done" | "failed" | "cancelled") {
                    return true;
                }
            }
            _ => return false,
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn spawn_server(bin: &Path, dir: &Path, kill_at: Option<u64>) -> (Child, SocketAddr) {
    let mut cmd = Command::new(bin);
    cmd.args(["--addr", "127.0.0.1:0", "--workers", "1"])
        .arg("--wal-dir")
        .arg(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match kill_at {
        Some(n) => cmd
            .env("LT_WAL_CRASH_AT", n.to_string())
            .env("LT_WAL_SYNC_EVERY", "1"),
        None => cmd.env_remove("LT_WAL_CRASH_AT"),
    };
    let mut child = cmd
        .spawn()
        .unwrap_or_else(|e| fail(&format!("spawn {bin:?}: {e}")));
    // The first stdout line announces the bound address.
    use std::io::{BufRead, BufReader};
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.split("http://").nth(1) {
                    let text = rest.split_whitespace().next().unwrap_or("");
                    match text.parse() {
                        Ok(addr) => break addr,
                        Err(_) => fail(&format!("bad address in {line:?}")),
                    }
                }
            }
            _ => fail("server exited before announcing its address"),
        }
    };
    // Keep draining stdout in the background so the child never blocks on
    // a full pipe.
    std::thread::spawn(move || for _line in lines.map_while(Result::ok) {});
    (child, addr)
}

/// One live kill point: run the scenario against a self-aborting child,
/// then restart cleanly (in-process) and verify every acknowledged session
/// recovered with a baseline-identical winner.
fn check_live(bin: &Path, baseline: &Baseline, plain_sessions: usize, kill_at: u64) {
    let dir = fresh_dir("live");
    let (mut child, addr) = spawn_server(bin, &dir, Some(kill_at));
    let acked = drive_live(addr, plain_sessions);
    // If the scenario completed before the kill point was reached, stop
    // the child cleanly; either way, wait for it to exit.
    let _ = request(addr, "POST", "/shutdown", None);
    let _ = child.wait();

    let read = read_log(&dir.join("sessions.wal"))
        .unwrap_or_else(|e| fail(&format!("read live log: {e}")));
    let expect = expectation(baseline, &read.records);
    // Acknowledged ⊆ recovered: every 202'd session must be in the log.
    for id in &acked {
        if !expect.ids.contains(id) {
            fail(&format!(
                "live kill {kill_at}: acknowledged session {id} missing from the log"
            ));
        }
    }
    recover_and_check(&dir, baseline, &expect, &format!("live kill {kill_at}"));
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if std::env::args().skip(1).any(|a| a != "--smoke") {
        eprintln!("usage: crash-bench [--smoke]");
        std::process::exit(2);
    }
    // The harness must never inherit crash injection itself.
    if std::env::var_os("LT_WAL_CRASH_AT").is_some() {
        fail("unset LT_WAL_CRASH_AT before running crash-bench");
    }
    let plain_sessions = if smoke { 1 } else { 3 };
    let live_points: Vec<u64> = if smoke {
        vec![2, 6]
    } else {
        (1..=12).collect()
    };

    println!("crash-bench: baseline scenario ({plain_sessions} plain + 1 auto-re-tune session)");
    let baseline = run_baseline(plain_sessions);
    let records = baseline.payloads.len();
    println!(
        "  baseline log: {records} records, re-tunes: {}",
        baseline.retune_final.retunes
    );

    println!("  prefix kill points: 0..={records}");
    for n in 0..=records {
        check_prefix(&baseline, n);
    }
    println!("  corruption: torn tail, mid-file byte flip");
    check_corruption(&baseline);

    let bin = std::env::current_exe()
        .ok()
        .and_then(|p| Some(p.parent()?.join("lt-serve")))
        .filter(|p| p.exists());
    match &bin {
        Some(bin) => {
            println!("  live kill points: {live_points:?}");
            for &n in &live_points {
                check_live(bin, &baseline, plain_sessions, n);
            }
        }
        None => {
            println!("  live kill points skipped: lt-serve binary not found next to crash-bench")
        }
    }

    let sessions: Vec<Value> = baseline
        .plain_ids
        .iter()
        .zip(&baseline.plain)
        .map(|(id, s)| {
            json!({
                "id": *id,
                "fingerprint": s.fingerprint.as_deref(),
                "best_time_s": s.best_time,
                "retunes": s.retunes,
            })
        })
        .collect();
    let doc = json!({
        "mode": if smoke { "smoke" } else { "full" },
        "plain_sessions": plain_sessions,
        "baseline_records": records,
        "sessions": Value::Array(sessions),
        "retune_session": json!({
            "id": baseline.retune_id,
            "initial_fingerprint": baseline.retune_initial.fingerprint.as_deref(),
            "initial_best_time_s": baseline.retune_initial.best_time,
            "final_fingerprint": baseline.retune_final.fingerprint.as_deref(),
            "final_best_time_s": baseline.retune_final.best_time,
            "retunes": baseline.retune_final.retunes,
        }),
        "prefix_points": records + 1,
        "corruption_cases": 2,
        "live_kill_points": live_points.iter().map(|&n| n as i64).collect::<Vec<i64>>(),
        "live_tested": bin.is_some(),
        "ok": true,
    });
    std::fs::create_dir_all("results").unwrap_or_else(|e| fail(&format!("mkdir results: {e}")));
    let file = if smoke {
        "results/BENCH_crash.smoke.json"
    } else {
        "results/BENCH_crash.json"
    };
    std::fs::write(file, doc.to_string_pretty())
        .unwrap_or_else(|e| fail(&format!("write {file}: {e}")));
    println!(
        "crash-bench ok: {} prefixes, 2 corruption cases, {} live kill points; wrote {file}",
        records + 1,
        if bin.is_some() { live_points.len() } else { 0 }
    );
}
