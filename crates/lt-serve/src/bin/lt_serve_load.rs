//! `lt-serve-load`: the load generator and serving benchmark.
//!
//! ```text
//! lt-serve-load                  # full matrix: 16 clients at 1 and 4 workers,
//!                                # verifies determinism, writes results/serve_load.json
//! lt-serve-load --smoke          # one quick session against an in-process
//!                                # server; the CI smoke gate
//! lt-serve-load --addr HOST:PORT # single pass against an external server
//! lt-serve-load --clients N      # override the client count
//! ```
//!
//! Exit status is nonzero on any client failure or on a determinism
//! mismatch between the 1-worker and 4-worker runs.

use lt_common::json;
use lt_common::json::{parse, Value};
use lt_serve::load::{run_against, run_matrix, LoadOptions};

fn write_results(file: &str, value: &Value) {
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("error: cannot create results/: {e}");
        std::process::exit(1);
    }
    let path = format!("results/{file}");
    if let Err(e) = std::fs::write(&path, value.to_string_pretty()) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// One fast end-to-end pass: in-process server, one session, metrics check.
/// Writes `results/serve_load.smoke.json` with only deterministic fields
/// (seeds, states, script fingerprints — no wall times or ports), so the
/// CI determinism gate can diff it across thread counts.
fn smoke() {
    let opts = LoadOptions {
        clients: 2,
        num_configs: 2,
        ..LoadOptions::default()
    };
    let mut server = lt_serve::start(lt_serve::ServerConfig::default()).unwrap_or_else(|e| {
        eprintln!("error: cannot start server: {e}");
        std::process::exit(1);
    });
    let run = run_against(server.addr(), 2, &opts);

    // /metrics must be live JSON with serving counters in it.
    let (status, body) = lt_serve::http::request(server.addr(), "GET", "/metrics", None)
        .unwrap_or_else(|e| {
            eprintln!("error: /metrics request failed: {e}");
            std::process::exit(1);
        });
    let metrics_ok = status == 200
        && parse(&body)
            .ok()
            .and_then(|doc| doc.get("counters")?.get("serve.sessions_done")?.as_i64())
            .is_some_and(|done| done >= opts.clients as i64);
    server.shutdown();

    let clients: Vec<Value> = run
        .outcomes
        .iter()
        .map(|o| {
            json!({
                "client": o.client,
                "seed": o.seed as i64,
                "state": o.state.as_str(),
                "script_fingerprint": o
                    .script
                    .as_deref()
                    .map(|s| format!("{:016x}", lt_common::hash_one(s))),
            })
        })
        .collect();
    write_results(
        "serve_load.smoke.json",
        &json!({
            "mode": "smoke",
            "base_seed": opts.base_seed as i64,
            "num_configs": opts.num_configs,
            "clients": Value::Array(clients),
        }),
    );

    if run.failures() > 0 || !metrics_ok {
        eprintln!(
            "smoke FAILED: {} client failures, metrics_ok={metrics_ok}",
            run.failures()
        );
        for o in &run.outcomes {
            eprintln!("  client {} seed {}: {}", o.client, o.seed, o.state);
        }
        std::process::exit(1);
    }
    println!(
        "smoke ok: {} sessions done in {:.1}s, /metrics live",
        opts.clients,
        run.wall.as_secs_f64()
    );
}

fn main() {
    let mut smoke_mode = false;
    let mut external_addr: Option<String> = None;
    let mut clients = 16usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--addr" => external_addr = args.next(),
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --clients must be a positive integer");
                        std::process::exit(2);
                    })
            }
            "--help" | "-h" => {
                println!("usage: lt-serve-load [--smoke | --addr HOST:PORT] [--clients N]");
                return;
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    if smoke_mode {
        smoke();
        return;
    }

    let opts = LoadOptions {
        clients,
        ..LoadOptions::default()
    };

    if let Some(addr_text) = external_addr {
        let addr = addr_text.parse().unwrap_or_else(|_| {
            eprintln!("error: bad address {addr_text:?}");
            std::process::exit(2);
        });
        let run = run_against(addr, 0, &opts);
        println!(
            "{} clients against {addr}: {} failures, p50 {:.0}ms p95 {:.0}ms p99 {:.0}ms, {:.2} sessions/s",
            opts.clients,
            run.failures(),
            run.latency_percentile_ms(50.0),
            run.latency_percentile_ms(95.0),
            run.latency_percentile_ms(99.0),
            run.sessions_per_sec()
        );
        write_results(
            "serve_load.json",
            &json!({
                "mode": "external",
                "base_seed": opts.base_seed,
                "run": run.to_json(),
            }),
        );
        if run.failures() > 0 {
            std::process::exit(1);
        }
        return;
    }

    println!(
        "serving matrix: {} clients (base seed {}), benchmark {}, 1 worker then 4 workers",
        opts.clients, opts.base_seed, opts.benchmark
    );
    let (serial, pooled, mismatched) = run_matrix(&opts).unwrap_or_else(|e| {
        eprintln!("error: load run failed: {e}");
        std::process::exit(1);
    });
    for run in [&serial, &pooled] {
        println!(
            "  {} workers: {} failures, wall {:.1}s, p50 {:.0}ms p95 {:.0}ms p99 {:.0}ms, {:.2} sessions/s",
            run.workers,
            run.failures(),
            run.wall.as_secs_f64(),
            run.latency_percentile_ms(50.0),
            run.latency_percentile_ms(95.0),
            run.latency_percentile_ms(99.0),
            run.sessions_per_sec()
        );
    }
    let deterministic = mismatched.is_empty();
    println!(
        "  determinism: per-seed configs {} across pool sizes{}",
        if deterministic {
            "byte-identical"
        } else {
            "MISMATCHED"
        },
        if deterministic {
            String::new()
        } else {
            format!(" (seeds {mismatched:?})")
        }
    );

    write_results(
        "serve_load.json",
        &json!({
            "mode": "matrix",
            "base_seed": opts.base_seed,
            "benchmark": opts.benchmark.as_str(),
            "deterministic_across_pool_sizes": deterministic,
            "mismatched_seeds": mismatched.clone(),
            "runs": vec![serial.to_json(), pooled.to_json()],
        }),
    );

    if serial.failures() > 0 || pooled.failures() > 0 || !deterministic {
        std::process::exit(1);
    }
}
