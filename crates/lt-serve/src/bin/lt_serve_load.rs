//! `lt-serve-load`: the load generator and serving benchmarks.
//!
//! ```text
//! lt-serve-load                  # full matrix: 16 clients at 1 and 4 workers,
//!                                # verifies determinism, writes results/serve_load.json
//! lt-serve-load --smoke          # one quick session against an in-process
//!                                # server; the CI smoke gate
//! lt-serve-load --addr HOST:PORT # single pass against an external server
//! lt-serve-load --clients N      # override the client count
//! lt-serve-load --shards N       # sharded bench: spawn coordinator + shard
//!                                # processes at 1, 2, 4, … up to N shards,
//!                                # verify cross-shard determinism, run the
//!                                # kill-one-shard availability scenario,
//!                                # write results/BENCH_shard.json
//! lt-serve-load --smoke --shards N  # quick multi-process pass; writes
//!                                # results/serve_shard.smoke.json (CI gate)
//! ```
//!
//! `LT_SERVE_SHARDS` is the env equivalent of `--shards`. The sharded
//! bench fixes every shard at **one** pool worker and scales the shard
//! count, with `LT_LLM_LATENCY_MS` (default 80 for the full bench)
//! injecting the LLM-API round-trip the simulated model otherwise skips —
//! that is the regime the paper's serving cost lives in, and the only
//! honest way to show scale-out on a single-core CI box: throughput grows
//! because shards overlap *waiting*, not because compute parallelises.
//!
//! Exit status is nonzero on any client failure, on a determinism
//! mismatch, or (sharded bench) on a failed availability scenario.

use lt_common::json;
use lt_common::json::{parse, Value};
use lt_serve::fleet::Fleet;
use lt_serve::load::{run_against, run_matrix, LoadOptions};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn write_results(file: &str, value: &Value) {
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("error: cannot create results/: {e}");
        std::process::exit(1);
    }
    let path = format!("results/{file}");
    if let Err(e) = std::fs::write(&path, value.to_string_pretty()) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

/// One fast end-to-end pass: in-process server, one session, metrics check.
/// Writes `results/serve_load.smoke.json` with only deterministic fields
/// (seeds, states, script fingerprints — no wall times or ports), so the
/// CI determinism gate can diff it across thread counts.
fn smoke() {
    let opts = LoadOptions {
        clients: 2,
        num_configs: 2,
        ..LoadOptions::default()
    };
    let mut server = lt_serve::start(lt_serve::ServerConfig::default())
        .unwrap_or_else(|e| die(&format!("cannot start server: {e}")));
    let run = run_against(server.addr(), 2, &opts);

    // /metrics must be live JSON with serving counters in it.
    let (status, body) = lt_serve::http::request(server.addr(), "GET", "/metrics", None)
        .unwrap_or_else(|e| die(&format!("/metrics request failed: {e}")));
    let metrics_ok = status == 200
        && parse(&body)
            .ok()
            .and_then(|doc| doc.get("counters")?.get("serve.sessions_done")?.as_i64())
            .is_some_and(|done| done >= opts.clients as i64);
    server.shutdown();

    write_results(
        "serve_load.smoke.json",
        &json!({
            "mode": "smoke",
            "base_seed": opts.base_seed as i64,
            "num_configs": opts.num_configs,
            "clients": Value::Array(client_rows(&run)),
        }),
    );

    if run.failures() > 0 || !metrics_ok {
        eprintln!(
            "smoke FAILED: {} client failures, metrics_ok={metrics_ok}",
            run.failures()
        );
        for o in &run.outcomes {
            eprintln!("  client {} seed {}: {}", o.client, o.seed, o.state);
        }
        std::process::exit(1);
    }
    println!(
        "smoke ok: {} sessions done in {:.1}s, /metrics live",
        opts.clients,
        run.wall.as_secs_f64()
    );
}

/// Deterministic per-client rows (no wall clocks, no ports).
fn client_rows(run: &lt_serve::load::LoadRun) -> Vec<Value> {
    run.outcomes
        .iter()
        .map(|o| {
            json!({
                "client": o.client,
                "seed": o.seed as i64,
                "state": o.state.as_str(),
                "script_fingerprint": o
                    .script
                    .as_deref()
                    .map(|s| format!("{:016x}", lt_common::hash_one(s))),
            })
        })
        .collect()
}

/// Multi-process smoke: a real coordinator + `shards` shard daemons over
/// loopback, a small client set, fleet `/metrics` checked. The output file
/// carries only deterministic fields plus `"wall…"`-prefixed diagnostics,
/// so the CI determinism gate can diff it across shard counts (the file
/// deliberately omits the shard count — that is the point of the diff).
fn shard_smoke(shards: usize) {
    let opts = LoadOptions {
        clients: 4,
        num_configs: 2,
        ..LoadOptions::default()
    };
    let mut fleet = Fleet::spawn(shards, 1, &[])
        .unwrap_or_else(|e| die(&format!("cannot spawn {shards}-shard fleet: {e}")));
    let run = run_against(fleet.coordinator_addr(), shards, &opts);

    let (status, body) = lt_serve::http::request(fleet.coordinator_addr(), "GET", "/metrics", None)
        .unwrap_or_else(|e| die(&format!("coordinator /metrics failed: {e}")));
    let doc = parse(&body).ok();
    let doc = doc.as_ref();
    let metrics_ok = status == 200
        && doc.and_then(|d| d.get("degraded")?.as_bool()) == Some(false)
        && doc
            .and_then(|d| {
                d.get("fleet")?
                    .get("counters")?
                    .get("serve.sessions_done")?
                    .as_i64()
            })
            .is_some_and(|done| done >= opts.clients as i64)
        && doc.and_then(|d| Some(d.get("shards")?.as_array()?.len())) == Some(shards);
    fleet.shutdown();

    write_results(
        "serve_shard.smoke.json",
        &json!({
            "mode": "shard-smoke",
            "base_seed": opts.base_seed as i64,
            "num_configs": opts.num_configs,
            "wall_s": run.wall.as_secs_f64(),
            "clients": Value::Array(client_rows(&run)),
        }),
    );

    if run.failures() > 0 || !metrics_ok {
        eprintln!(
            "shard smoke FAILED: {} client failures, metrics_ok={metrics_ok}",
            run.failures()
        );
        for o in &run.outcomes {
            eprintln!("  client {} seed {}: {}", o.client, o.seed, o.state);
        }
        std::process::exit(1);
    }
    println!(
        "shard smoke ok: {} sessions through {shards} shard(s) in {:.1}s, fleet /metrics live",
        opts.clients,
        run.wall.as_secs_f64()
    );
}

fn submit_seed(addr: SocketAddr, seed: u64) -> Result<u64, String> {
    let body = json!({
        "benchmark": "tpch-sf1",
        "seed": seed as i64,
        "num_configs": 2,
    })
    .to_string_pretty();
    let (status, body) = lt_serve::http::request(addr, "POST", "/sessions", Some(&body))
        .map_err(|e| format!("submit seed {seed}: {e}"))?;
    if status != 202 {
        return Err(format!("submit seed {seed} rejected with {status}: {body}"));
    }
    parse(&body)
        .ok()
        .and_then(|d| d.get("id")?.as_i64())
        .map(|id| id as u64)
        .ok_or_else(|| format!("bad submit response for seed {seed}"))
}

/// Polls a session through the coordinator until terminal, treating 503
/// (owning shard down, recovery pending) and refused connects as
/// transient. Returns the winning script on `done`.
fn await_winner(addr: SocketAddr, id: u64, timeout: Duration) -> Result<String, String> {
    let deadline = Instant::now() + timeout;
    loop {
        if Instant::now() >= deadline {
            return Err(format!("session {id}: timeout"));
        }
        match lt_serve::http::request(addr, "GET", &format!("/sessions/{id}?wait_ms=500"), None) {
            Ok((200, body)) => {
                let state = parse(&body)
                    .ok()
                    .and_then(|d| Some(d.get("state")?.as_str()?.to_string()));
                match state.as_deref() {
                    Some("done") => break,
                    Some("failed" | "cancelled") => {
                        return Err(format!("session {id}: state {}", state.unwrap()))
                    }
                    Some(_) => {}
                    None => return Err(format!("session {id}: bad status document")),
                }
            }
            Ok((502 | 503, _)) | Err(_) => std::thread::sleep(Duration::from_millis(100)),
            Ok((status, body)) => {
                return Err(format!("session {id}: poll status {status}: {body}"))
            }
        }
    }
    let (status, body) =
        lt_serve::http::request(addr, "GET", &format!("/sessions/{id}/config"), None)
            .map_err(|e| format!("session {id}: config fetch: {e}"))?;
    if status != 200 {
        return Err(format!("session {id}: config status {status}"));
    }
    parse(&body)
        .ok()
        .and_then(|d| Some(d.get("script")?.as_str()?.to_string()))
        .ok_or_else(|| format!("session {id}: config without script"))
}

fn coordinator_degraded(addr: SocketAddr) -> Option<bool> {
    let (status, body) = lt_serve::http::request(addr, "GET", "/metrics", None).ok()?;
    (status == 200)
        .then(|| parse(&body).ok())
        .flatten()?
        .get("degraded")?
        .as_bool()
}

fn wait_degraded(addr: SocketAddr, want: bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if coordinator_degraded(addr) == Some(want) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// Tunes `seeds` on an in-process single-worker server (no simulated
/// latency in this process) and returns seed → winning script: the
/// reference the sharded fabric's winners must match byte-for-byte.
fn standalone_winners(seeds: &[u64]) -> BTreeMap<u64, String> {
    let mut server = lt_serve::start(lt_serve::ServerConfig {
        workers: 1,
        ..lt_serve::ServerConfig::default()
    })
    .unwrap_or_else(|e| die(&format!("cannot start reference server: {e}")));
    let mut winners = BTreeMap::new();
    for &seed in seeds {
        let id = submit_seed(server.addr(), seed).unwrap_or_else(|e| die(&e));
        let script = await_winner(server.addr(), id, Duration::from_secs(120))
            .unwrap_or_else(|e| die(&format!("reference run: {e}")));
        winners.insert(seed, script);
    }
    server.shutdown();
    winners
}

/// The availability scenario: 2 shards, slow sessions, SIGKILL one shard
/// with work in flight, verify degraded routing + zero lost sessions +
/// byte-identical winners after WAL recovery.
fn kill_one_shard_scenario(base_seed: u64) -> (Value, bool) {
    let envs = vec![
        ("LT_LLM_LATENCY_MS".to_string(), "400".to_string()),
        ("LT_SHARD_PROBE_MS".to_string(), "100".to_string()),
    ];
    let mut fleet =
        Fleet::spawn(2, 1, &envs).unwrap_or_else(|e| die(&format!("scenario fleet: {e}")));
    let addr = fleet.coordinator_addr();

    // Acknowledge 8 slow sessions, then SIGKILL shard 1 with work queued
    // and in flight.
    let seeds: Vec<u64> = (0..8u64)
        .map(|i| lt_common::derive_seed(base_seed, 1_000 + i) & (i64::MAX as u64))
        .collect();
    let mut acked: Vec<(u64, u64)> = Vec::new();
    for &seed in &seeds {
        let id = submit_seed(addr, seed).unwrap_or_else(|e| die(&e));
        acked.push((seed, id));
    }
    fleet.kill_shard(1);

    let degraded_observed = wait_degraded(addr, true, Duration::from_secs(15));

    // New sessions must route around the dead shard and complete.
    let extra_seeds: Vec<u64> = (0..2u64)
        .map(|i| lt_common::derive_seed(base_seed, 2_000 + i) & (i64::MAX as u64))
        .collect();
    let mut routed_during_outage = 0usize;
    let mut fabric_winners: BTreeMap<u64, String> = BTreeMap::new();
    for &seed in &extra_seeds {
        match submit_seed(addr, seed) {
            Ok(id) => {
                routed_during_outage += 1;
                acked.push((seed, id));
                match await_winner(addr, id, Duration::from_secs(60)) {
                    Ok(script) => {
                        fabric_winners.insert(seed, script);
                    }
                    Err(e) => eprintln!("scenario: outage-time session: {e}"),
                }
            }
            Err(e) => eprintln!("scenario: outage-time submit: {e}"),
        }
    }

    // Restart the dead shard on its original address + WAL dir; recovery
    // re-queues whatever was in flight and the probe folds it back in.
    fleet
        .restart_shard(1)
        .unwrap_or_else(|e| die(&format!("scenario restart: {e}")));
    let recovered = wait_degraded(addr, false, Duration::from_secs(15));

    // Every acknowledged session must reach `done` with a winner.
    let mut lost = 0usize;
    for &(seed, id) in &acked {
        if fabric_winners.contains_key(&seed) {
            continue;
        }
        match await_winner(addr, id, Duration::from_secs(120)) {
            Ok(script) => {
                fabric_winners.insert(seed, script);
            }
            Err(e) => {
                lost += 1;
                eprintln!("scenario: LOST session {id} (seed {seed}): {e}");
            }
        }
    }
    fleet.shutdown();

    // Recovered winners must equal a standalone reference run.
    let all_seeds: Vec<u64> = acked.iter().map(|&(seed, _)| seed).collect();
    let reference = standalone_winners(&all_seeds);
    let winners_match = lost == 0
        && all_seeds
            .iter()
            .all(|seed| fabric_winners.get(seed) == reference.get(seed));

    let ok =
        degraded_observed && routed_during_outage == 2 && recovered && lost == 0 && winners_match;
    let doc = json!({
        "shards": 2,
        "acked_sessions": acked.len(),
        "killed_shard": 1,
        "degraded_observed": degraded_observed,
        "routed_during_outage": routed_during_outage,
        "shard_recovered": recovered,
        "lost_sessions": lost,
        "winners_match_standalone": winners_match,
        "ok": ok,
    });
    (doc, ok)
}

/// The sharded scaling bench: 1, 2, 4, … shards (one pool worker each),
/// the same client set through a real coordinator + shard processes, then
/// cross-shard-count determinism and the kill-one-shard scenario.
fn shard_bench(max_shards: usize, clients: usize) {
    // 250ms per LLM round trip keeps the fabric firmly in the wait-bound
    // regime on a small CI box: per-session *compute* is tens of
    // milliseconds and shares one core across every shard process, so a
    // too-small latency would measure CPU contention, not scale-out.
    let latency_ms = std::env::var("LT_LLM_LATENCY_MS").unwrap_or_else(|_| "250".to_string());
    let envs = vec![
        ("LT_LLM_LATENCY_MS".to_string(), latency_ms.clone()),
        ("LT_SHARD_PROBE_MS".to_string(), "200".to_string()),
        // More virtual nodes tighten each shard's key-space share; at the
        // default 64 the ±12% share variance shows up directly as
        // drain-time skew.
        ("LT_SHARD_VNODES".to_string(), "256".to_string()),
    ];
    let series: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&n| n <= max_shards)
        .collect();
    let opts = LoadOptions {
        clients,
        num_configs: 2,
        poll_timeout: Duration::from_secs(300),
        // Closed loop: 4 sessions per client. The fabric places by
        // hashing session ids, so a run with few sessions measures the
        // multinomial spread of the ring, not shard throughput.
        sessions_per_client: 4,
        ..LoadOptions::default()
    };
    println!(
        "shard bench: {clients} clients x {} sessions, shards {series:?}, 1 worker/shard, \
         LLM latency {latency_ms}ms (LT_LLM_LATENCY_MS)",
        opts.sessions_per_client
    );

    let mut runs: Vec<(usize, lt_serve::load::LoadRun)> = Vec::new();
    for &n in &series {
        let mut fleet = Fleet::spawn(n, 1, &envs)
            .unwrap_or_else(|e| die(&format!("cannot spawn {n}-shard fleet: {e}")));
        let run = run_against(fleet.coordinator_addr(), n, &opts);
        fleet.shutdown();
        println!(
            "  {n} shard(s): {} failures, wall {:.1}s, p50 {:.0}ms p95 {:.0}ms, {:.2} sessions/s",
            run.failures(),
            run.wall.as_secs_f64(),
            run.latency_percentile_ms(50.0),
            run.latency_percentile_ms(95.0),
            run.sessions_per_sec()
        );
        if run.failures() > 0 {
            for o in run.outcomes.iter().filter(|o| !o.ok()) {
                eprintln!("  client {} seed {}: {}", o.client, o.seed, o.state);
            }
            die(&format!("{n}-shard run had failures"));
        }
        runs.push((n, run));
    }

    // Determinism: per-seed winners byte-identical at every shard count.
    let mut mismatched: Vec<u64> = Vec::new();
    let baseline = &runs[0].1;
    for (_, run) in &runs[1..] {
        for (a, b) in baseline.outcomes.iter().zip(&run.outcomes) {
            if a.script != b.script && !mismatched.contains(&a.seed) {
                mismatched.push(a.seed);
            }
        }
    }
    let deterministic = mismatched.is_empty();
    println!(
        "  determinism: per-seed configs {} across shard counts{}",
        if deterministic {
            "byte-identical"
        } else {
            "MISMATCHED"
        },
        if deterministic {
            String::new()
        } else {
            format!(" (seeds {mismatched:?})")
        }
    );

    let base_sps = runs[0].1.sessions_per_sec();
    let scaling: Vec<Value> = runs
        .iter()
        .map(|(n, run)| {
            json!({
                "shards": *n,
                "sessions_per_sec": run.sessions_per_sec(),
                "speedup_vs_1": run.sessions_per_sec() / base_sps.max(1e-9),
                "run": run.to_json(),
            })
        })
        .collect();
    let speedup_at_4 = runs
        .iter()
        .find(|(n, _)| *n == 4)
        .map(|(_, run)| run.sessions_per_sec() / base_sps.max(1e-9));
    if let Some(s) = speedup_at_4 {
        println!("  speedup at 4 shards vs 1: {s:.2}x");
    }

    println!("  kill-one-shard availability scenario (2 shards, 400ms sessions)");
    let (scenario, scenario_ok) = kill_one_shard_scenario(opts.base_seed);
    println!("  scenario: {}", if scenario_ok { "ok" } else { "FAILED" });

    write_results(
        "BENCH_shard.json",
        &json!({
            "mode": "shard-bench",
            "base_seed": opts.base_seed as i64,
            "clients": clients,
            "workers_per_shard": 1,
            "llm_latency_ms": latency_ms.parse::<i64>().unwrap_or(-1),
            "scaling": Value::Array(scaling),
            "speedup_at_4_shards": speedup_at_4.unwrap_or(0.0),
            "deterministic_across_shard_counts": deterministic,
            "mismatched_seeds": mismatched.clone(),
            "kill_one_shard": scenario,
        }),
    );

    let scaled = speedup_at_4.is_none_or(|s| s >= 3.0);
    if !scaled {
        eprintln!("shard bench FAILED: speedup at 4 shards below 3x");
    }
    if !deterministic || !scenario_ok || !scaled {
        std::process::exit(1);
    }
}

fn main() {
    let mut smoke_mode = false;
    let mut external_addr: Option<String> = None;
    let mut clients: Option<usize> = None;
    let mut shards: Option<usize> = std::env::var("LT_SERVE_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&v| v > 0);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--addr" => external_addr = args.next(),
            "--clients" => {
                clients = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v| v > 0)
                        .unwrap_or_else(|| {
                            eprintln!("error: --clients must be a positive integer");
                            std::process::exit(2);
                        }),
                )
            }
            "--shards" => {
                shards = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&v| v > 0)
                        .unwrap_or_else(|| {
                            eprintln!("error: --shards must be a positive integer");
                            std::process::exit(2);
                        }),
                )
            }
            "--help" | "-h" => {
                println!(
                    "usage: lt-serve-load [--smoke | --addr HOST:PORT] [--clients N] [--shards N]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(n) = shards {
        if external_addr.is_some() {
            eprintln!("error: --shards spawns its own fabric; drop --addr");
            std::process::exit(2);
        }
        if smoke_mode {
            shard_smoke(n);
        } else {
            shard_bench(n, clients.unwrap_or(32));
        }
        return;
    }

    if smoke_mode {
        smoke();
        return;
    }

    let opts = LoadOptions {
        clients: clients.unwrap_or(16),
        ..LoadOptions::default()
    };

    if let Some(addr_text) = external_addr {
        let addr = addr_text.parse().unwrap_or_else(|_| {
            eprintln!("error: bad address {addr_text:?}");
            std::process::exit(2);
        });
        let run = run_against(addr, 0, &opts);
        println!(
            "{} clients against {addr}: {} failures, p50 {:.0}ms p95 {:.0}ms p99 {:.0}ms, {:.2} sessions/s",
            opts.clients,
            run.failures(),
            run.latency_percentile_ms(50.0),
            run.latency_percentile_ms(95.0),
            run.latency_percentile_ms(99.0),
            run.sessions_per_sec()
        );
        write_results(
            "serve_load.json",
            &json!({
                "mode": "external",
                "base_seed": opts.base_seed,
                "run": run.to_json(),
            }),
        );
        if run.failures() > 0 {
            std::process::exit(1);
        }
        return;
    }

    println!(
        "serving matrix: {} clients (base seed {}), benchmark {}, 1 worker then 4 workers",
        opts.clients, opts.base_seed, opts.benchmark
    );
    let (serial, pooled, mismatched) = run_matrix(&opts).unwrap_or_else(|e| {
        eprintln!("error: load run failed: {e}");
        std::process::exit(1);
    });
    for run in [&serial, &pooled] {
        println!(
            "  {} workers: {} failures, wall {:.1}s, p50 {:.0}ms p95 {:.0}ms p99 {:.0}ms, {:.2} sessions/s",
            run.workers,
            run.failures(),
            run.wall.as_secs_f64(),
            run.latency_percentile_ms(50.0),
            run.latency_percentile_ms(95.0),
            run.latency_percentile_ms(99.0),
            run.sessions_per_sec()
        );
    }
    let deterministic = mismatched.is_empty();
    println!(
        "  determinism: per-seed configs {} across pool sizes{}",
        if deterministic {
            "byte-identical"
        } else {
            "MISMATCHED"
        },
        if deterministic {
            String::new()
        } else {
            format!(" (seeds {mismatched:?})")
        }
    );

    write_results(
        "serve_load.json",
        &json!({
            "mode": "matrix",
            "base_seed": opts.base_seed,
            "benchmark": opts.benchmark.as_str(),
            "deterministic_across_pool_sizes": deterministic,
            "mismatched_seeds": mismatched.clone(),
            "runs": vec![serial.to_json(), pooled.to_json()],
        }),
    );

    if serial.failures() > 0 || pooled.failures() > 0 || !deterministic {
        std::process::exit(1);
    }
}
