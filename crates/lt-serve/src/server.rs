//! The HTTP server: accept loop, routing, admission control, shutdown.
//!
//! Endpoints:
//!
//! | Method | Path                    | Purpose                              |
//! |--------|-------------------------|--------------------------------------|
//! | POST   | `/sessions`             | Submit a tuning request (202/400/429)|
//! | GET    | `/sessions`             | List sessions and states             |
//! | GET    | `/sessions/<id>`        | Status + trajectory-so-far           |
//! | POST   | `/sessions/<id>/queries`| Feed observed queries (drift watch)  |
//! | GET    | `/sessions/<id>/config` | Best configuration + scaled cost     |
//! | DELETE | `/sessions/<id>`        | Cancel (queued or running)           |
//! | GET    | `/metrics`              | Observability registry dump          |
//! | GET    | `/healthz`              | Liveness probe                       |
//! | POST   | `/shutdown`             | Graceful shutdown (drains workers)   |
//! | GET    | `/shard/healthz`        | Shard control: id, drain state, load |
//! | POST   | `/shard/drain`          | Stop admitting; keep serving reads   |
//! | POST   | `/shard/adopt`          | Coordinator-placed session (fixed id)|
//!
//! `GET /sessions/<id>?wait_ms=N` long-polls: the response is deferred
//! (bounded by `N`, capped at [`MAX_WAIT_MS`]) until the session leaves
//! the state it was in when the request arrived. `wait_ms=0` — and any
//! request without the parameter — answers immediately.
//!
//! The `/shard/*` surface is what the coordinator ([`crate::coord`])
//! drives: `adopt` is `POST /sessions` with the session id chosen by the
//! caller (the consistent-hash ring keys on it), `drain` flips admission
//! off for planned removal from the ring, and `/shard/healthz` is the
//! health-probe target that also reports queue pressure.
//!
//! Each connection carries one request (`Connection: close`); connection
//! threads only parse, route and serialize — all tuning happens on the
//! worker pool.

use crate::http::{read_request, Request, Response};
use crate::pool::{SubmitError, WorkerPool};
use crate::session::{Session, SessionHandle, SessionRegistry, SessionState, TuneRequest};
use crate::wal::SessionRecord;
use lt_common::json::Value;
use lt_common::{json, obs};
use lt_synth::{Synthesizer, WorkloadSpec};
use lt_workloads::Workload;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration. Every field has an environment override so the
/// `lt-serve` binary and the CI smoke gate share one code path.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (tests, load generator).
    pub addr: String,
    /// Tuning worker threads (`LT_SERVE_WORKERS`, default 2).
    pub workers: usize,
    /// Job queue bound; a full queue answers 429 (`LT_SERVE_QUEUE`,
    /// default 64).
    pub queue_depth: usize,
    /// Concurrent connection-thread bound; connections above it answer 503
    /// without spawning a thread (`LT_SERVE_CONNS`, default 64). This caps
    /// HTTP-layer threads the way `queue_depth` caps tuning jobs — a burst
    /// of idle connections cannot exhaust threads while it holds.
    pub max_connections: usize,
    /// Per-tenant cap on non-terminal sessions (`LT_SERVE_TENANT_CAP`,
    /// default 64). Tenancy is the `X-Tenant` request header (`"default"`
    /// when absent); a tenant at its cap gets 429 + `Retry-After` while
    /// other tenants keep being admitted.
    pub tenant_cap: usize,
    /// Requests served per connection before it is closed even for clients
    /// asking `Connection: keep-alive` (`LT_SERVE_KEEPALIVE_MAX`, default
    /// 32). Bounds how long one client can monopolize a connection thread.
    pub keepalive_max: usize,
    /// Idle timeout in milliseconds: how long a connection may sit between
    /// requests (and how long one request may take to arrive) before the
    /// thread gives up (`LT_SERVE_IDLE_MS`, default 30000).
    pub idle_timeout_ms: u64,
    /// Durability directory (`LT_WAL_DIR`). When set, the server keeps a
    /// write-ahead session log in `<dir>/sessions.wal`, replays it on
    /// startup (re-queuing interrupted sessions) and records every
    /// acknowledged lifecycle event. `None` (the default) serves from
    /// memory only.
    pub wal_dir: Option<String>,
    /// Shard identity when this server runs as one shard of a fabric
    /// (`LT_SHARD_ID`). Surfaces in `/shard/healthz` and `/metrics`;
    /// `None` (the default) means standalone.
    pub shard_id: Option<u32>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            max_connections: 64,
            tenant_cap: 64,
            keepalive_max: 32,
            idle_timeout_ms: 30_000,
            wal_dir: None,
            shard_id: None,
        }
    }
}

impl ServerConfig {
    /// Reads `LT_SERVE_ADDR`, `LT_SERVE_WORKERS`, `LT_SERVE_QUEUE` and
    /// `LT_SERVE_CONNS` on top of the defaults. Unparseable values fall
    /// back to the default rather than failing startup.
    pub fn from_env() -> ServerConfig {
        let mut config = ServerConfig::default();
        if let Ok(addr) = std::env::var("LT_SERVE_ADDR") {
            if !addr.trim().is_empty() {
                config.addr = addr.trim().to_string();
            }
        }
        let usize_env = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&v| v > 0)
        };
        if let Some(workers) = usize_env("LT_SERVE_WORKERS") {
            config.workers = workers;
        }
        if let Some(depth) = usize_env("LT_SERVE_QUEUE") {
            config.queue_depth = depth;
        }
        if let Some(conns) = usize_env("LT_SERVE_CONNS") {
            config.max_connections = conns;
        }
        if let Some(cap) = usize_env("LT_SERVE_TENANT_CAP") {
            config.tenant_cap = cap;
        }
        if let Some(max) = usize_env("LT_SERVE_KEEPALIVE_MAX") {
            config.keepalive_max = max;
        }
        if let Some(ms) = usize_env("LT_SERVE_IDLE_MS") {
            config.idle_timeout_ms = ms as u64;
        }
        if let Ok(dir) = std::env::var("LT_WAL_DIR") {
            if !dir.trim().is_empty() {
                config.wal_dir = Some(dir.trim().to_string());
            }
        }
        if let Ok(id) = std::env::var("LT_SHARD_ID") {
            if let Ok(id) = id.trim().parse::<u32>() {
                config.shard_id = Some(id);
            }
        }
        config
    }
}

struct ServerState {
    registry: SessionRegistry,
    pool: WorkerPool,
    shutdown: AtomicBool,
    /// The bound address; `POST /shutdown` pokes it so the accept loop
    /// observes the shutdown flag without waiting for another client.
    addr: SocketAddr,
    /// Live connection threads, bounded by `max_connections`.
    connections: AtomicUsize,
    max_connections: usize,
    /// Per-tenant non-terminal-session quota.
    tenant_cap: usize,
    /// Keep-alive per-connection request cap.
    keepalive_max: usize,
    /// Keep-alive idle timeout (also the per-request read timeout).
    idle_timeout: Duration,
    /// Shard identity (fabric mode), `None` standalone.
    shard_id: Option<u32>,
    /// Draining: admission off (new sessions answer 503), reads keep
    /// working. Set by `POST /shard/drain` ahead of planned removal.
    draining: AtomicBool,
}

/// Decrements the live-connection count when a connection thread exits,
/// however it exits.
struct ConnectionGuard(Arc<ServerState>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop and drains the pool.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server shuts down (via `POST /shutdown` or
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain queued sessions, join all
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the flag without waiting for a client.
        let _ = TcpStream::connect(self.addr);
        self.wait();
        self.state.pool.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds, spawns the accept loop and worker pool, and returns immediately.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    // The service is observability-on by default: /metrics is part of the
    // API contract, not an opt-in debug facility.
    obs::set_enabled(true);
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let registry = SessionRegistry::new();
    let pool = WorkerPool::start(config.workers, config.queue_depth);
    // Durability: open (and compact) the session log, replay it, re-queue
    // interrupted work — all before the accept loop exists, so no request
    // can observe a half-recovered registry. The log is attached first so
    // restored handles carry it and post-recovery transitions get recorded.
    if let Some(dir) = &config.wal_dir {
        let (log, records) = crate::wal::SessionLog::open(std::path::Path::new(dir))?;
        registry.attach_wal(Arc::new(log));
        let stats = crate::wal::restore(&registry, Some(&pool), crate::wal::replay(&records));
        // Summary on stderr: stdout is the machine interface (the
        // "listening on" line the crash harness parses).
        eprintln!(
            "lt-serve: recovered {} sessions from {dir} \
             ({} re-queued, {} re-tunes re-queued, {} fleet entries, {} skipped)",
            stats.sessions, stats.requeued, stats.retunes_requeued, stats.fleet, stats.skipped
        );
    }
    let state = Arc::new(ServerState {
        registry,
        pool,
        shutdown: AtomicBool::new(false),
        addr,
        connections: AtomicUsize::new(0),
        max_connections: config.max_connections.max(1),
        tenant_cap: config.tenant_cap.max(1),
        keepalive_max: config.keepalive_max.max(1),
        idle_timeout: Duration::from_millis(config.idle_timeout_ms.max(1)),
        shard_id: config.shard_id,
        draining: AtomicBool::new(false),
    });
    let accept_state = state.clone();
    let accept_thread = std::thread::Builder::new()
        .name("lt-serve-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                // Connection admission: each connection holds a thread (up
                // to the 30 s read timeout), so cap them like tuning jobs.
                // The guard decrements on every exit path, panics included.
                if accept_state.connections.fetch_add(1, Ordering::SeqCst)
                    >= accept_state.max_connections
                {
                    accept_state.connections.fetch_sub(1, Ordering::SeqCst);
                    obs::counter("serve.connections_rejected", 1);
                    // Drain whatever the client already sent (non-blocking,
                    // best effort): closing a socket with unread bytes
                    // resets the connection and would eat the 503.
                    let _ = stream.set_nonblocking(true);
                    let mut scratch = [0u8; 4096];
                    while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
                    let _ = stream.set_nonblocking(false);
                    // Tiny fixed body: fits the socket buffer, so this
                    // cannot stall the accept loop for long.
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = Response::error(503, "too many connections, retry later")
                        .write_to(&mut stream);
                    continue;
                }
                // On spawn failure the unstarted closure is dropped and the
                // moved guard decrements the count right there.
                let guard = ConnectionGuard(accept_state.clone());
                let conn_state = accept_state.clone();
                let _ = std::thread::Builder::new()
                    .name("lt-serve-conn".to_string())
                    .spawn(move || {
                        let _guard = guard;
                        handle_connection(stream, &conn_state);
                    });
            }
        })?;
    Ok(ServerHandle {
        addr,
        state,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(state.idle_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    // Close-by-default with opt-in reuse: a client sending
    // `Connection: keep-alive` gets the connection back for more requests,
    // up to the per-connection cap; the read timeout doubles as the idle
    // timeout between them.
    for served in 0..state.keepalive_max {
        let request = match read_request(&mut stream) {
            Ok(request) => request,
            Err(err) => {
                // After at least one request, an error here is just the
                // client being done (clean close or idle timeout) — end the
                // connection silently rather than answering 400.
                if served == 0 {
                    let _ = Response::error(400, &format!("malformed request: {err}"))
                        .write_to(&mut stream);
                }
                return;
            }
        };
        if served > 0 {
            obs::counter("serve.keepalive_reuse", 1);
        }
        let keep = request.wants_keep_alive() && served + 1 < state.keepalive_max;
        let response = route(&request, state);
        if response.write_connection(&mut stream, keep).is_err() || !keep {
            return;
        }
    }
}

/// Dispatches one request. Total: every `(method, path)` gets an answer.
/// Paths are matched first, so a known path with the wrong verb is a 405
/// carrying an `Allow` header, and only unknown paths are 404.
fn route(request: &Request, state: &ServerState) -> Response {
    obs::counter("serve.http_requests", 1);
    let path = request.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    match segments.as_slice() {
        ["sessions"] => match method {
            "POST" => submit_session(request, state),
            "GET" => list_sessions(state),
            _ => method_not_allowed(method, path, "GET, POST"),
        },
        ["sessions", id] => match method {
            "GET" => with_session(state, id, |s| session_status(request, s)),
            "DELETE" => with_session(state, id, cancel_session),
            _ => method_not_allowed(method, path, "GET, DELETE"),
        },
        ["sessions", id, "queries"] => match method {
            "POST" => with_session(state, id, |s| feed_queries(request, state, s)),
            _ => method_not_allowed(method, path, "POST"),
        },
        ["sessions", id, "config"] => match method {
            "GET" => with_session(state, id, |s| {
                let session = s.lock();
                match session.config_json() {
                    Some(doc) => Response::json(200, &doc),
                    None => Response::error(
                        409,
                        &format!(
                            "session is {} and has no configuration yet",
                            session.state.name()
                        ),
                    ),
                }
            }),
            _ => method_not_allowed(method, path, "GET"),
        },
        ["metrics"] => match method {
            "GET" => metrics(state),
            _ => method_not_allowed(method, path, "GET"),
        },
        ["healthz"] => match method {
            "GET" => Response::json(200, &json!({ "ok": true })),
            _ => method_not_allowed(method, path, "GET"),
        },
        ["shard", "healthz"] => match method {
            "GET" => shard_healthz(state),
            _ => method_not_allowed(method, path, "GET"),
        },
        ["shard", "drain"] => match method {
            "POST" => {
                state.draining.store(true, Ordering::SeqCst);
                obs::counter("serve.shard_drains", 1);
                Response::json(200, &json!({ "draining": true }))
            }
            _ => method_not_allowed(method, path, "POST"),
        },
        ["shard", "adopt"] => match method {
            "POST" => adopt_session(request, state),
            _ => method_not_allowed(method, path, "POST"),
        },
        ["shutdown"] => match method {
            "POST" => {
                state.shutdown.store(true, Ordering::SeqCst);
                // The accept loop re-checks the flag only when accept()
                // returns; poke it so the daemon exits now instead of on
                // the next unrelated connection (mirrors
                // ServerHandle::shutdown).
                let _ = TcpStream::connect(state.addr);
                Response::json(200, &json!({ "shutting_down": true }))
            }
            _ => method_not_allowed(method, path, "POST"),
        },
        _ => Response::error(404, &format!("no route for {path}")),
    }
}

/// Upper bound on one long-poll wait; larger requests are clamped, so a
/// client cannot pin a connection thread longer than this per request.
pub const MAX_WAIT_MS: u64 = 30_000;

/// Extracts an integer query parameter from a raw request path.
fn query_param_u64(path: &str, name: &str) -> Option<u64> {
    let query = path.split_once('?')?.1;
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        if k == name {
            v.parse().ok()
        } else {
            None
        }
    })
}

/// The `GET /sessions/<id>` handler. With `?wait_ms=N` the response is
/// long-polled: held until the session leaves its current state or the
/// (clamped) wait elapses. Terminal sessions answer immediately — there
/// is no further transition to wait for.
fn session_status(request: &Request, handle: &SessionHandle) -> Response {
    let wait_ms = query_param_u64(&request.path, "wait_ms")
        .unwrap_or(0)
        .min(MAX_WAIT_MS);
    let current = handle.lock().state;
    if wait_ms == 0 || current.is_terminal() {
        return Response::json(200, &handle.lock().status_json());
    }
    obs::counter("serve.long_polls", 1);
    let session = handle.wait_changed(current, wait_ms);
    Response::json(200, &session.status_json())
}

/// The `GET /shard/healthz` handler: shard identity plus enough load
/// signal for the coordinator's probe loop (state counts double as a
/// queue-pressure readout).
fn shard_healthz(state: &ServerState) -> Response {
    let shard_id = match state.shard_id {
        Some(id) => Value::Int(id as i64),
        None => Value::Null,
    };
    Response::json(
        200,
        &json!({
            "ok": true,
            "shard_id": shard_id,
            "draining": state.draining.load(Ordering::SeqCst),
            "sessions": state.registry.state_counts_json(),
        }),
    )
}

/// The `POST /shard/adopt` handler: coordinator-placed session admission.
///
/// Identical to `POST /sessions` except the session id and tenant come
/// from the body — the coordinator allocates ids fleet-wide and the ring
/// keys on them, so the shard must register the session under exactly
/// that id. Global (fleet) quota was already enforced by the coordinator;
/// the shard still refuses duplicates, drain mode and a full queue.
fn adopt_session(request: &Request, state: &ServerState) -> Response {
    if state.shutdown.load(Ordering::SeqCst) {
        return Response::error(503, "server is shutting down");
    }
    if state.draining.load(Ordering::SeqCst) {
        return Response::error(503, "shard is draining");
    }
    let Some(body) = request.body_str() else {
        return Response::error(400, "body is not UTF-8");
    };
    let doc = match lt_common::json::parse(if body.trim().is_empty() { "{}" } else { body }) {
        Ok(doc) => doc,
        Err(err) => return Response::error(400, &format!("invalid JSON: {err}")),
    };
    let Some(id) = doc.get("id").and_then(|v| v.as_i64()).filter(|&v| v > 0) else {
        return Response::error(400, "\"id\" must be a positive integer");
    };
    let id = id as u64;
    let tenant = doc
        .get("tenant")
        .and_then(|v| v.as_str())
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .unwrap_or("default")
        .to_string();
    let Some(req_doc) = doc.get("request") else {
        return Response::error(400, "\"request\" object is required");
    };
    let tune_request = match TuneRequest::from_json(req_doc) {
        Ok(req) => req,
        Err(err) => {
            obs::counter("serve.sessions_rejected", 1);
            return Response::error(400, err.message());
        }
    };
    if state.registry.get(id).is_some() {
        return Response::error(409, &format!("session {id} already exists on this shard"));
    }
    let handle = state.registry.restore_handle(id, &tenant, tune_request);
    let created = SessionRecord::Created {
        id,
        tenant: tenant.clone(),
        request: handle.lock().request.to_wal_json(),
    };
    // Same acknowledgement contract as `POST /sessions`: the fsync happens
    // before the 202, so an acked adoption survives a shard crash.
    handle.log_sync(&created);
    match state.pool.submit(handle.clone()) {
        Ok(()) => {
            obs::counter("serve.sessions_accepted", 1);
            obs::counter("serve.sessions_adopted", 1);
            Response::json(202, &json!({ "id": id, "state": "queued" }))
        }
        Err(reason) => {
            handle.log_sync(&SessionRecord::Removed { id });
            state.registry.remove(id);
            obs::counter("serve.sessions_rejected", 1);
            match reason {
                SubmitError::QueueFull => Response::error(429, "job queue is full, retry later"),
                SubmitError::ShuttingDown => Response::error(503, "server is shutting down"),
            }
        }
    }
}

/// 405 for a known path whose method set does not include `method`.
fn method_not_allowed(method: &str, path: &str, allow: &'static str) -> Response {
    Response::error(
        405,
        &format!("method {method} not allowed for {path} (allow: {allow})"),
    )
    .with_header("Allow", allow)
}

/// The `DELETE /sessions/<id>` handler.
fn cancel_session(s: &crate::session::SessionHandle) -> Response {
    let already_terminal = {
        let session = s.lock();
        session.state.is_terminal()
    };
    if !already_terminal {
        s.cancel();
        // A queued session may sit behind long jobs; flip it now so
        // DELETE is immediate for work that never started. Running
        // sessions flip when the worker observes the token.
        let mut session = s.lock();
        if session.state == SessionState::Queued {
            session.state = SessionState::Cancelled;
            obs::counter("serve.sessions_cancelled", 1);
            s.log_sync(&SessionRecord::Transition {
                id: session.id,
                state: SessionState::Cancelled,
                error: None,
            });
            drop(session);
            s.notify_change();
        }
    }
    let (id, state_name) = {
        let session = s.lock();
        (session.id, session.state.name())
    };
    Response::json(200, &json!({ "id": id, "state": state_name }))
}

fn submit_session(request: &Request, state: &ServerState) -> Response {
    if state.shutdown.load(Ordering::SeqCst) {
        return Response::error(503, "server is shutting down");
    }
    if state.draining.load(Ordering::SeqCst) {
        return Response::error(503, "shard is draining");
    }
    let Some(body) = request.body_str() else {
        return Response::error(400, "body is not UTF-8");
    };
    let doc = match lt_common::json::parse(if body.trim().is_empty() { "{}" } else { body }) {
        Ok(doc) => doc,
        Err(err) => return Response::error(400, &format!("invalid JSON: {err}")),
    };
    let tune_request = match TuneRequest::from_json(&doc) {
        Ok(req) => req,
        Err(err) => {
            obs::counter("serve.sessions_rejected", 1);
            return Response::error(400, err.message());
        }
    };
    // Tenancy is declared, not authenticated — this models quota
    // accounting, not security. Missing/blank headers share one bucket.
    let tenant = request
        .header("x-tenant")
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .unwrap_or("default")
        .to_string();
    let handle =
        match state
            .registry
            .create_if_within_quota(tune_request, &tenant, state.tenant_cap)
        {
            Ok(handle) => handle,
            Err(active) => {
                obs::counter("serve.tenant_rejected", 1);
                return Response::error(
                    429,
                    &format!(
                        "tenant {tenant:?} has {active} active sessions (cap {}), retry later",
                        state.tenant_cap
                    ),
                )
                .with_header("Retry-After", "30");
            }
        };
    // The admission record is fsynced before the 202: once the client has
    // an acknowledgement, a crash cannot lose the session.
    let (id, created) = {
        let s = handle.lock();
        (
            s.id,
            SessionRecord::Created {
                id: s.id,
                tenant: tenant.clone(),
                request: s.request.to_wal_json(),
            },
        )
    };
    handle.log_sync(&created);
    match state.pool.submit(handle.clone()) {
        Ok(()) => {
            obs::counter("serve.sessions_accepted", 1);
            Response::json(202, &json!({ "id": id, "state": "queued" }))
        }
        Err(reason) => {
            // Admission failed: the session never existed as far as the
            // client is concerned — the `removed` record withdraws the
            // `created` so recovery does not resurrect it.
            handle.log_sync(&SessionRecord::Removed { id });
            state.registry.remove(id);
            obs::counter("serve.sessions_rejected", 1);
            match reason {
                SubmitError::QueueFull => Response::error(429, "job queue is full, retry later"),
                SubmitError::ShuttingDown => Response::error(503, "server is shutting down"),
            }
        }
    }
}

/// Upper bound on queries per feed call (`POST /sessions/<id>/queries`):
/// clients stream batches, they do not dump a history in one request.
const MAX_FEED_QUERIES: usize = 512;

/// The `POST /sessions/<id>/queries` handler: executes a batch of observed
/// queries on the session's serving database, feeds the drift monitor and,
/// when an alarm fires on a session with `auto_retune`, moves it to
/// `retuning` and hands it back to the worker pool for a warm-start
/// re-tune. The batch is either a `"queries"` array of literal SQL
/// strings or an inline `"spec"` workload spec expanded by `lt-synth`;
/// both run through the same validation and logging.
fn feed_queries(request: &Request, state: &ServerState, handle: &SessionHandle) -> Response {
    let Some(body) = request.body_str() else {
        return Response::error(400, "body is not UTF-8");
    };
    let doc = match lt_common::json::parse(if body.trim().is_empty() { "{}" } else { body }) {
        Ok(doc) => doc,
        Err(err) => return Response::error(400, &format!("invalid JSON: {err}")),
    };
    if doc.get("queries").is_some() && doc.get("spec").is_some() {
        return Response::error(400, "provide either \"queries\" or \"spec\", not both");
    }
    let sqls = if let Some(spec_doc) = doc.get("spec") {
        // Declarative feed: synthesize the batch from an inline workload
        // spec, then fall through to the literal-query path — the same
        // all-or-nothing catalog validation, execution, and write-ahead
        // logging (the WAL records the expanded SQL, so recovery replays
        // the feed byte-for-byte without re-running the synthesizer).
        let spec = match WorkloadSpec::from_json(spec_doc) {
            Ok(spec) => spec,
            Err(err) => return Response::error(400, err.message()),
        };
        if spec.queries > MAX_FEED_QUERIES {
            return Response::error(400, &format!("at most {MAX_FEED_QUERIES} queries per call"));
        }
        let synthesis = match Synthesizer::shared(spec.benchmark).synthesize(&spec) {
            Ok(s) => s,
            Err(err) => {
                return Response::error(400, &format!("spec synthesis failed: {}", err.message()))
            }
        };
        obs::counter("serve.spec_feeds", 1);
        synthesis
            .workload
            .queries
            .iter()
            .map(|q| q.sql.clone())
            .collect()
    } else {
        let Some(Value::Array(items)) = doc.get("queries") else {
            return Response::error(400, "\"queries\" must be an array of SQL strings");
        };
        if items.is_empty() {
            return Response::error(400, "\"queries\" must not be empty");
        }
        if items.len() > MAX_FEED_QUERIES {
            return Response::error(400, &format!("at most {MAX_FEED_QUERIES} queries per call"));
        }
        let mut sqls = Vec::with_capacity(items.len());
        for item in items {
            match item.as_str() {
                Some(sql) => sqls.push(sql.to_string()),
                None => return Response::error(400, "\"queries\" must be an array of SQL strings"),
            }
        }
        sqls
    };

    let mut session = handle.lock();
    if session.state != SessionState::Done {
        return Response::error(
            409,
            &format!(
                "session is {}; queries can only be fed to a done session",
                session.state.name()
            ),
        );
    }
    let auto_retune = session.request.auto_retune;
    let Session {
        id,
        serving,
        drift,
        state: session_state,
        ..
    } = &mut *session;
    let id = *id;
    let Some(serving) = serving.as_mut() else {
        return Response::error(
            409,
            "session kept no serving state (tuning found no configuration)",
        );
    };

    // Validate the whole batch against the session's catalog before
    // executing any of it: a feed is all-or-nothing, so a typo in query
    // 40 cannot leave the monitor half-updated.
    let labels: Vec<String> = (0..sqls.len())
        .map(|i| format!("f{}", drift.queries_observed + 1 + i as u64))
        .collect();
    let pairs: Vec<(&str, String)> = labels
        .iter()
        .zip(&sqls)
        .map(|(label, sql)| (label.as_str(), sql.clone()))
        .collect();
    let workload = match Workload::from_sql("feed", serving.db.catalog().clone(), &pairs) {
        Ok(w) => w,
        Err(err) => return Response::error(400, &format!("bad query batch: {err}")),
    };
    // Parsing is catalog-free; resolve table names here so a query against
    // a table this session never tuned is rejected instead of silently
    // profiled as an empty plan.
    for q in &workload.queries {
        let analysis = lt_sql::analysis::analyze(&q.parsed);
        for table in &analysis.tables {
            if workload.catalog.table_by_name(table).is_none() {
                return Response::error(
                    400,
                    &format!(
                        "bad query batch: query {}: unknown table {table:?}",
                        q.label
                    ),
                );
            }
        }
    }

    // Single execution path shared with write-ahead-log replay — see
    // [`crate::session::ServingState::observe_queries`].
    let events = serving.observe_queries(&workload);
    obs::counter("serve.queries_fed", workload.queries.len() as u64);
    obs::counter("serve.drift_events", events.len() as u64);
    drift.queries_observed = serving.monitor.observed();
    drift.events.extend(events.iter().cloned());
    let observed = drift.queries_observed;
    let should_retune = auto_retune && !events.is_empty();
    // Both records are written (fsynced) inside the session lock so the
    // log's feed/transition order matches execution order exactly.
    handle.log_sync(&SessionRecord::Feed {
        id,
        sqls: sqls.clone(),
    });
    if should_retune {
        *session_state = SessionState::Retuning;
        handle.log_sync(&SessionRecord::Transition {
            id,
            state: SessionState::Retuning,
            error: None,
        });
    }
    drop(session);
    handle.notify_change();

    // The pool submit happens outside the session lock; a worker that
    // picks the job up immediately must be able to lock the session.
    let mut retune_submitted = false;
    if should_retune {
        match state.pool.submit_retune(handle.clone()) {
            Ok(()) => retune_submitted = true,
            Err(reason) => {
                let mut s = handle.lock();
                s.state = SessionState::Done;
                s.drift.last_error = Some(match reason {
                    SubmitError::QueueFull => "re-tune not queued: job queue full".to_string(),
                    SubmitError::ShuttingDown => {
                        "re-tune not queued: server shutting down".to_string()
                    }
                });
                obs::counter("serve.retunes_rejected", 1);
                // Advisory rollback: withdraws the `retuning` transition so
                // recovery does not re-queue a re-tune the client was told
                // is not happening.
                handle.log_sync(&SessionRecord::Transition {
                    id,
                    state: SessionState::Done,
                    error: s.drift.last_error.clone(),
                });
                drop(s);
                handle.notify_change();
            }
        }
    }
    let events_json: Vec<Value> = events.iter().map(|e| e.to_json()).collect();
    Response::json(
        200,
        &json!({
            "executed": sqls.len(),
            "queries_observed": observed,
            "events": Value::Array(events_json),
            "retune": retune_submitted,
        }),
    )
}

fn list_sessions(state: &ServerState) -> Response {
    let sessions: Vec<Value> = state
        .registry
        .states()
        .into_iter()
        .map(|(id, s)| json!({ "id": id, "state": s.name() }))
        .collect();
    Response::json(200, &json!({ "sessions": Value::Array(sessions) }))
}

fn metrics(state: &ServerState) -> Response {
    let mut doc = obs::snapshot().to_metrics_json();
    if let Value::Object(entries) = &mut doc {
        entries.push(("sessions".to_string(), state.registry.state_counts_json()));
        if let Some(id) = state.shard_id {
            entries.push(("shard_id".to_string(), Value::Int(id as i64)));
        }
    }
    Response::json(200, &doc)
}

fn with_session(
    state: &ServerState,
    id: &str,
    f: impl FnOnce(&crate::session::SessionHandle) -> Response,
) -> Response {
    let Ok(id) = id.parse::<u64>() else {
        return Response::error(400, "session id must be an integer");
    };
    match state.registry.get(id) {
        Some(handle) => f(&handle),
        None => Response::error(404, &format!("no session {id}")),
    }
}
