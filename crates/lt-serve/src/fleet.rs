//! Multi-process shard fabric: spawns N `lt-serve` shard daemons plus one
//! coordinator fronting them, for the sharded serving benchmark and the
//! CI shard gate.
//!
//! Everything here is real processes over real loopback TCP — the same
//! binary an operator would run, found next to the current executable.
//! Each shard gets its own WAL directory under a per-fleet scratch root,
//! so kill/restart scenarios exercise the PR 7 recovery path exactly as a
//! production crash would: SIGKILL the child, respawn it on the same
//! address with the same `--wal-dir`, and the coordinator's next probe
//! folds it back in.

use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One shard child process.
pub struct ShardProc {
    /// Stable shard id (ring identity; survives restarts).
    pub id: u32,
    /// Bound address. Restarts rebind the same address so the
    /// coordinator's static shard table stays valid.
    pub addr: SocketAddr,
    /// The shard's WAL directory (reused across restarts — that is the
    /// whole point).
    pub wal_dir: PathBuf,
    child: Option<Child>,
}

impl ShardProc {
    /// True while the child process handle is held (i.e. not killed).
    pub fn running(&self) -> bool {
        self.child.is_some()
    }
}

/// A coordinator + N shards, all child processes.
pub struct Fleet {
    bin: PathBuf,
    root: PathBuf,
    workers: usize,
    envs: Vec<(String, String)>,
    /// The shard children, index-stable (killed shards keep their slot).
    pub shards: Vec<ShardProc>,
    coordinator: Option<Child>,
    coordinator_addr: SocketAddr,
}

/// Locates the `lt-serve` binary next to the current executable (works
/// from the release bin dir and from `target/.../deps` test binaries).
pub fn server_binary() -> io::Result<PathBuf> {
    let exe = std::env::current_exe()?;
    let mut dirs: Vec<&Path> = Vec::new();
    if let Some(d) = exe.parent() {
        dirs.push(d);
        if let Some(dd) = d.parent() {
            dirs.push(dd);
        }
    }
    for dir in dirs {
        let candidate = dir.join("lt-serve");
        if candidate.exists() {
            return Ok(candidate);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "lt-serve binary not found next to the current executable (build it first)",
    ))
}

/// Fleet-unique scratch root under the system temp dir.
fn scratch_root() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lt-fleet-{}-{n}", std::process::id()))
}

/// Spawns a child and reads its announced address: the first stdout line
/// containing `http://`. Keeps draining stdout afterwards so the child
/// never blocks on a full pipe.
fn spawn_announced(mut cmd: Command) -> io::Result<(Child, SocketAddr)> {
    let mut child = cmd.stdout(Stdio::piped()).spawn()?;
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.split("http://").nth(1) {
                    let text = rest.split_whitespace().next().unwrap_or("");
                    match text.parse() {
                        Ok(addr) => break addr,
                        Err(_) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("bad address in announcement {line:?}"),
                            ));
                        }
                    }
                }
            }
            _ => {
                let _ = child.wait();
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "child exited before announcing its address",
                ));
            }
        }
    };
    std::thread::spawn(move || for _line in lines.map_while(Result::ok) {});
    Ok((child, addr))
}

impl Fleet {
    /// Spawns `n` shard daemons (each with `workers` pool workers and its
    /// own WAL dir) and a coordinator fronting them. `envs` is applied to
    /// every child — the place for `LT_LLM_LATENCY_MS`, `LT_SHARD_VNODES`
    /// and friends. Blocks until the coordinator answers `/healthz`.
    pub fn spawn(n: usize, workers: usize, envs: &[(String, String)]) -> io::Result<Fleet> {
        let bin = server_binary()?;
        let root = scratch_root();
        std::fs::create_dir_all(&root)?;
        let mut fleet = Fleet {
            bin,
            root,
            workers,
            envs: envs.to_vec(),
            shards: Vec::new(),
            coordinator: None,
            coordinator_addr: "127.0.0.1:0".parse().unwrap(),
        };
        for id in 0..n as u32 {
            let wal_dir = fleet.root.join(format!("shard-{id}"));
            let (child, addr) = spawn_announced(fleet.shard_command(id, &wal_dir, None))?;
            fleet.shards.push(ShardProc {
                id,
                addr,
                wal_dir,
                child: Some(child),
            });
        }

        let mut cmd = Command::new(&fleet.bin);
        cmd.args(["--coordinator", "--addr", "127.0.0.1:0"]);
        for shard in &fleet.shards {
            cmd.args(["--shard", &format!("{}={}", shard.id, shard.addr)]);
        }
        for (k, v) in &fleet.envs {
            cmd.env(k, v);
        }
        let (child, addr) = spawn_announced(cmd)?;
        fleet.coordinator = Some(child);
        fleet.coordinator_addr = addr;
        fleet.await_healthy(Duration::from_secs(10))?;
        Ok(fleet)
    }

    fn shard_command(&self, id: u32, wal_dir: &Path, addr: Option<SocketAddr>) -> Command {
        let mut cmd = Command::new(&self.bin);
        let bind = addr.map_or_else(|| "127.0.0.1:0".to_string(), |a| a.to_string());
        cmd.args(["--addr", &bind, "--workers", &self.workers.to_string()]);
        cmd.args(["--wal-dir".as_ref(), wal_dir.as_os_str()]);
        cmd.args(["--shard-id", &id.to_string()]);
        for (k, v) in &self.envs {
            cmd.env(k, v);
        }
        cmd
    }

    /// The coordinator's address — the fabric's only client-facing door.
    pub fn coordinator_addr(&self) -> SocketAddr {
        self.coordinator_addr
    }

    fn await_healthy(&self, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Ok((200, _)) =
                crate::http::request(self.coordinator_addr, "GET", "/healthz", None)
            {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "coordinator never became healthy",
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// SIGKILLs shard `index` — no drain, no flush: the crash scenario.
    pub fn kill_shard(&mut self, index: usize) {
        if let Some(mut child) = self.shards[index].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Respawns a killed shard on its original address with its original
    /// WAL dir. Rebinding a just-freed port can transiently fail, so this
    /// retries for a few seconds.
    pub fn restart_shard(&mut self, index: usize) -> io::Result<()> {
        let (id, addr, wal_dir) = {
            let s = &self.shards[index];
            (s.id, s.addr, s.wal_dir.clone())
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match spawn_announced(self.shard_command(id, &wal_dir, Some(addr))) {
                Ok((child, bound)) => {
                    debug_assert_eq!(bound, addr);
                    self.shards[index].child = Some(child);
                    return Ok(());
                }
                Err(err) if Instant::now() < deadline => {
                    let _ = err;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Graceful teardown: shut the coordinator down first (so nothing
    /// routes), then every live shard, then remove the scratch root.
    pub fn shutdown(&mut self) {
        if let Some(mut child) = self.coordinator.take() {
            let _ = crate::http::request(self.coordinator_addr, "POST", "/shutdown", None);
            if !wait_with_timeout(&mut child, Duration::from_secs(5)) {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
        for shard in &mut self.shards {
            if let Some(mut child) = shard.child.take() {
                let _ = crate::http::request(shard.addr, "POST", "/shutdown", None);
                if !wait_with_timeout(&mut child, Duration::from_secs(5)) {
                    let _ = child.kill();
                }
                let _ = child.wait();
            }
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Polls `try_wait` until the child exits or `timeout` passes.
fn wait_with_timeout(child: &mut Child, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return true,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            _ => return false,
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // Best-effort: never leak children or scratch dirs, even on panic.
        if let Some(mut child) = self.coordinator.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        for shard in &mut self.shards {
            if let Some(mut child) = shard.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        let _ = std::fs::remove_dir_all(&self.root);
    }
}
