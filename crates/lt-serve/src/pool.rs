//! The worker pool: a bounded MPSC job queue feeding a fixed set of tuning
//! threads.
//!
//! Accept threads never run the pipeline — they parse the request, register
//! a session and hand it to the pool. `try_send` on the bounded channel is
//! the admission control: a full queue surfaces as HTTP 429 at the server
//! layer rather than unbounded memory growth here. Dropping the sender is
//! the shutdown signal; workers drain whatever was already queued and exit,
//! so a graceful shutdown never abandons an accepted session.

use crate::session::{SessionHandle, SessionState};
use lambda_tune::LambdaTune;
use lt_common::{obs, LtError, Secs};
use lt_dbms::{Configuration, SimDb};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// A fixed-size pool of tuning workers behind a bounded queue.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Mutex<Option<SyncSender<SessionHandle>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — the client should retry later (429).
    QueueFull,
    /// The pool is shutting down — no new work is accepted (503).
    ShuttingDown,
}

impl WorkerPool {
    /// Starts `workers` tuning threads behind a queue of depth `queue_depth`.
    pub fn start(workers: usize, queue_depth: usize) -> WorkerPool {
        let workers = workers.max(1);
        let queue_depth = queue_depth.max(1);
        let (sender, receiver) = sync_channel::<SessionHandle>(queue_depth);
        // std's Receiver is single-consumer; share it behind a mutex so the
        // pool pulls jobs work-stealing style.
        let receiver = std::sync::Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("lt-serve-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = match receiver.lock() {
                                Ok(g) => g,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            guard.recv()
                        };
                        match job {
                            Ok(session) => run_session(&session),
                            Err(_) => break, // all senders dropped: shutdown
                        }
                    })
                    .expect("spawn lt-serve worker")
            })
            .collect();
        WorkerPool {
            sender: Mutex::new(Some(sender)),
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues a session without blocking.
    pub fn submit(&self, session: SessionHandle) -> Result<(), SubmitError> {
        let guard = match self.sender.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let sender = guard.as_ref().ok_or(SubmitError::ShuttingDown)?;
        match sender.try_send(session) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(SubmitError::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Graceful shutdown: stops accepting work, lets the workers drain the
    /// queue and joins them. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut guard = match self.sender.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.take(); // closes the channel once the last clone drops
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = match self.workers.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Total workload time under the database's *current* configuration with no
/// cap (the denominator of the scaled cost reported by `/config`).
fn measure_default(db: &mut SimDb, workload: &Workload) -> Secs {
    let mut total = Secs::ZERO;
    for wq in &workload.queries {
        total += db.execute(&wq.parsed, Secs::INFINITY).time;
    }
    total
}

/// Runs one session end to end on the calling worker thread. Never panics:
/// the pipeline is wrapped in `catch_unwind`, so the worst a poisoned
/// request can do is fail its own session.
pub fn run_session(session: &SessionHandle) {
    // A cancel that raced the queue wins without spending any work.
    {
        let mut s = session.lock();
        if session.cancel_requested() && s.state == SessionState::Queued {
            s.state = SessionState::Cancelled;
            obs::counter("serve.sessions_cancelled", 1);
            return;
        }
        if s.state != SessionState::Queued {
            return;
        }
        s.state = SessionState::Tuning;
    }
    obs::counter("serve.sessions_started", 1);

    let request = session.lock().request.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| tune_session(session)));

    let mut s = session.lock();
    match outcome {
        Ok(Ok(cancelled)) => {
            if cancelled {
                s.state = SessionState::Cancelled;
                obs::counter("serve.sessions_cancelled", 1);
            } else {
                s.state = SessionState::Done;
                obs::counter("serve.sessions_done", 1);
            }
        }
        Ok(Err(err)) => {
            s.state = SessionState::Failed;
            s.error = Some(err.to_string());
            obs::counter("serve.sessions_failed", 1);
        }
        Err(panic) => {
            let what = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            s.state = SessionState::Failed;
            s.error = Some(format!(
                "worker panicked while tuning seed {}: {what}",
                request.seed
            ));
            obs::counter("serve.sessions_failed", 1);
            obs::counter("serve.worker_panics", 1);
        }
    }
}

/// The fallible part of a session: builds the per-session database, applies
/// any initial configuration, measures the default workload time and runs
/// the pipeline. Returns `Ok(true)` when the run was cancelled mid-flight.
fn tune_session(session: &SessionHandle) -> lt_common::Result<bool> {
    let request = session.lock().request.clone();
    let workload = request.benchmark.load();

    // Denominator of the scaled cost: the workload under the *default*
    // configuration, on a fresh database with the same seed (the tuning
    // database must not see these executions in its plan cache timeline).
    let mut default_db = SimDb::new(
        request.dbms,
        workload.catalog.clone(),
        request.hardware,
        request.seed,
    );
    let default_time = measure_default(&mut default_db, &workload);
    session.lock().default_time = Some(default_time.as_f64());

    let mut db = SimDb::new(
        request.dbms,
        workload.catalog.clone(),
        request.hardware,
        request.seed,
    );
    if let Some(script) = &request.initial_config {
        let config = Configuration::parse(script, request.dbms, db.catalog());
        if config.is_empty() && !config.warnings.is_empty() {
            return Err(LtError::Config(format!(
                "initial_config has no valid statements: {}",
                config.warnings.join("; ")
            )));
        }
        db.apply_knobs(&config);
        for spec in config.index_specs() {
            db.create_index(spec);
        }
    }

    let sink = std::sync::Arc::new(session.observer());
    let tuner = LambdaTune::new(request.options).with_observer(sink);
    let llm = LlmClient::new(SimulatedLlm::new());
    let result = tuner.tune(&mut db, &workload, &llm)?;

    let mut s = session.lock();
    s.best_script = result
        .best_config
        .as_ref()
        .map(|c| c.to_script(request.dbms, db.catalog()));
    s.best_time = Some(result.best_time.as_f64());
    s.tuning_time = Some(result.tuning_time.as_f64());
    s.trajectory = result.trajectory.clone();
    Ok(result.cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionRegistry, TuneRequest};
    use lt_common::json::parse;

    fn quick_request(extra: &str) -> TuneRequest {
        let body = format!(r#"{{"benchmark": "tpch", "num_configs": 2{extra}}}"#);
        TuneRequest::from_json(&parse(&body).unwrap()).unwrap()
    }

    #[test]
    fn runs_a_session_to_done_with_a_config() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(""));
        run_session(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Done, "error: {:?}", s.error);
        assert!(s.best_script.is_some());
        assert!(s.default_time.unwrap() > 0.0);
        assert!(s.best_time.unwrap() > 0.0);
        assert!(s.samples_done >= 2);
        let config = s.config_json().unwrap();
        assert!(config.get("scaled_cost").is_some());
    }

    #[test]
    fn pool_processes_jobs_and_drains_on_shutdown() {
        let registry = SessionRegistry::new();
        let pool = WorkerPool::start(2, 8);
        let handles: Vec<_> = (0..4)
            .map(|i| registry.create(quick_request(&format!(r#", "seed": {i}"#))))
            .collect();
        for h in &handles {
            pool.submit(h.clone()).unwrap();
        }
        pool.shutdown(); // joins only after the queue is drained
        for h in &handles {
            let s = h.lock();
            assert_eq!(s.state, SessionState::Done, "error: {:?}", s.error);
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let registry = SessionRegistry::new();
        let pool = WorkerPool::start(1, 1);
        pool.shutdown();
        let err = pool.submit(registry.create(quick_request(""))).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
    }

    #[test]
    fn cancelled_before_start_never_tunes() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(""));
        handle.cancel();
        run_session(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Cancelled);
        assert_eq!(s.samples_done, 0);
    }

    #[test]
    fn invalid_initial_config_fails_the_session_not_the_worker() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(
            r#", "initial_config": "FROBNICATE THE DATABASE;""#,
        ));
        run_session(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Failed);
        assert!(s.error.as_deref().unwrap().contains("initial_config"));
    }

    #[test]
    fn partially_valid_initial_config_is_applied() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(
            r#", "initial_config": "SET work_mem = '64MB'; FROBNICATE;""#,
        ));
        run_session(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Done, "error: {:?}", s.error);
    }
}
