//! The worker pool: a bounded, tenant-fair job queue feeding a fixed set of
//! tuning threads.
//!
//! Accept threads never run the pipeline — they parse the request, register
//! a session and hand it to the pool. The bounded queue is the admission
//! control: a full queue surfaces as HTTP 429 at the server layer rather
//! than unbounded memory growth here. Closing the queue is the shutdown
//! signal; workers drain whatever was already queued and exit, so a graceful
//! shutdown never abandons an accepted session.
//!
//! Pickup is **deficit-round-robin across tenants**, not global FIFO: each
//! tenant gets its own FIFO, and workers take one job per tenant per round.
//! Every job costs one quantum (a session tune), so the classic DRR deficit
//! counter degenerates to plain rotation — but the fairness property is the
//! full one: a tenant submitting 10× faster than another cannot delay the
//! slow tenant's next job by more than one round. Tie-breaks are
//! deterministic: tenants join the rotation in first-arrival order and keep
//! their slot until their queue drains.

use crate::session::{ServingState, SessionHandle, SessionState, TuneRequest};
use crate::wal::SessionRecord;
use lambda_tune::{LambdaTune, SampleCache, WarmStart};
use lt_common::{derive_seed, obs, LtError, Secs};
use lt_dbms::{Configuration, TuningTarget};
use lt_drift::{
    delta_prompt, retune, warm_options, DriftMonitor, LabeledProfile, Profile, RetuneOptions,
    TuneMemory, WorkloadDelta,
};
use lt_fleet::{FleetCache, FleetEntry, FleetKey, TransferOptions};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_workloads::Workload;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One unit of worker-pool work.
#[derive(Debug)]
enum Job {
    /// Run a freshly queued session end to end.
    Tune(SessionHandle),
    /// Warm-start re-tune a session that a drift alarm moved to
    /// [`SessionState::Retuning`].
    Retune(SessionHandle),
}

impl Job {
    fn tenant(&self) -> String {
        let handle = match self {
            Job::Tune(s) | Job::Retune(s) => s,
        };
        handle.lock().tenant.clone()
    }
}

/// Bounded multi-tenant job queue with deficit-round-robin pickup.
///
/// Per-tenant FIFOs keyed in a `BTreeMap` (deterministic iteration), plus a
/// rotation list of tenants that currently have work. `pop` serves the front
/// tenant one job and moves it to the back of the rotation; a tenant whose
/// FIFO drains leaves the rotation and re-enters at the back on its next
/// submission. Total occupancy is bounded by `depth` across all tenants.
#[derive(Debug)]
struct JobQueue {
    inner: Mutex<QueueInner>,
    available: Condvar,
    depth: usize,
}

#[derive(Debug)]
struct QueueInner {
    queues: BTreeMap<String, VecDeque<Job>>,
    rotation: VecDeque<String>,
    len: usize,
    closed: bool,
}

impl JobQueue {
    fn new(depth: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                queues: BTreeMap::new(),
                rotation: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            available: Condvar::new(),
            depth,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Non-blocking bounded push; the admission-control edge.
    fn push(&self, job: Job) -> Result<(), SubmitError> {
        let tenant = job.tenant();
        let mut inner = self.lock();
        if inner.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.len >= self.depth {
            return Err(SubmitError::QueueFull);
        }
        let fifo = inner.queues.entry(tenant.clone()).or_default();
        let was_empty = fifo.is_empty();
        fifo.push_back(job);
        inner.len += 1;
        if was_empty {
            inner.rotation.push_back(tenant);
        }
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Pops up to `max` jobs in DRR order, blocking for the first one.
    /// Returns an empty vec only when the queue is closed and drained.
    fn pop_batch(&self, max: usize) -> Vec<Job> {
        let mut inner = self.lock();
        loop {
            if inner.len > 0 {
                break;
            }
            if inner.closed {
                return Vec::new();
            }
            inner = match self.available.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        let mut jobs = Vec::new();
        while jobs.len() < max && inner.len > 0 {
            let tenant = inner.rotation.pop_front().expect("rotation tracks len");
            let fifo = inner.queues.get_mut(&tenant).expect("rotation has queue");
            jobs.push(fifo.pop_front().expect("rotation queues are non-empty"));
            let drained = fifo.is_empty();
            inner.len -= 1;
            if drained {
                inner.queues.remove(&tenant);
            } else {
                inner.rotation.push_back(tenant);
            }
        }
        jobs
    }

    /// Stops accepting work; waiters wake and drain what remains.
    fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}

/// A fixed-size pool of tuning workers behind a bounded tenant-fair queue.
#[derive(Debug)]
pub struct WorkerPool {
    queue: Arc<JobQueue>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — the client should retry later (429).
    QueueFull,
    /// The pool is shutting down — no new work is accepted (503).
    ShuttingDown,
}

/// Coalescing batch size: how many queued sessions one worker may drain and
/// process together, sharing a single batched LLM call when they differ only
/// by seed. `LT_SERVE_BATCH`, default 1 (no coalescing) — results are
/// identical at any batch size, only the token bill changes.
fn serve_batch_from_env() -> usize {
    std::env::var("LT_SERVE_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

impl WorkerPool {
    /// Starts `workers` tuning threads behind a queue of depth `queue_depth`,
    /// coalescing up to `LT_SERVE_BATCH` queued sessions per dequeue.
    pub fn start(workers: usize, queue_depth: usize) -> WorkerPool {
        WorkerPool::start_with_batch(workers, queue_depth, serve_batch_from_env())
    }

    /// [`WorkerPool::start`] with an explicit coalescing batch size.
    pub fn start_with_batch(workers: usize, queue_depth: usize, batch: usize) -> WorkerPool {
        let workers = workers.max(1);
        let queue_depth = queue_depth.max(1);
        let batch = batch.max(1);
        let queue = Arc::new(JobQueue::new(queue_depth));
        let handles = (0..workers)
            .map(|i| {
                let queue = queue.clone();
                std::thread::Builder::new()
                    .name(format!("lt-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Take one job (blocking); when coalescing, the DRR
                        // pop opportunistically drains more already-queued
                        // jobs (still one per tenant per round) up to the
                        // batch bound.
                        let jobs = queue.pop_batch(batch);
                        if jobs.is_empty() {
                            break; // closed and drained: shutdown
                        }
                        let mut tunes = Vec::new();
                        for job in jobs {
                            match job {
                                Job::Tune(session) => tunes.push(session),
                                Job::Retune(session) => run_retune(&session),
                            }
                        }
                        run_sessions(&tunes);
                    })
                    .expect("spawn lt-serve worker")
            })
            .collect();
        WorkerPool {
            queue,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues a session without blocking.
    pub fn submit(&self, session: SessionHandle) -> Result<(), SubmitError> {
        self.enqueue(Job::Tune(session))
    }

    /// Enqueues a warm-start re-tune for a session already in
    /// [`SessionState::Retuning`], without blocking.
    pub fn submit_retune(&self, session: SessionHandle) -> Result<(), SubmitError> {
        self.enqueue(Job::Retune(session))
    }

    fn enqueue(&self, job: Job) -> Result<(), SubmitError> {
        self.queue.push(job)
    }

    /// Graceful shutdown: stops accepting work, lets the workers drain the
    /// queue and joins them. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = match self.workers.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Total workload time under the database's *current* configuration with no
/// cap (the denominator of the scaled cost reported by `/config`).
fn measure_default(db: &mut dyn TuningTarget, workload: &Workload) -> Secs {
    let mut total = Secs::ZERO;
    for wq in &workload.queries {
        total += db.execute(&wq.parsed, Secs::INFINITY).time;
    }
    total
}

/// Digest of everything *except* the seed that decides whether two queued
/// sessions would send the same prompt: workload, system flavour, hardware,
/// option group and starting configuration. Sessions sharing this key are
/// coalesced into one batched LLM call.
fn coalesce_key(request: &TuneRequest) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = lt_common::FxHasher::new();
    request.benchmark.hash(&mut h);
    request.dbms.hash(&mut h);
    request.backend.hash(&mut h);
    h.write_u64(request.hardware.memory_bytes);
    h.write_u64(request.hardware.cores as u64);
    h.write_u64(lt_fleet::options_digest(&request.options, false));
    request.initial_config.as_deref().unwrap_or("").hash(&mut h);
    h.finish()
}

/// Runs a drained batch of sessions, sharing one batched LLM call across
/// those that differ only by seed. Grouping preserves dequeue order, and a
/// failed prefetch only costs the sharing — every session still runs.
fn run_sessions(sessions: &[SessionHandle]) {
    if sessions.len() <= 1 {
        for session in sessions {
            run_session(session);
        }
        return;
    }
    let mut groups: Vec<(u64, Vec<&SessionHandle>)> = Vec::new();
    for session in sessions {
        let key = coalesce_key(&session.lock().request);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(session),
            None => groups.push((key, vec![session])),
        }
    }
    for (_, members) in groups {
        let samples = if members.len() > 1 {
            prefetch_samples(&members)
        } else {
            None
        };
        for session in members {
            run_session_with(session, samples.clone());
        }
    }
}

/// One batched LLM call covering every still-uncached session in a
/// coalesced group: the shared prompt is built (and billed) once, the
/// per-candidate seeds of all group members fan out through
/// `complete_batch`, and the responses land in a [`SampleCache`] the
/// sessions then drain. Purely an amortization — a `None` return (nothing
/// to share, or the prefetch failed) leaves every session to sample for
/// itself with identical results.
fn prefetch_samples(group: &[&SessionHandle]) -> Option<Arc<SampleCache>> {
    let request = group[0].lock().request.clone();
    let workload = request.benchmark.load();
    let mut db = request.backend.open(
        request.dbms,
        workload.catalog.clone(),
        request.hardware,
        request.seed,
    );
    if let Some(script) = &request.initial_config {
        let config = Configuration::parse(script, request.dbms, db.catalog());
        db.apply_knobs(&config);
        for spec in config.index_specs() {
            db.create_index(spec);
        }
    }
    let profile = Profile::from_workload(db.catalog(), &workload);
    let fleet = FleetCache::global();
    let mut seeds: Vec<u64> = Vec::new();
    let mut uncached = 0usize;
    for session in group {
        let options = session.lock().request.options;
        let key = FleetKey::for_session(
            db.as_ref(),
            &profile,
            &options,
            request.initial_config.as_deref().unwrap_or(""),
        );
        if fleet.contains(&key) {
            continue; // served from the tuning cache: needs no samples
        }
        uncached += 1;
        for i in 0..options.num_configs {
            let seed = derive_seed(options.seed, i as u64);
            if !seeds.contains(&seed) {
                seeds.push(seed);
            }
        }
    }
    if uncached < 2 {
        return None; // nothing to amortize across
    }
    let tuner = LambdaTune::new(request.options);
    let llm = LlmClient::new(SimulatedLlm::new());
    let (prompt, _) = tuner.build_prompt(db.as_ref(), &workload, &llm).ok()?;
    let responses = llm
        .complete_batch(&prompt, request.options.temperature, &seeds)
        .ok()?;
    let cache = Arc::new(SampleCache::new());
    for (seed, response) in seeds.iter().zip(responses) {
        cache.insert(&prompt, request.options.temperature, *seed, response);
    }
    obs::counter("fleet.coalesced_sessions", uncached as u64);
    Some(cache)
}

/// Runs one session end to end on the calling worker thread. Never panics:
/// the pipeline is wrapped in `catch_unwind`, so the worst a poisoned
/// request can do is fail its own session.
pub fn run_session(session: &SessionHandle) {
    run_session_with(session, None)
}

/// [`run_session`] with an optional prefetched sample cache from a
/// coalesced batch.
fn run_session_with(session: &SessionHandle, samples: Option<Arc<SampleCache>>) {
    // A cancel that raced the queue wins without spending any work.
    let id;
    {
        let mut s = session.lock();
        id = s.id;
        if session.cancel_requested() && s.state == SessionState::Queued {
            s.state = SessionState::Cancelled;
            obs::counter("serve.sessions_cancelled", 1);
            session.log_sync(&SessionRecord::Transition {
                id,
                state: SessionState::Cancelled,
                error: None,
            });
            drop(s);
            session.notify_change();
            return;
        }
        if s.state != SessionState::Queued {
            return;
        }
        s.state = SessionState::Tuning;
        // Batched, not fsynced: losing this record only means recovery
        // re-queues from `created`, which is the same outcome.
        session.log(&SessionRecord::Transition {
            id,
            state: SessionState::Tuning,
            error: None,
        });
    }
    session.notify_change();
    obs::counter("serve.sessions_started", 1);

    let request = session.lock().request.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| tune_session(session, samples)));

    let mut s = session.lock();
    match outcome {
        Ok(Ok(cancelled)) => {
            if cancelled {
                s.state = SessionState::Cancelled;
                obs::counter("serve.sessions_cancelled", 1);
                session.log_sync(&SessionRecord::Transition {
                    id,
                    state: SessionState::Cancelled,
                    error: None,
                });
            } else {
                s.state = SessionState::Done;
                obs::counter("serve.sessions_done", 1);
                session.log_sync(&SessionRecord::Done {
                    id,
                    retunes: s.drift.retunes,
                    outcome: crate::wal::Outcome::of(&s),
                });
            }
        }
        Ok(Err(err)) => {
            s.state = SessionState::Failed;
            s.error = Some(err.to_string());
            obs::counter("serve.sessions_failed", 1);
            session.log_sync(&SessionRecord::Transition {
                id,
                state: SessionState::Failed,
                error: s.error.clone(),
            });
        }
        Err(panic) => {
            let what = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            s.state = SessionState::Failed;
            s.error = Some(format!(
                "worker panicked while tuning seed {}: {what}",
                request.seed
            ));
            obs::counter("serve.sessions_failed", 1);
            obs::counter("serve.worker_panics", 1);
            session.log_sync(&SessionRecord::Transition {
                id,
                state: SessionState::Failed,
                error: s.error.clone(),
            });
        }
    }
    drop(s);
    session.notify_change();
}

/// True when near-miss warm-start transfer is live in the serving layer
/// (`LT_FLEET_TRANSFER=1`). Off by default: a transferred result depends on
/// what the cache happens to hold, i.e. on scheduling — enabling it trades
/// the byte-for-byte replay guarantee for cheaper near-miss sessions.
fn transfer_enabled() -> bool {
    matches!(
        std::env::var("LT_FLEET_TRANSFER").as_deref(),
        Ok("1") | Ok("on") | Ok("true")
    )
}

/// The fallible part of a session: builds the per-session database, applies
/// any initial configuration, consults the fleet tuning cache, and — on a
/// miss — measures the default workload time and runs the pipeline (an
/// exact hit replays the cached run, including its default measurement).
/// Returns `Ok(true)` when the run was cancelled mid-flight.
fn tune_session(
    session: &SessionHandle,
    samples: Option<Arc<SampleCache>>,
) -> lt_common::Result<bool> {
    let request = session.lock().request.clone();
    let workload = request.benchmark.load();

    let mut db = request.backend.open(
        request.dbms,
        workload.catalog.clone(),
        request.hardware,
        request.seed,
    );
    if let Some(script) = &request.initial_config {
        let config = Configuration::parse(script, request.dbms, db.catalog());
        if config.is_empty() && !config.warnings.is_empty() {
            return Err(LtError::Config(format!(
                "initial_config has no valid statements: {}",
                config.warnings.join("; ")
            )));
        }
        db.apply_knobs(&config);
        for spec in config.index_specs() {
            db.create_index(spec);
        }
    }

    let fleet = FleetCache::global();
    let profile = Profile::from_workload(db.catalog(), &workload);
    let key = FleetKey::for_session(
        db.as_ref(),
        &profile,
        &request.options,
        request.initial_config.as_deref().unwrap_or(""),
    );
    let cached = fleet.lookup(&key);

    // Denominator of the scaled cost: the workload under the *default*
    // configuration, on a fresh database with the same seed (the tuning
    // database must not see these executions in its plan cache timeline).
    // A hit replays the cached measurement instead of re-running it.
    let default_time = match cached.as_ref().and_then(|entry| entry.default_time) {
        Some(time) => time,
        None => {
            let mut default_db = request.backend.open(
                request.dbms,
                workload.catalog.clone(),
                request.hardware,
                request.seed,
            );
            measure_default(default_db.as_mut(), &workload)
        }
    };
    session.lock().default_time = Some(default_time.as_f64());

    let result = match cached {
        Some(entry) => entry.to_result(db.as_ref()),
        None => {
            // Near-miss transfer (opt-in): warm-start from the nearest
            // cached neighbour's prompt and winner at half the budget.
            // Transferred runs are never published — they are not what a
            // cold run with this key would have produced.
            let transferred = if transfer_enabled() {
                let t = TransferOptions::default();
                fleet
                    .nearest(&key, &profile, t.max_distance)
                    .map(|(_, neighbour)| {
                        obs::counter("fleet.transfer", 1);
                        let warm = WarmStart {
                            prompt: Some(neighbour.prompt.clone()),
                            seed_scripts: neighbour
                                .best_script()
                                .map(str::to_string)
                                .into_iter()
                                .collect(),
                        };
                        LambdaTune::new(warm_options(&request.options, t.budget_fraction, None))
                            .with_warm_start(warm)
                    })
            } else {
                None
            };
            let publish = transferred.is_none();
            let mut tuner = transferred
                .unwrap_or_else(|| LambdaTune::new(request.options))
                .with_observer(std::sync::Arc::new(session.observer()));
            if let Some(cache) = samples {
                tuner = tuner.with_samples(cache);
            }
            let llm = LlmClient::new(SimulatedLlm::new());
            let result = tuner.tune(db.as_mut(), &workload, &llm)?;
            if publish && !result.cancelled {
                let entry = FleetEntry::from_result(
                    &result,
                    request.dbms,
                    db.catalog(),
                    profile,
                    Some(default_time),
                );
                // Serialized before the insert consumes it; batched — a
                // lost publication only costs a future cache hit.
                session.log(&SessionRecord::Fleet {
                    key: lt_fleet::fleet_key_to_json(&key),
                    entry: lt_fleet::fleet_entry_to_json(&entry),
                });
                fleet.insert(key, entry);
            }
            result
        }
    };

    let best_script = result
        .best_config
        .as_ref()
        .map(|c| c.to_script(request.dbms, db.catalog()));

    // A completed session keeps serving; see [`build_serving`].
    let serving = if result.cancelled {
        None
    } else {
        best_script
            .as_deref()
            .map(|script| build_serving(&request, script, &result.prompt))
    };

    let mut s = session.lock();
    s.best_script = best_script;
    s.best_time = Some(result.best_time.as_f64());
    s.tuning_time = Some(result.tuning_time.as_f64());
    s.trajectory = result.trajectory.clone();
    s.serving = serving;
    Ok(result.cancelled)
}

/// Builds the serving state of a completed tune: a fresh database with the
/// winning script applied (derived serving seed — a configuration change is
/// a restart, so the plan cache starts cold), a drift monitor referenced on
/// the tuned workload, and the prompt + script as warm-start memory. This
/// is the *single* construction path — the worker and write-ahead-log
/// recovery both call it, which is what makes a recovered session's serving
/// database byte-identical to an uninterrupted one's.
pub(crate) fn build_serving(
    request: &TuneRequest,
    best_script: &str,
    prompt: &str,
) -> ServingState {
    let workload = request.benchmark.load();
    let mut db = request.backend.open(
        request.dbms,
        workload.catalog.clone(),
        request.hardware,
        derive_seed(request.seed, 500),
    );
    let config = Configuration::parse(best_script, request.dbms, db.catalog());
    db.apply_knobs(&config);
    for spec in config.index_specs() {
        db.create_index(spec);
    }
    let reference = Profile::from_workload(db.catalog(), &workload);
    ServingState {
        monitor: DriftMonitor::with_reference(request.drift.clone(), reference),
        memory: TuneMemory {
            prompt: prompt.to_string(),
            best_script: best_script.to_string(),
            options: request.options,
        },
        db,
        recent: Vec::new(),
    }
}

/// Adopts a re-tune's winner on a live serving state: applies the script to
/// the serving database, updates the warm-start memory, and rebases the
/// drift monitor on the observed workload so the regime the session just
/// adapted to stops counting as drift. Shared by [`warm_retune`] and
/// write-ahead-log recovery (same determinism argument as
/// [`build_serving`]).
pub(crate) fn adopt_retune(
    serving: &mut ServingState,
    request: &TuneRequest,
    script: &str,
    prompt: &str,
    workload: &Workload,
) {
    let config = Configuration::parse(script, request.dbms, serving.db.catalog());
    serving.db.apply_knobs(&config);
    for spec in config.index_specs() {
        serving.db.create_index(spec);
    }
    serving.memory.prompt = prompt.to_string();
    serving.memory.best_script = script.to_string();
    serving
        .monitor
        .rebase(Profile::from_workload(serving.db.catalog(), workload));
}

/// Runs one warm-start re-tune on the calling worker thread. The session
/// was already moved to [`SessionState::Retuning`] by the feed handler;
/// whatever happens here — success, pipeline error, panic — the session
/// ends back in `Done` (errors are advisory, recorded in the drift
/// status), except a client cancellation, which wins as usual.
pub fn run_retune(session: &SessionHandle) {
    let id = {
        let s = session.lock();
        if s.state != SessionState::Retuning {
            return;
        }
        s.id
    };
    obs::counter("serve.retunes_started", 1);
    let outcome = catch_unwind(AssertUnwindSafe(|| retune_session(session)));
    let mut s = session.lock();
    match outcome {
        Ok(Ok(true)) => {
            s.state = SessionState::Cancelled;
            obs::counter("serve.sessions_cancelled", 1);
            session.log_sync(&SessionRecord::Transition {
                id,
                state: SessionState::Cancelled,
                error: None,
            });
        }
        Ok(Ok(false)) => {
            s.state = SessionState::Done;
            obs::counter("serve.retunes_done", 1);
            // `retunes` was already incremented by the adopt; the record's
            // counter is what makes replay idempotent.
            session.log_sync(&SessionRecord::Done {
                id,
                retunes: s.drift.retunes,
                outcome: crate::wal::Outcome::of(&s),
            });
        }
        Ok(Err(err)) => {
            s.state = SessionState::Done;
            s.drift.last_error = Some(err.to_string());
            obs::counter("serve.retunes_failed", 1);
            session.log_sync(&SessionRecord::Transition {
                id,
                state: SessionState::Done,
                error: s.drift.last_error.clone(),
            });
        }
        Err(panic) => {
            let what = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            s.state = SessionState::Done;
            s.drift.last_error = Some(format!("re-tune worker panicked: {what}"));
            obs::counter("serve.retunes_failed", 1);
            obs::counter("serve.worker_panics", 1);
            session.log_sync(&SessionRecord::Transition {
                id,
                state: SessionState::Done,
                error: s.drift.last_error.clone(),
            });
        }
    }
    drop(s);
    session.notify_change();
}

/// The fallible part of a re-tune. Takes the serving state out of the
/// session for the duration (feeds observe 409 meanwhile) and always puts
/// it back — on failure the session keeps serving under the old
/// configuration. Returns `Ok(true)` when the run was cancelled.
fn retune_session(session: &SessionHandle) -> lt_common::Result<bool> {
    let (request, mut serving, retunes) = {
        let mut s = session.lock();
        let serving = s.serving.take().ok_or_else(|| {
            LtError::Tuning("session has no serving state to re-tune".to_string())
        })?;
        (s.request.clone(), serving, s.drift.retunes)
    };
    let outcome = warm_retune(session, &request, &mut serving, retunes);
    session.lock().serving = Some(serving);
    outcome
}

fn warm_retune(
    session: &SessionHandle,
    request: &TuneRequest,
    serving: &mut ServingState,
    retunes: u64,
) -> lt_common::Result<bool> {
    if serving.recent.is_empty() {
        return Err(LtError::Tuning(
            "no observed queries to re-tune against".to_string(),
        ));
    }
    let pairs: Vec<(&str, String)> = serving
        .recent
        .iter()
        .map(|(label, sql)| (label.as_str(), sql.clone()))
        .collect();
    let workload = Workload::from_sql("observed", serving.db.catalog().clone(), &pairs)?;
    let llm = LlmClient::new(SimulatedLlm::new());
    let sink = std::sync::Arc::new(session.observer());
    // Drift-aware prompt: compare the benchmark the session was tuned for
    // against what it actually served and, when something structural
    // moved, re-tune from a delta prompt (token-bounded by the memory
    // prompt) instead of replaying the stale reference prompt blind.
    let reference_workload = request.benchmark.load();
    let reference = LabeledProfile::from_workload(serving.db.catalog(), &reference_workload);
    let current = LabeledProfile::from_workload(serving.db.catalog(), &workload);
    let delta = WorkloadDelta::between(&reference, &current);
    let delta_text = if delta.is_empty() {
        None
    } else {
        obs::counter("serve.delta_retunes", 1);
        Some(delta_prompt(&serving.memory.prompt, &delta))
    };
    // Each re-tune gets its own derived seed; the budget always scales
    // from the session's *original* options, so repeated re-tunes do not
    // shrink geometrically toward a single candidate.
    let result = retune(
        serving.db.as_mut(),
        &workload,
        &llm,
        &serving.memory,
        &RetuneOptions {
            seed: Some(derive_seed(request.seed, 1000 + retunes)),
            delta: delta_text,
            ..Default::default()
        },
        Some(sink),
    )?;
    if result.cancelled {
        return Ok(true);
    }
    let best = result
        .best_config
        .as_ref()
        .ok_or_else(|| LtError::Tuning("re-tune found no configuration".to_string()))?;
    let script = best.to_script(request.dbms, serving.db.catalog());
    adopt_retune(serving, request, &script, &result.prompt, &workload);
    let mut s = session.lock();
    s.best_script = Some(script);
    s.best_time = Some(result.best_time.as_f64());
    if let Some(t) = s.tuning_time.as_mut() {
        *t += result.tuning_time.as_f64();
    }
    s.drift.retunes += 1;
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionRegistry, TuneRequest};
    use lt_common::json::parse;

    fn quick_request(extra: &str) -> TuneRequest {
        let body = format!(r#"{{"benchmark": "tpch", "num_configs": 2{extra}}}"#);
        TuneRequest::from_json(&parse(&body).unwrap()).unwrap()
    }

    #[test]
    fn runs_a_session_to_done_with_a_config() {
        let registry = SessionRegistry::new();
        // A seed no other test uses: the fleet cache is process-global, and
        // this test asserts on sampling progress a replayed hit skips.
        let handle = registry.create(quick_request(r#", "seed": 9001"#));
        run_session(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Done, "error: {:?}", s.error);
        assert!(s.best_script.is_some());
        assert!(s.default_time.unwrap() > 0.0);
        assert!(s.best_time.unwrap() > 0.0);
        assert!(s.samples_done >= 2);
        let config = s.config_json().unwrap();
        assert!(config.get("scaled_cost").is_some());
    }

    #[test]
    fn pool_processes_jobs_and_drains_on_shutdown() {
        let registry = SessionRegistry::new();
        let pool = WorkerPool::start(2, 8);
        let handles: Vec<_> = (0..4)
            .map(|i| registry.create(quick_request(&format!(r#", "seed": {i}"#))))
            .collect();
        for h in &handles {
            pool.submit(h.clone()).unwrap();
        }
        pool.shutdown(); // joins only after the queue is drained
        for h in &handles {
            let s = h.lock();
            assert_eq!(s.state, SessionState::Done, "error: {:?}", s.error);
        }
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let registry = SessionRegistry::new();
        let pool = WorkerPool::start(1, 1);
        pool.shutdown();
        let err = pool.submit(registry.create(quick_request(""))).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
    }

    #[test]
    fn cancelled_before_start_never_tunes() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(""));
        handle.cancel();
        run_session(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Cancelled);
        assert_eq!(s.samples_done, 0);
    }

    #[test]
    fn done_session_keeps_serving_state_with_warm_memory() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(""));
        run_session(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Done, "error: {:?}", s.error);
        let serving = s
            .serving
            .as_ref()
            .expect("done session keeps serving state");
        assert_eq!(serving.memory.best_script, *s.best_script.as_ref().unwrap());
        assert!(!serving.memory.prompt.is_empty());
        assert_eq!(serving.monitor.observed(), 0);
    }

    #[test]
    fn retune_returns_the_session_to_done_with_a_new_winner() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(""));
        run_session(&handle);
        {
            let mut s = handle.lock();
            assert_eq!(s.state, SessionState::Done, "error: {:?}", s.error);
            // Pretend the feed observed the back half of TPC-H.
            let w = lt_workloads::Benchmark::TpchSf1.load();
            let serving = s.serving.as_mut().unwrap();
            for q in w.queries.iter().skip(w.queries.len() / 2) {
                serving.push_recent(q.label.clone(), q.sql.clone());
            }
            s.state = SessionState::Retuning;
        }
        run_retune(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Done);
        assert_eq!(s.drift.retunes, 1, "error: {:?}", s.drift.last_error);
        assert!(s.drift.last_error.is_none());
        assert!(s.serving.is_some(), "serving survives a re-tune");
        // The warm memory now carries the re-tune's winner.
        let serving = s.serving.as_ref().unwrap();
        assert_eq!(serving.memory.best_script, *s.best_script.as_ref().unwrap());
    }

    #[test]
    fn retune_failure_keeps_the_session_done_and_serving() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(""));
        run_session(&handle);
        // No observed queries: the re-tune has nothing to tune against.
        handle.lock().state = SessionState::Retuning;
        run_retune(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Done);
        assert_eq!(s.drift.retunes, 0);
        assert!(s
            .drift
            .last_error
            .as_deref()
            .unwrap()
            .contains("no observed queries"));
        assert!(s.serving.is_some(), "old serving state survives a failure");
    }

    #[test]
    fn retune_is_a_noop_unless_the_session_is_retuning() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(""));
        run_session(&handle);
        let before = handle.lock().best_script.clone();
        run_retune(&handle); // state is Done, not Retuning
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Done);
        assert_eq!(s.best_script, before);
        assert_eq!(s.drift.retunes, 0);
    }

    fn counter_value(name: &str) -> u64 {
        obs::snapshot()
            .counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    #[test]
    fn fleet_cache_replays_a_session_byte_for_byte() {
        let registry = SessionRegistry::new();
        let cold = registry.create(quick_request(r#", "seed": 9100"#));
        run_session(&cold);
        let hit = registry.create(quick_request(r#", "seed": 9100"#));
        let hits_before = counter_value("fleet.tune_hit");
        run_session(&hit);
        assert_eq!(counter_value("fleet.tune_hit"), hits_before + 1);
        let (c, h) = (cold.lock(), hit.lock());
        assert_eq!(h.state, SessionState::Done, "error: {:?}", h.error);
        assert_eq!(c.best_script, h.best_script);
        assert_eq!(c.best_time, h.best_time);
        assert_eq!(c.default_time, h.default_time);
        assert_eq!(c.tuning_time, h.tuning_time);
        assert_eq!(c.trajectory, h.trajectory);
        // The replay keeps serving too — same warm memory as the cold run.
        let (cs, hs) = (c.serving.as_ref().unwrap(), h.serving.as_ref().unwrap());
        assert_eq!(cs.memory.prompt, hs.memory.prompt);
        assert_eq!(cs.memory.best_script, hs.memory.best_script);
    }

    #[test]
    fn coalesced_sessions_share_one_batched_call_and_match_solo_runs() {
        let registry = SessionRegistry::new();
        let batch: Vec<_> = (0..3)
            .map(|i| registry.create(quick_request(&format!(r#", "seed": {}"#, 9200 + i))))
            .collect();
        let coalesced_before = counter_value("fleet.coalesced_sessions");
        run_sessions(&batch);
        assert_eq!(
            counter_value("fleet.coalesced_sessions"),
            coalesced_before + 3,
            "all three uncached siblings should share the batched call"
        );
        for (i, h) in batch.iter().enumerate() {
            let solo = registry.create(quick_request(&format!(r#", "seed": {}"#, 9200 + i)));
            run_session(&solo);
            let (b, s) = (h.lock(), solo.lock());
            assert_eq!(b.state, SessionState::Done, "error: {:?}", b.error);
            assert_eq!(b.best_script, s.best_script, "seed {}", 9200 + i);
            assert_eq!(b.best_time, s.best_time);
            assert_eq!(b.trajectory, s.trajectory);
        }
    }

    #[test]
    fn invalid_initial_config_fails_the_session_not_the_worker() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(
            r#", "initial_config": "FROBNICATE THE DATABASE;""#,
        ));
        run_session(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Failed);
        assert!(s.error.as_deref().unwrap().contains("initial_config"));
    }

    #[test]
    fn partially_valid_initial_config_is_applied() {
        let registry = SessionRegistry::new();
        let handle = registry.create(quick_request(
            r#", "initial_config": "SET work_mem = '64MB'; FROBNICATE;""#,
        ));
        run_session(&handle);
        let s = handle.lock();
        assert_eq!(s.state, SessionState::Done, "error: {:?}", s.error);
    }

    fn tenant_job(registry: &SessionRegistry, tenant: &str, seed: i64) -> Job {
        let req = quick_request(&format!(r#", "seed": {seed}"#));
        let handle = registry
            .create_if_within_quota(req, tenant, usize::MAX)
            .unwrap();
        Job::Tune(handle)
    }

    fn pop_tenants(queue: &JobQueue, n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let jobs = queue.pop_batch(1);
                assert_eq!(jobs.len(), 1);
                jobs[0].tenant()
            })
            .collect()
    }

    /// Deficit-round-robin regression: tenant A floods the queue at 10×
    /// tenant B's rate; B's job must be served in the second slot, not
    /// the eleventh, and the interleave must be deterministic.
    #[test]
    fn drr_queue_is_tenant_fair_at_ten_to_one() {
        let registry = SessionRegistry::new();
        let queue = JobQueue::new(64);
        // A submits 10 jobs before B gets its single one in.
        for i in 0..10 {
            queue.push(tenant_job(&registry, "a", 9300 + i)).unwrap();
        }
        queue.push(tenant_job(&registry, "b", 9310)).unwrap();
        let order = pop_tenants(&queue, 11);
        assert_eq!(
            order,
            ["a", "b", "a", "a", "a", "a", "a", "a", "a", "a", "a"],
            "B waits exactly one round, never behind A's backlog"
        );
    }

    /// Tie-break determinism: tenants enter the rotation in first-arrival
    /// order and keep their slot until drained.
    #[test]
    fn drr_rotation_order_is_deterministic() {
        let registry = SessionRegistry::new();
        let queue = JobQueue::new(64);
        for (tenant, seed) in [
            ("c", 9320),
            ("c", 9321),
            ("a", 9322),
            ("b", 9323),
            ("a", 9324),
        ] {
            queue.push(tenant_job(&registry, tenant, seed)).unwrap();
        }
        assert_eq!(pop_tenants(&queue, 5), ["c", "a", "b", "c", "a"]);
    }

    /// Batched pops still rotate across tenants (one job per tenant per
    /// round) so coalescing cannot reintroduce starvation.
    #[test]
    fn drr_batch_pop_rotates_tenants() {
        let registry = SessionRegistry::new();
        let queue = JobQueue::new(64);
        for i in 0..4 {
            queue.push(tenant_job(&registry, "a", 9330 + i)).unwrap();
        }
        queue.push(tenant_job(&registry, "b", 9340)).unwrap();
        let tenants: Vec<String> = queue.pop_batch(3).iter().map(|j| j.tenant()).collect();
        assert_eq!(tenants, ["a", "b", "a"]);
    }

    /// The depth bound applies across tenants, and a closed queue still
    /// drains before reporting empty.
    #[test]
    fn drr_queue_bounds_and_drains() {
        let registry = SessionRegistry::new();
        let queue = JobQueue::new(2);
        queue.push(tenant_job(&registry, "a", 9350)).unwrap();
        queue.push(tenant_job(&registry, "b", 9351)).unwrap();
        let err = queue.push(tenant_job(&registry, "c", 9352)).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        queue.close();
        let err = queue.push(tenant_job(&registry, "a", 9353)).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        assert_eq!(pop_tenants(&queue, 2), ["a", "b"]);
        assert!(queue.pop_batch(1).is_empty());
    }
}
