//! Tuning sessions: request schema, per-session state machine, registry.
//!
//! Every accepted `POST /sessions` becomes a [`Session`] that owns the full
//! description of one tuning run — benchmark, DBMS flavour, hardware, seed,
//! pipeline options — and moves through the state machine
//!
//! ```text
//! Queued ──▶ Tuning ──▶ Done ◀──▶ Retuning
//!    │          ├─────▶ Failed        │
//!    └──────────┴─────▶ Cancelled ◀───┘
//! ```
//!
//! A `Done` session that keeps a [`ServingState`] can receive live queries
//! (`POST /sessions/<id>/queries`); a drift alarm with `auto_retune` set
//! moves it to `Retuning`, and the warm-start re-tune returns it to `Done`.
//!
//! State transitions happen under the session's own mutex; the registry
//! mutex only guards the id → session map, so status polls never contend
//! with tuning progress writes of other sessions.

use lambda_tune::{LambdaTuneOptions, ProgressEvent, TrajectoryPoint, TuneObserver};
use lt_common::json::Value;
use lt_common::{json, LtError, Result};
use lt_dbms::{Dbms, Hardware, SimDb, TuningTarget};
use lt_drift::{DriftConfig, DriftEvent, DriftMonitor, TuneMemory};
use lt_workloads::Benchmark;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Service-side ceiling on LLM samples per session. The pipeline allocates
/// and iterates `num_configs` times, so an unbounded value lets one request
/// pin a worker for hours or abort the process on a failed huge allocation
/// (`Vec::with_capacity`); anything above this is a 400, never a job.
pub const MAX_NUM_CONFIGS: u64 = 64;
/// Service-side ceiling on the workload-description token budget. Far above
/// any real model context, low enough that a typo'd exponent cannot balloon
/// compressor work.
pub const MAX_TOKEN_BUDGET: u64 = 10_000_000;
/// Observed queries a serving session retains as the re-tune workload;
/// older queries age out so memory stays bounded however long a session
/// serves.
pub const RECENT_QUERY_CAP: usize = 256;

/// Which engine a session's databases run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Virtual-time simulator ([`SimDb`]); the determinism-gated default.
    #[default]
    Sim,
    /// lt-store physical storage engine ([`lt_store::StoreDb`]): plans
    /// identically to the simulator, but query times are measured on a
    /// scaled-down on-disk replica.
    Store,
}

impl Backend {
    /// Lower-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Store => "store",
        }
    }

    /// Inverse of [`Backend::name`].
    pub fn parse(s: &str) -> Option<Backend> {
        match s.to_ascii_lowercase().as_str() {
            "sim" | "simulator" => Some(Backend::Sim),
            "store" | "lt-store" => Some(Backend::Store),
            _ => None,
        }
    }

    /// Builds a database of this flavour. Both backends share the optimizer
    /// and statistics seed, so plans and prompts are identical; only plan
    /// *execution* differs (modelled vs measured).
    pub fn open(
        self,
        dbms: Dbms,
        catalog: lt_dbms::Catalog,
        hardware: Hardware,
        seed: u64,
    ) -> Box<dyn TuningTarget + Send> {
        match self {
            Backend::Sim => Box::new(SimDb::new(dbms, catalog, hardware, seed)),
            Backend::Store => Box::new(lt_store::StoreDb::new(dbms, catalog, hardware, seed)),
        }
    }
}

/// A client's tuning request, parsed and validated at submission time.
#[derive(Debug, Clone)]
pub struct TuneRequest {
    /// Workload to tune for.
    pub benchmark: Benchmark,
    /// Target system flavour.
    pub dbms: Dbms,
    /// Engine the session's databases run on (`"backend"`, default `sim`).
    pub backend: Backend,
    /// Simulated machine.
    pub hardware: Hardware,
    /// Session seed: drives misestimation patterns, LLM sampling and
    /// scheduling. The determinism contract is keyed on this value.
    pub seed: u64,
    /// Pipeline options (LLM sample count, token budget, scope, …).
    pub options: LambdaTuneOptions,
    /// Optional configuration script applied to the database before tuning
    /// starts (models tuning from a non-default starting state).
    pub initial_config: Option<String>,
    /// Re-enter tuning automatically when the drift monitor alarms on the
    /// query feed (`"auto_retune": true` in the request body).
    pub auto_retune: bool,
    /// Drift-detector configuration for this session: `LT_DRIFT_*`
    /// environment defaults, overridden per-field by the request's
    /// optional `"drift"` object.
    pub drift: DriftConfig,
}

impl TuneRequest {
    /// Parses the `POST /sessions` body. Unknown benchmarks, malformed
    /// numbers and unsatisfiable option combinations are [`LtError`]s, so
    /// a bad request is answered with 400 instead of reaching a worker.
    pub fn from_json(doc: &Value) -> Result<TuneRequest> {
        let bad = |what: &str| LtError::Config(format!("bad request: {what}"));
        if !matches!(doc, Value::Object(_)) {
            return Err(bad("body must be a JSON object"));
        }
        let benchmark = match doc.get("benchmark") {
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| bad("\"benchmark\" must be a string"))?;
                Benchmark::parse(name)?
            }
            None => Benchmark::TpchSf1,
        };
        let dbms = match doc.get("dbms").map(|v| v.as_str()) {
            None => Dbms::Postgres,
            Some(Some(s)) => match s.to_ascii_lowercase().as_str() {
                "postgres" | "postgresql" | "pg" => Dbms::Postgres,
                "mysql" | "ms" => Dbms::Mysql,
                other => return Err(bad(&format!("unknown dbms {other:?}"))),
            },
            Some(None) => return Err(bad("\"dbms\" must be a string")),
        };
        let backend = match doc.get("backend").map(|v| v.as_str()) {
            None => Backend::Sim,
            Some(Some(s)) => {
                Backend::parse(s).ok_or_else(|| bad(&format!("unknown backend {s:?}")))?
            }
            Some(None) => return Err(bad("\"backend\" must be a string")),
        };
        let hardware = match doc.get("hardware").map(|v| v.as_str()) {
            None => Hardware::p3_2xlarge(),
            Some(Some(s)) => match s.to_ascii_lowercase().replace(['.', '_'], "-").as_str() {
                "p3-2xlarge" | "p32xlarge" | "paper" => Hardware::p3_2xlarge(),
                "small" => Hardware::small(),
                other => return Err(bad(&format!("unknown hardware {other:?}"))),
            },
            Some(None) => return Err(bad("\"hardware\" must be a string")),
        };
        let uint = |key: &str| -> Result<Option<u64>> {
            match doc.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => match v.as_i64() {
                    Some(i) if i >= 0 => Ok(Some(i as u64)),
                    _ => Err(bad(&format!("\"{key}\" must be a non-negative integer"))),
                },
            }
        };
        let flag = |key: &str| -> Result<bool> {
            match doc.get(key) {
                None | Some(Value::Null) => Ok(false),
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| bad(&format!("\"{key}\" must be a boolean"))),
            }
        };
        // Multi-tenant admission limits: values the pipeline would happily
        // loop (or allocate) over for hours must never reach a worker.
        let bounded = |key: &str, max: u64| -> Result<Option<u64>> {
            match uint(key)? {
                Some(v) if v > max => Err(bad(&format!("\"{key}\" must be at most {max}"))),
                other => Ok(other),
            }
        };
        let defaults = LambdaTuneOptions::default();
        let seed = uint("seed")?.unwrap_or(0);
        let options = LambdaTuneOptions {
            num_configs: bounded("num_configs", MAX_NUM_CONFIGS)?
                .unwrap_or(defaults.num_configs as u64) as usize,
            temperature: match doc.get("temperature") {
                None | Some(Value::Null) => defaults.temperature,
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| bad("\"temperature\" must be a number"))?,
            },
            token_budget: bounded("token_budget", MAX_TOKEN_BUDGET)?.map(|t| t as usize),
            params_only: flag("params_only")?,
            indexes_only: flag("indexes_only")?,
            seed,
            ..defaults
        };
        // Reject unsatisfiable pipelines at the door (zero samples, zero
        // token budget, NaN temperature, …) — same validation the pipeline
        // itself applies, surfaced as a 400 instead of a failed session.
        options.validate()?;
        let initial_config = match doc.get("initial_config") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| bad("\"initial_config\" must be a string"))?
                    .to_string(),
            ),
        };
        Ok(TuneRequest {
            benchmark,
            dbms,
            backend,
            hardware,
            seed,
            options,
            initial_config,
            auto_retune: flag("auto_retune")?,
            drift: drift_config_from_json(doc)?,
        })
    }

    /// The request as JSON (echoed in status documents).
    pub fn to_json(&self) -> Value {
        json!({
            "benchmark": self.benchmark.name(),
            "dbms": match self.dbms {
                Dbms::Postgres => "postgres",
                Dbms::Mysql => "mysql",
            },
            "backend": self.backend.name(),
            "seed": self.seed,
            "num_configs": self.options.num_configs,
            "params_only": self.options.params_only,
            "token_budget": self.options.token_budget,
            "auto_retune": self.auto_retune,
        })
    }

    /// The request as a *round-trippable* JSON document for the write-ahead
    /// session log: every field [`TuneRequest::from_json`] reads is written
    /// back in the schema it reads, so `from_json(to_wal_json(r))`
    /// reproduces `r` exactly. (The fields `from_json` cannot set —
    /// compressor/scheduler/selector options — always hold their defaults
    /// in a served session, so they need no representation here.)
    pub fn to_wal_json(&self) -> Value {
        let mut doc = json!({
            "benchmark": self.benchmark.name(),
            "dbms": match self.dbms {
                Dbms::Postgres => "postgres",
                Dbms::Mysql => "mysql",
            },
            "hardware": if self.hardware.memory_bytes == Hardware::small().memory_bytes
                && self.hardware.cores == Hardware::small().cores
            {
                "small"
            } else {
                "p3-2xlarge"
            },
            "seed": self.seed as i64,
            "num_configs": self.options.num_configs,
            "temperature": self.options.temperature,
            "token_budget": self.options.token_budget,
            "params_only": self.options.params_only,
            "indexes_only": self.options.indexes_only,
            "initial_config": self.initial_config.as_deref(),
            "auto_retune": self.auto_retune,
            "drift": json!({
                "window": self.drift.window,
                "stride": self.drift.stride,
                "warmup": self.drift.warmup,
                "confirm": self.drift.confirm,
                "cooldown": self.drift.cooldown,
                "jsd_threshold": self.drift.jsd_threshold,
                "ewma_alpha": self.drift.ewma_alpha,
                "hit_arm": self.drift.hit_arm,
                "hit_collapse": self.drift.hit_collapse,
                "ph_delta": self.drift.ph_delta,
                "ph_lambda": self.drift.ph_lambda,
            }),
        });
        // Emitted only when non-default, so session logs written before the
        // backend field existed — and all sim sessions — keep their exact
        // bytes (the crash-recovery gate diffs replayed logs).
        if self.backend != Backend::Sim {
            if let Value::Object(fields) = &mut doc {
                fields.push(("backend".to_string(), json!(self.backend.name())));
            }
        }
        doc
    }
}

/// Parses the optional `"drift"` object of a tuning request: per-field
/// overrides on top of the `LT_DRIFT_*` environment defaults, so a client
/// can request a tighter (or looser) monitor for one session without
/// touching process state.
fn drift_config_from_json(doc: &Value) -> Result<DriftConfig> {
    let bad = |what: &str| LtError::Config(format!("bad request: {what}"));
    let mut config = DriftConfig::from_env();
    let overrides = match doc.get("drift") {
        None | Some(Value::Null) => return Ok(config),
        Some(v @ Value::Object(_)) => v,
        Some(_) => return Err(bad("\"drift\" must be an object")),
    };
    let count = |key: &str, min: i64| -> Result<Option<usize>> {
        match overrides.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => match v.as_i64() {
                Some(i) if i >= min => Ok(Some(i as usize)),
                _ => Err(bad(&format!("\"drift.{key}\" must be an integer >= {min}"))),
            },
        }
    };
    let number = |key: &str| -> Result<Option<f64>> {
        match overrides.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => match v.as_f64() {
                Some(f) if f.is_finite() => Ok(Some(f)),
                _ => Err(bad(&format!("\"drift.{key}\" must be a finite number"))),
            },
        }
    };
    if let Some(v) = count("window", 1)? {
        config.window = v;
    }
    if let Some(v) = count("stride", 1)? {
        config.stride = v;
    }
    if let Some(v) = count("warmup", 0)? {
        config.warmup = v;
    }
    if let Some(v) = count("confirm", 1)? {
        config.confirm = v;
    }
    if let Some(v) = count("cooldown", 0)? {
        config.cooldown = v;
    }
    if let Some(v) = number("jsd_threshold")? {
        config.jsd_threshold = v;
    }
    if let Some(v) = number("ewma_alpha")? {
        config.ewma_alpha = v;
    }
    if let Some(v) = number("hit_arm")? {
        config.hit_arm = v;
    }
    if let Some(v) = number("hit_collapse")? {
        config.hit_collapse = v;
    }
    if let Some(v) = number("ph_delta")? {
        config.ph_delta = v;
    }
    if let Some(v) = number("ph_lambda")? {
        config.ph_lambda = v;
    }
    Ok(config)
}

/// Lifecycle of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running the pipeline.
    Tuning,
    /// A drift alarm sent the session back to a worker for a warm-start
    /// re-tune; it returns to [`SessionState::Done`] when that finishes.
    Retuning,
    /// The pipeline finished with a best configuration.
    Done,
    /// The pipeline returned an error (or panicked; see the worker).
    Failed,
    /// Cancelled by the client before completion.
    Cancelled,
}

impl SessionState {
    /// Lower-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Tuning => "tuning",
            SessionState::Retuning => "retuning",
            SessionState::Done => "done",
            SessionState::Failed => "failed",
            SessionState::Cancelled => "cancelled",
        }
    }

    /// True for states no transition leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SessionState::Done | SessionState::Failed | SessionState::Cancelled
        )
    }

    /// Inverse of [`SessionState::name`], for write-ahead-log replay.
    pub fn parse(name: &str) -> Option<SessionState> {
        Some(match name {
            "queued" => SessionState::Queued,
            "tuning" => SessionState::Tuning,
            "retuning" => SessionState::Retuning,
            "done" => SessionState::Done,
            "failed" => SessionState::Failed,
            "cancelled" => SessionState::Cancelled,
            _ => return None,
        })
    }
}

/// Drift bookkeeping surfaced in session status documents.
#[derive(Debug, Clone, Default)]
pub struct DriftStatus {
    /// Queries consumed by the drift monitor over the session's lifetime.
    pub queries_observed: u64,
    /// Every drift alarm raised on the feed, in order.
    pub events: Vec<DriftEvent>,
    /// Completed warm-start re-tunes.
    pub retunes: u64,
    /// Last re-tune failure, if any (the session stays `done`; the error
    /// is advisory).
    pub last_error: Option<String>,
}

/// Everything a `Done` session keeps to serve a live query feed: the tuned
/// database, the drift monitor watching the feed, the previous run's
/// [`TuneMemory`] for warm starts, and the recent observed queries that
/// become the re-tune workload.
pub struct ServingState {
    /// The session's database with the winning configuration applied.
    pub db: Box<dyn TuningTarget + Send>,
    /// Streaming drift monitor referenced on the tuned workload.
    pub monitor: DriftMonitor,
    /// Prompt + winning script of the latest (re-)tune.
    pub memory: TuneMemory,
    /// Most recent `(label, sql)` observed queries, oldest first, capped
    /// at [`RECENT_QUERY_CAP`].
    pub recent: Vec<(String, String)>,
}

impl ServingState {
    /// Appends an observed query, aging out the oldest past the cap.
    pub fn push_recent(&mut self, label: String, sql: String) {
        self.recent.push((label, sql));
        if self.recent.len() > RECENT_QUERY_CAP {
            self.recent.remove(0);
        }
    }

    /// Executes one validated feed batch on the serving database and runs
    /// every query through the drift monitor, returning the alarms raised.
    /// This is the *single* code path for feeding queries — the HTTP
    /// handler and write-ahead-log replay both call it, which is what makes
    /// a recovered session's serving database byte-identical to an
    /// uninterrupted one's.
    pub fn observe_queries(&mut self, workload: &lt_workloads::Workload) -> Vec<DriftEvent> {
        let mut events = Vec::new();
        for q in &workload.queries {
            let outcome = self.db.execute(&q.parsed, lt_common::Secs::INFINITY);
            let preds = self.db.predicates(&q.parsed);
            // The windowed cache counters, drained per query, say whether
            // *this* plan came from the cache.
            let window = self.db.take_cache_window();
            let hit = window.plan_hits + window.plan_misses > 0 && window.plan_misses == 0;
            let observation = lt_drift::QueryObservation::new(
                self.db.catalog(),
                &preds,
                lt_dbms::db::query_tag(&q.parsed),
                outcome.time,
                Some(hit),
            );
            if let Some(event) = self.monitor.observe(&observation) {
                events.push(event);
            }
            self.push_recent(q.label.clone(), q.sql.clone());
        }
        events
    }
}

impl fmt::Debug for ServingState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The boxed target carries no Debug bound; summarize instead.
        f.debug_struct("ServingState")
            .field("observed", &self.monitor.observed())
            .field("recent", &self.recent.len())
            .finish_non_exhaustive()
    }
}

/// One tuning session: request, live progress, outcome.
#[derive(Debug)]
pub struct Session {
    /// Registry-assigned id.
    pub id: u64,
    /// Tenant that submitted the session (`X-Tenant` header, `"default"`
    /// when absent); per-tenant admission quotas count by this.
    pub tenant: String,
    /// The request that created the session.
    pub request: TuneRequest,
    /// Current lifecycle state.
    pub state: SessionState,
    /// Error message for [`SessionState::Failed`].
    pub error: Option<String>,
    /// Improvement trajectory streamed from the selector as it happens.
    pub trajectory: Vec<TrajectoryPoint>,
    /// LLM samples received so far.
    pub samples_done: usize,
    /// Selector rounds started so far.
    pub rounds_started: usize,
    /// Tokens spent on the workload description (known after prompt build).
    pub workload_tokens: Option<usize>,
    /// Winning configuration script (after completion).
    pub best_script: Option<String>,
    /// Workload time under the winner, virtual seconds.
    pub best_time: Option<f64>,
    /// Workload time under the default configuration, virtual seconds
    /// (denominator of the scaled cost).
    pub default_time: Option<f64>,
    /// Total virtual tuning time.
    pub tuning_time: Option<f64>,
    /// Drift bookkeeping for the query feed.
    pub drift: DriftStatus,
    /// Live serving state; present only while the session is `Done` (or
    /// briefly `Retuning`) with a best configuration.
    pub serving: Option<ServingState>,
}

impl Session {
    /// The `GET /sessions/<id>` document: state plus trajectory-so-far.
    pub fn status_json(&self) -> Value {
        let trajectory: Vec<Value> = self
            .trajectory
            .iter()
            .map(|p| {
                json!({
                    "opt_time_s": p.opt_time.as_f64(),
                    "best_workload_time_s": p.best_workload_time.as_f64(),
                })
            })
            .collect();
        let events: Vec<Value> = self.drift.events.iter().map(DriftEvent::to_json).collect();
        let scores = match &self.serving {
            Some(serving) => {
                let s = serving.monitor.scores();
                json!({
                    "jsd": s.jsd,
                    "ewma_hit_rate": s.ewma_hit_rate,
                    "page_hinkley": s.page_hinkley,
                })
            }
            None => Value::Null,
        };
        json!({
            "id": self.id,
            "state": self.state.name(),
            "tenant": self.tenant.as_str(),
            "request": self.request.to_json(),
            "samples_done": self.samples_done,
            "rounds_started": self.rounds_started,
            "workload_tokens": self.workload_tokens,
            "trajectory": Value::Array(trajectory),
            "best_time_s": self.best_time,
            "error": self.error.as_deref(),
            "drift": json!({
                "auto_retune": self.request.auto_retune,
                "queries_observed": self.drift.queries_observed,
                "events": Value::Array(events),
                "retunes": self.drift.retunes,
                "last_error": self.drift.last_error.as_deref(),
                "scores": scores,
            }),
        })
    }

    /// The `GET /sessions/<id>/config` document: best script + scaled cost.
    /// `None` until a best configuration exists.
    pub fn config_json(&self) -> Option<Value> {
        let script = self.best_script.as_deref()?;
        let scaled_cost = match (self.best_time, self.default_time) {
            (Some(best), Some(default)) if default > 0.0 => Some(best / default),
            _ => None,
        };
        Some(json!({
            "id": self.id,
            "state": self.state.name(),
            "script": script,
            "best_time_s": self.best_time,
            "default_time_s": self.default_time,
            "scaled_cost": scaled_cost,
            "tuning_time_s": self.tuning_time,
        }))
    }
}

/// A session plus its cancellation flag, shared between the HTTP threads
/// and the worker running it. When the registry has a write-ahead log
/// attached, the handle carries it so workers and feed handlers can log
/// transitions without going back through the registry.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    session: Arc<Mutex<Session>>,
    cancel: Arc<AtomicBool>,
    wal: Option<Arc<crate::wal::SessionLog>>,
    /// Signalled on state transitions; paired with `session` for the
    /// long-poll (`GET /sessions/<id>?wait_ms=...`) wait.
    changed: Arc<Condvar>,
}

impl SessionHandle {
    /// Appends `record` to the session log, batched-fsync. No-op without
    /// an attached log; append errors are counted, not propagated — a
    /// full disk degrades durability, it does not take serving down.
    pub(crate) fn log(&self, record: &crate::wal::SessionRecord) {
        if let Some(wal) = &self.wal {
            wal.append(record);
        }
    }

    /// Appends `record` and fsyncs before returning — for acknowledgement
    /// points (session created, feed executed, terminal transition).
    pub(crate) fn log_sync(&self, record: &crate::wal::SessionRecord) {
        if let Some(wal) = &self.wal {
            wal.append_sync(record);
        }
    }

    /// Locks the session state.
    pub fn lock(&self) -> MutexGuard<'_, Session> {
        // Sessions are plain data: a poisoned mutex only means a panicking
        // thread held it, and the data stays valid.
        match self.session.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Wakes long-poll waiters after a state transition. Callers invoke
    /// this after releasing the session lock; waiters also re-check on a
    /// bounded interval, so a missed call degrades latency, never
    /// correctness.
    pub fn notify_change(&self) {
        self.changed.notify_all();
    }

    /// Blocks until the session leaves state `from` or `wait_ms` elapses,
    /// then returns the (locked) session. `wait_ms == 0` degenerates to a
    /// plain `lock()` — the pre-long-poll behaviour. The wait re-checks at
    /// least every 50 ms so an unnotified transition is still observed
    /// promptly.
    pub fn wait_changed(&self, from: SessionState, wait_ms: u64) -> MutexGuard<'_, Session> {
        let mut guard = self.lock();
        if wait_ms == 0 {
            return guard;
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wait_ms);
        while guard.state == from {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            let step = (deadline - now).min(std::time::Duration::from_millis(50));
            guard = match self.changed.wait_timeout(guard, step) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        guard
    }

    /// Requests cancellation (observed by the worker between units of
    /// work — the same interruption points the timeout path uses).
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// True once [`SessionHandle::cancel`] was called.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The observer a worker passes into the pipeline for this session.
    pub fn observer(&self) -> SessionSink {
        SessionSink {
            handle: self.clone(),
        }
    }
}

/// Streams pipeline progress into the session and relays cancellation —
/// the hook between `lambda_tune::progress` and the serving layer.
#[derive(Debug, Clone)]
pub struct SessionSink {
    handle: SessionHandle,
}

impl TuneObserver for SessionSink {
    fn on_event(&self, event: ProgressEvent) {
        let mut session = self.handle.lock();
        match event {
            ProgressEvent::PromptBuilt { tokens } => session.workload_tokens = Some(tokens),
            ProgressEvent::ConfigSampled { index, .. } => session.samples_done = index + 1,
            ProgressEvent::RoundStarted { round, .. } => session.rounds_started = round,
            ProgressEvent::Improvement { point, .. } => session.trajectory.push(point),
        }
    }

    fn cancelled(&self) -> bool {
        self.handle.cancel_requested()
    }
}

/// The id → session map. One registry per server.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: Mutex<HashMap<u64, SessionHandle>>,
    next_id: AtomicU64,
    wal: Mutex<Option<Arc<crate::wal::SessionLog>>>,
}

impl SessionRegistry {
    /// An empty registry starting at id 1.
    pub fn new() -> SessionRegistry {
        SessionRegistry {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            wal: Mutex::new(None),
        }
    }

    /// Attaches a write-ahead session log: every handle created from now
    /// on carries it, so lifecycle transitions get recorded.
    pub fn attach_wal(&self, log: Arc<crate::wal::SessionLog>) {
        *self.wal.lock().unwrap_or_else(|p| p.into_inner()) = Some(log);
    }

    fn current_wal(&self) -> Option<Arc<crate::wal::SessionLog>> {
        self.wal.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    fn map(&self) -> MutexGuard<'_, HashMap<u64, SessionHandle>> {
        match self.sessions.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn build_handle(&self, id: u64, request: TuneRequest, tenant: &str) -> SessionHandle {
        SessionHandle {
            session: Arc::new(Mutex::new(Session {
                id,
                tenant: tenant.to_string(),
                request,
                state: SessionState::Queued,
                error: None,
                trajectory: Vec::new(),
                samples_done: 0,
                rounds_started: 0,
                workload_tokens: None,
                best_script: None,
                best_time: None,
                default_time: None,
                tuning_time: None,
                drift: DriftStatus::default(),
                serving: None,
            })),
            cancel: Arc::new(AtomicBool::new(false)),
            wal: self.current_wal(),
            changed: Arc::new(Condvar::new()),
        }
    }

    fn new_handle(&self, request: TuneRequest, tenant: &str) -> SessionHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.build_handle(id, request, tenant)
    }

    /// Re-registers a session under its original id during log replay.
    /// Fresh ids keep allocating above every recovered one, so recovered
    /// and new sessions never collide.
    pub fn restore_handle(&self, id: u64, tenant: &str, request: TuneRequest) -> SessionHandle {
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        let handle = self.build_handle(id, request, tenant);
        self.map().insert(id, handle.clone());
        handle
    }

    /// Registers a new queued session for the default tenant and returns
    /// its handle (no quota check; tests and embedded use).
    pub fn create(&self, request: TuneRequest) -> SessionHandle {
        let handle = self.new_handle(request, "default");
        let id = handle.lock().id;
        self.map().insert(id, handle.clone());
        handle
    }

    /// Registers a new queued session for `tenant` unless the tenant
    /// already has `cap` non-terminal sessions. The count and the insert
    /// happen under one registry lock, so two racing submissions cannot
    /// both slip under the quota. Returns the tenant's active-session
    /// count on rejection.
    pub fn create_if_within_quota(
        &self,
        request: TuneRequest,
        tenant: &str,
        cap: usize,
    ) -> std::result::Result<SessionHandle, usize> {
        let mut map = self.map();
        let active = map
            .values()
            .filter(|h| {
                let s = h.lock();
                s.tenant == tenant && !s.state.is_terminal()
            })
            .count();
        if active >= cap {
            return Err(active);
        }
        let handle = self.new_handle(request, tenant);
        let id = handle.lock().id;
        map.insert(id, handle.clone());
        Ok(handle)
    }

    /// Looks a session up by id.
    pub fn get(&self, id: u64) -> Option<SessionHandle> {
        self.map().get(&id).cloned()
    }

    /// Removes a session (used when admission fails after registration).
    pub fn remove(&self, id: u64) {
        self.map().remove(&id);
    }

    /// `(id, state)` of every session, id-ascending.
    pub fn states(&self) -> Vec<(u64, SessionState)> {
        let mut out: Vec<(u64, SessionState)> = self
            .map()
            .values()
            .map(|h| {
                let s = h.lock();
                (s.id, s.state)
            })
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Number of sessions in each state, as a JSON object.
    pub fn state_counts_json(&self) -> Value {
        let mut counts = [0u64; 6];
        for (_, state) in self.states() {
            let i = match state {
                SessionState::Queued => 0,
                SessionState::Tuning => 1,
                SessionState::Retuning => 2,
                SessionState::Done => 3,
                SessionState::Failed => 4,
                SessionState::Cancelled => 5,
            };
            counts[i] += 1;
        }
        json!({
            "queued": counts[0],
            "tuning": counts[1],
            "retuning": counts[2],
            "done": counts[3],
            "failed": counts[4],
            "cancelled": counts[5],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_common::json::parse;

    #[test]
    fn parses_a_full_request() {
        let doc = parse(
            r#"{"benchmark": "job", "dbms": "mysql", "hardware": "small", "seed": 9,
                "num_configs": 3, "token_budget": 500, "params_only": true,
                "temperature": 0.2, "initial_config": "SET GLOBAL tmp_table_size = '1GB';"}"#,
        )
        .unwrap();
        let req = TuneRequest::from_json(&doc).unwrap();
        assert_eq!(req.benchmark, Benchmark::Job);
        assert_eq!(req.dbms, Dbms::Mysql);
        assert_eq!(req.seed, 9);
        assert_eq!(req.options.num_configs, 3);
        assert_eq!(req.options.token_budget, Some(500));
        assert!(req.options.params_only);
        assert_eq!(req.options.temperature, 0.2);
        assert_eq!(req.options.seed, 9);
        assert!(req.initial_config.is_some());
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let req = TuneRequest::from_json(&parse("{}").unwrap()).unwrap();
        assert_eq!(req.benchmark, Benchmark::TpchSf1);
        assert_eq!(req.dbms, Dbms::Postgres);
        assert_eq!(req.seed, 0);
        assert_eq!(req.options.num_configs, 5);
        assert!(req.initial_config.is_none());
    }

    #[test]
    fn rejects_malformed_requests_with_config_errors() {
        let cases = [
            ("[1, 2]", "object"),
            (r#"{"benchmark": "tpcc"}"#, "unknown benchmark"),
            (r#"{"benchmark": 5}"#, "string"),
            (r#"{"dbms": "oracle"}"#, "unknown dbms"),
            (r#"{"hardware": "mainframe"}"#, "unknown hardware"),
            (r#"{"seed": -4}"#, "non-negative"),
            (r#"{"num_configs": 0}"#, "num_configs"),
            (r#"{"num_configs": 65}"#, "at most 64"),
            (r#"{"num_configs": 1000000000000000}"#, "at most 64"),
            (r#"{"token_budget": 0}"#, "token_budget"),
            (r#"{"token_budget": 99999999999}"#, "at most 10000000"),
            (r#"{"temperature": "hot"}"#, "number"),
            (r#"{"params_only": 1}"#, "boolean"),
            (r#"{"initial_config": 7}"#, "string"),
        ];
        for (body, needle) in cases {
            let err = TuneRequest::from_json(&parse(body).unwrap()).unwrap_err();
            assert!(
                err.message().contains(needle),
                "{body}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn admission_limits_are_inclusive() {
        let doc = parse(&format!(
            r#"{{"num_configs": {MAX_NUM_CONFIGS}, "token_budget": {MAX_TOKEN_BUDGET}}}"#
        ))
        .unwrap();
        let req = TuneRequest::from_json(&doc).unwrap();
        assert_eq!(req.options.num_configs, MAX_NUM_CONFIGS as usize);
        assert_eq!(req.options.token_budget, Some(MAX_TOKEN_BUDGET as usize));
    }

    #[test]
    fn parses_drift_overrides_and_auto_retune() {
        let doc = parse(
            r#"{"auto_retune": true,
                "drift": {"window": 16, "stride": 4, "warmup": 8, "jsd_threshold": 0.2}}"#,
        )
        .unwrap();
        let req = TuneRequest::from_json(&doc).unwrap();
        assert!(req.auto_retune);
        assert_eq!(req.drift.window, 16);
        assert_eq!(req.drift.stride, 4);
        assert_eq!(req.drift.warmup, 8);
        assert_eq!(req.drift.jsd_threshold, 0.2);
        // Unspecified fields keep their defaults.
        assert_eq!(req.drift.cooldown, DriftConfig::default().cooldown);
        // Absent entirely: defaults, auto_retune off.
        let req = TuneRequest::from_json(&parse("{}").unwrap()).unwrap();
        assert!(!req.auto_retune);
        assert_eq!(req.drift, DriftConfig::default());

        for (body, needle) in [
            (r#"{"drift": 5}"#, "object"),
            (r#"{"drift": {"window": 0}}"#, ">= 1"),
            (r#"{"drift": {"jsd_threshold": "high"}}"#, "finite number"),
            (r#"{"auto_retune": "yes"}"#, "boolean"),
        ] {
            let err = TuneRequest::from_json(&parse(body).unwrap()).unwrap_err();
            assert!(err.message().contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn tenant_quota_is_enforced_and_frees_on_terminal_states() {
        let registry = SessionRegistry::new();
        let req = TuneRequest::from_json(&parse("{}").unwrap()).unwrap();
        let a = registry
            .create_if_within_quota(req.clone(), "acme", 2)
            .unwrap();
        let _b = registry
            .create_if_within_quota(req.clone(), "acme", 2)
            .unwrap();
        assert_eq!(
            registry
                .create_if_within_quota(req.clone(), "acme", 2)
                .unwrap_err(),
            2
        );
        // Another tenant is unaffected by acme's quota.
        assert!(registry
            .create_if_within_quota(req.clone(), "other", 2)
            .is_ok());
        // A terminal session frees its slot; a retuning one does not.
        a.lock().state = SessionState::Done;
        let c = registry
            .create_if_within_quota(req.clone(), "acme", 2)
            .unwrap();
        c.lock().state = SessionState::Retuning;
        assert!(registry.create_if_within_quota(req, "acme", 2).is_err());
        let counts = registry.state_counts_json();
        assert_eq!(counts.get("retuning").and_then(Value::as_i64), Some(1));
    }

    #[test]
    fn registry_assigns_ids_and_tracks_states() {
        let registry = SessionRegistry::new();
        let req = TuneRequest::from_json(&parse("{}").unwrap()).unwrap();
        let a = registry.create(req.clone());
        let b = registry.create(req);
        let (id_a, id_b) = (a.lock().id, b.lock().id);
        assert_ne!(id_a, id_b);
        b.lock().state = SessionState::Tuning;
        assert_eq!(
            registry.states(),
            vec![(id_a, SessionState::Queued), (id_b, SessionState::Tuning)]
        );
        assert!(registry.get(id_a).is_some());
        assert!(registry.get(999).is_none());
        registry.remove(id_a);
        assert!(registry.get(id_a).is_none());
        let counts = registry.state_counts_json();
        assert_eq!(counts.get("tuning").and_then(Value::as_i64), Some(1));
        assert_eq!(counts.get("queued").and_then(Value::as_i64), Some(0));
    }

    #[test]
    fn sink_streams_progress_and_cancellation() {
        let registry = SessionRegistry::new();
        let req = TuneRequest::from_json(&parse("{}").unwrap()).unwrap();
        let handle = registry.create(req);
        let sink = handle.observer();
        sink.on_event(ProgressEvent::PromptBuilt { tokens: 123 });
        sink.on_event(ProgressEvent::ConfigSampled { index: 0, total: 5 });
        sink.on_event(ProgressEvent::RoundStarted {
            round: 1,
            timeout: lt_common::secs(10.0),
        });
        sink.on_event(ProgressEvent::Improvement {
            config_index: 2,
            point: TrajectoryPoint {
                opt_time: lt_common::secs(5.0),
                best_workload_time: lt_common::secs(50.0),
            },
        });
        {
            let s = handle.lock();
            assert_eq!(s.workload_tokens, Some(123));
            assert_eq!(s.samples_done, 1);
            assert_eq!(s.rounds_started, 1);
            assert_eq!(s.trajectory.len(), 1);
        }
        assert!(!sink.cancelled());
        handle.cancel();
        assert!(sink.cancelled());
    }

    #[test]
    fn status_and_config_documents_serialize() {
        let registry = SessionRegistry::new();
        let req = TuneRequest::from_json(&parse("{}").unwrap()).unwrap();
        let handle = registry.create(req);
        {
            let mut s = handle.lock();
            assert!(s.config_json().is_none(), "no config before completion");
            s.state = SessionState::Done;
            s.best_script = Some("SET work_mem = '1GB';".into());
            s.best_time = Some(25.0);
            s.default_time = Some(100.0);
            s.tuning_time = Some(300.0);
        }
        let s = handle.lock();
        let status = s.status_json();
        assert_eq!(status.get("state").and_then(Value::as_str), Some("done"));
        let config = s.config_json().unwrap();
        assert_eq!(
            config.get("scaled_cost").and_then(Value::as_f64),
            Some(0.25)
        );
        assert!(config
            .get("script")
            .and_then(Value::as_str)
            .unwrap()
            .contains("work_mem"));
    }
}
