//! Durable sessions: the write-ahead session log and crash recovery.
//!
//! Byte framing (length prefix + CRC-32 + fsync batching) lives in
//! [`lt_common::wal`]; this module defines what goes *into* the frames and
//! how the registry comes back from them.
//!
//! # Records
//!
//! Each frame payload is one JSON document with a `"type"` tag:
//!
//! | type         | written at                         | carries                         |
//! |--------------|------------------------------------|---------------------------------|
//! | `created`    | admission, before the 202 (fsync)  | id, tenant, full request        |
//! | `removed`    | pool rejection after `created`     | id                              |
//! | `transition` | state changes (terminal ⇒ fsync)   | id, state, optional error       |
//! | `done`       | (re-)tune completion (fsync)       | id, retune count, full outcome  |
//! | `feed`       | query feed, before the 200 (fsync) | id, the SQL batch               |
//! | `fleet`      | fleet-cache publication            | serialized key + entry          |
//!
//! # Recovery state machine
//!
//! [`replay`] folds the record stream into per-session histories;
//! [`restore`] turns each history back into a live [`Session`]:
//!
//! - `created` without a terminal record → restored as `Queued` and
//!   re-queued on the worker pool (the interrupted run re-executes with the
//!   same seed, so the determinism contract makes the winner byte-identical
//!   to the run the crash interrupted);
//! - `done` with a winner → fields restored from the snapshot, and the
//!   serving state rebuilt exactly the way the worker builds it: fresh
//!   seeded `SimDb`, winner script applied, drift monitor referenced on the
//!   tuned workload — then every logged `feed` re-executed in order;
//! - a trailing `retuning` transition without its `done` → the serving
//!   state is restored and exactly one warm re-tune is re-queued (the
//!   `done` record's retune counter makes replay idempotent, so a re-tune
//!   that *did* complete is never run twice);
//! - `failed` / `cancelled` → restored terminally with their error.
//!
//! # Compaction
//!
//! The log is truncated by snapshotting: on open (and every
//! `LT_WAL_COMPACT_EVERY` appends) the file is atomically rewritten with
//! only the records replay still needs — non-terminal transitions,
//! superseded advisory errors, removed sessions and duplicate fleet
//! publications drop out; `done` and `feed` records are retained because
//! serving-database replay needs the full feed history.

use crate::pool::WorkerPool;
use crate::session::{SessionHandle, SessionRegistry, SessionState, TuneRequest};
use lambda_tune::TrajectoryPoint;
use lt_common::json::{parse, Value};
use lt_common::wal::{read_log, rewrite_log, LogWriter, Tail, WalOptions};
use lt_common::{json, obs, secs};
use lt_fleet::{fleet_entry_from_json, fleet_key_from_json, FleetCache};
use lt_workloads::Workload;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Default appends between compaction snapshots (`LT_WAL_COMPACT_EVERY`;
/// `0` disables running compaction, leaving only the on-open snapshot).
const DEFAULT_COMPACT_EVERY: u64 = 4096;

/// Everything a `done` record snapshots: the session's outcome fields in
/// absolute form, so replaying the *last* `done` record alone reproduces
/// the scalar state (the serving database still needs the feed history).
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Winning configuration script.
    pub best_script: Option<String>,
    /// Workload time under the winner, virtual seconds.
    pub best_time: Option<f64>,
    /// Workload time under the default configuration.
    pub default_time: Option<f64>,
    /// Cumulative virtual tuning time.
    pub tuning_time: Option<f64>,
    /// Prompt workload-description tokens.
    pub workload_tokens: Option<usize>,
    /// LLM samples received.
    pub samples_done: usize,
    /// Selector rounds started.
    pub rounds_started: usize,
    /// The prompt of the latest (re-)tune — warm-start memory.
    pub prompt: String,
    /// Improvement trajectory, `(opt_time_s, best_workload_time_s)`.
    pub trajectory: Vec<(f64, f64)>,
}

/// One write-ahead-log record; see the module docs for the schema.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionRecord {
    /// Session admitted (logged before the 202 acknowledgement).
    Created {
        /// Registry-assigned id.
        id: u64,
        /// Submitting tenant.
        tenant: String,
        /// The request, in [`TuneRequest::to_wal_json`] form.
        request: Value,
    },
    /// Admission failed after `created` (pool queue full / shutting down);
    /// the client saw an error, so the session must not be resurrected.
    Removed {
        /// Id of the withdrawn session.
        id: u64,
    },
    /// A lifecycle transition that carries no outcome payload. A `done`
    /// state here is the *advisory* form: a failed re-tune returning the
    /// session to `Done` with `drift.last_error` set.
    Transition {
        /// Session id.
        id: u64,
        /// The state entered.
        state: SessionState,
        /// Failure detail (`failed`) or advisory re-tune error (`done`).
        error: Option<String>,
    },
    /// A (re-)tune completed; `retunes` is the session's completed-re-tune
    /// count *after* this record (0 = the initial tune).
    Done {
        /// Session id.
        id: u64,
        /// Completed re-tunes after this record.
        retunes: u64,
        /// Absolute outcome snapshot.
        outcome: Outcome,
    },
    /// A query feed batch that was executed and acknowledged.
    Feed {
        /// Session id.
        id: u64,
        /// The batch, in execution order.
        sqls: Vec<String>,
    },
    /// A fleet-cache publication (see `lt_fleet`): replayed into the
    /// process-global cache so warm restarts keep their amortization.
    Fleet {
        /// [`lt_fleet::fleet_key_to_json`] form.
        key: Value,
        /// [`lt_fleet::fleet_entry_to_json`] form.
        entry: Value,
    },
}

impl Outcome {
    /// Snapshots a locked session's outcome fields.
    pub fn of(s: &crate::session::Session) -> Outcome {
        Outcome {
            best_script: s.best_script.clone(),
            best_time: s.best_time,
            default_time: s.default_time,
            tuning_time: s.tuning_time,
            workload_tokens: s.workload_tokens,
            samples_done: s.samples_done,
            rounds_started: s.rounds_started,
            prompt: s
                .serving
                .as_ref()
                .map(|sv| sv.memory.prompt.clone())
                .unwrap_or_default(),
            trajectory: s
                .trajectory
                .iter()
                .map(|p| (p.opt_time.as_f64(), p.best_workload_time.as_f64()))
                .collect(),
        }
    }

    fn to_json(&self) -> Value {
        let trajectory: Vec<Value> = self
            .trajectory
            .iter()
            .map(|&(o, b)| json!({ "opt_time_s": o, "best_workload_time_s": b }))
            .collect();
        json!({
            "best_script": self.best_script.as_deref(),
            "best_time_s": self.best_time,
            "default_time_s": self.default_time,
            "tuning_time_s": self.tuning_time,
            "workload_tokens": self.workload_tokens,
            "samples_done": self.samples_done,
            "rounds_started": self.rounds_started,
            "prompt": self.prompt.as_str(),
            "trajectory": Value::Array(trajectory),
        })
    }

    fn from_json(doc: &Value) -> Option<Outcome> {
        let opt_f64 = |field: &str| match doc.get(field)? {
            Value::Null => Some(None),
            v => v.as_f64().map(Some),
        };
        let mut trajectory = Vec::new();
        for p in doc.get("trajectory")?.as_array()? {
            trajectory.push((
                p.get("opt_time_s")?.as_f64()?,
                p.get("best_workload_time_s")?.as_f64()?,
            ));
        }
        Some(Outcome {
            best_script: match doc.get("best_script")? {
                Value::Null => None,
                v => Some(v.as_str()?.to_string()),
            },
            best_time: opt_f64("best_time_s")?,
            default_time: opt_f64("default_time_s")?,
            tuning_time: opt_f64("tuning_time_s")?,
            workload_tokens: match doc.get("workload_tokens")? {
                Value::Null => None,
                v => Some(usize::try_from(v.as_i64()?).ok()?),
            },
            samples_done: usize::try_from(doc.get("samples_done")?.as_i64()?).ok()?,
            rounds_started: usize::try_from(doc.get("rounds_started")?.as_i64()?).ok()?,
            prompt: doc.get("prompt")?.as_str()?.to_string(),
            trajectory,
        })
    }
}

impl SessionRecord {
    /// Serializes to the frame payload document.
    pub fn to_json(&self) -> Value {
        match self {
            SessionRecord::Created {
                id,
                tenant,
                request,
            } => json!({
                "type": "created",
                "id": *id as i64,
                "tenant": tenant.as_str(),
                "request": request.clone(),
            }),
            SessionRecord::Removed { id } => json!({ "type": "removed", "id": *id as i64 }),
            SessionRecord::Transition { id, state, error } => json!({
                "type": "transition",
                "id": *id as i64,
                "state": state.name(),
                "error": error.as_deref(),
            }),
            SessionRecord::Done {
                id,
                retunes,
                outcome,
            } => json!({
                "type": "done",
                "id": *id as i64,
                "retunes": *retunes as i64,
                "outcome": outcome.to_json(),
            }),
            SessionRecord::Feed { id, sqls } => json!({
                "type": "feed",
                "id": *id as i64,
                "sqls": sqls.clone(),
            }),
            SessionRecord::Fleet { key, entry } => json!({
                "type": "fleet",
                "key": key.clone(),
                "entry": entry.clone(),
            }),
        }
    }

    /// Parses a frame payload document; `None` for anything malformed (a
    /// skipped record costs that record, never the log).
    pub fn from_json(doc: &Value) -> Option<SessionRecord> {
        let id = || u64::try_from(doc.get("id")?.as_i64()?).ok();
        Some(match doc.get("type")?.as_str()? {
            "created" => SessionRecord::Created {
                id: id()?,
                tenant: doc.get("tenant")?.as_str()?.to_string(),
                request: doc.get("request")?.clone(),
            },
            "removed" => SessionRecord::Removed { id: id()? },
            "transition" => SessionRecord::Transition {
                id: id()?,
                state: SessionState::parse(doc.get("state")?.as_str()?)?,
                error: match doc.get("error")? {
                    Value::Null => None,
                    v => Some(v.as_str()?.to_string()),
                },
            },
            "done" => SessionRecord::Done {
                id: id()?,
                retunes: u64::try_from(doc.get("retunes")?.as_i64()?).ok()?,
                outcome: Outcome::from_json(doc.get("outcome")?)?,
            },
            "feed" => SessionRecord::Feed {
                id: id()?,
                sqls: doc
                    .get("sqls")?
                    .as_array()?
                    .iter()
                    .map(|v| v.as_str().map(str::to_string))
                    .collect::<Option<_>>()?,
            },
            "fleet" => SessionRecord::Fleet {
                key: doc.get("key")?.clone(),
                entry: doc.get("entry")?.clone(),
            },
            _ => None?,
        })
    }

    fn payload(&self) -> Vec<u8> {
        self.to_json().to_string_pretty().into_bytes()
    }

    /// The session id the record belongs to; `None` for fleet records.
    pub fn id(&self) -> Option<u64> {
        match self {
            SessionRecord::Created { id, .. }
            | SessionRecord::Removed { id }
            | SessionRecord::Transition { id, .. }
            | SessionRecord::Done { id, .. }
            | SessionRecord::Feed { id, .. } => Some(*id),
            SessionRecord::Fleet { .. } => None,
        }
    }
}

/// Decodes raw frame payloads into records, counting (not failing on)
/// undecodable ones.
fn decode_records(payloads: &[Vec<u8>]) -> Vec<SessionRecord> {
    let mut records = Vec::with_capacity(payloads.len());
    let mut skipped = 0u64;
    for payload in payloads {
        let decoded = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| parse(text).ok())
            .and_then(|doc| SessionRecord::from_json(&doc));
        match decoded {
            Some(record) => records.push(record),
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        obs::counter("wal.records_skipped", skipped);
    }
    records
}

/// Drops every record replay no longer needs, preserving order:
///
/// - all records of sessions that were `removed`,
/// - non-terminal `transition`s (`tuning`), and `retuning` transitions
///   superseded by a later `done`,
/// - advisory-error transitions other than the last one per session,
/// - `fleet` records with a duplicate key (last one wins).
///
/// `replay(compact_records(r))` and `replay(r)` restore identical state —
/// the property the WAL edge-case suite pins down.
pub fn compact_records(records: &[SessionRecord]) -> Vec<SessionRecord> {
    use std::collections::{HashMap, HashSet};
    let mut removed: HashSet<u64> = HashSet::new();
    // Per session: index of the done record that supersedes retuning
    // transitions before it, and of the last advisory transition.
    let mut last_done: HashMap<u64, usize> = HashMap::new();
    let mut last_advisory: HashMap<u64, usize> = HashMap::new();
    let mut last_fleet: HashMap<String, usize> = HashMap::new();
    for (i, record) in records.iter().enumerate() {
        match record {
            SessionRecord::Removed { id } => {
                removed.insert(*id);
            }
            SessionRecord::Done { id, .. } => {
                last_done.insert(*id, i);
            }
            SessionRecord::Transition {
                id,
                state: SessionState::Done,
                ..
            } => {
                last_advisory.insert(*id, i);
            }
            SessionRecord::Fleet { key, .. } => {
                last_fleet.insert(key.to_string_pretty(), i);
            }
            _ => {}
        }
    }
    let mut out = Vec::with_capacity(records.len());
    for (i, record) in records.iter().enumerate() {
        if record.id().is_some_and(|id| removed.contains(&id)) {
            continue;
        }
        let keep = match record {
            SessionRecord::Removed { .. } => false,
            SessionRecord::Transition { id, state, .. } => match state {
                SessionState::Tuning | SessionState::Queued => false,
                SessionState::Retuning => last_done.get(id).is_none_or(|&d| d < i),
                SessionState::Done => last_advisory.get(id) == Some(&i),
                SessionState::Failed | SessionState::Cancelled => true,
            },
            SessionRecord::Fleet { key, .. } => last_fleet.get(&key.to_string_pretty()) == Some(&i),
            _ => true,
        };
        if keep {
            out.push(record.clone());
        }
    }
    out
}

/// One session's folded history after [`replay`].
#[derive(Debug)]
pub struct ReplaySession {
    /// Session id.
    pub id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// The logged request document.
    pub request: Value,
    /// Final logged state.
    pub state: SessionState,
    /// Failure detail, for `failed`.
    pub error: Option<String>,
    /// Advisory re-tune error, if the last one was not superseded.
    pub last_error: Option<String>,
    /// True when the log ends with an unfinished re-tune: the serving
    /// state must be restored *and* exactly one warm re-tune re-queued.
    pub retuning_pending: bool,
    /// Completions and feeds, in log order.
    pub ops: Vec<ReplayOp>,
}

/// An operation that must be re-applied to rebuild session state.
#[derive(Debug)]
pub enum ReplayOp {
    /// A (re-)tune completion snapshot.
    Complete {
        /// Re-tune counter of the record (0 = initial tune).
        retunes: u64,
        /// The snapshot.
        outcome: Outcome,
    },
    /// An acknowledged feed batch to re-execute on the serving database.
    Feed {
        /// The batch, in execution order.
        sqls: Vec<String>,
    },
}

/// The full replayed log: per-session histories plus fleet publications.
#[derive(Debug, Default)]
pub struct Replay {
    /// Sessions by ascending id.
    pub sessions: Vec<ReplaySession>,
    /// Fleet-cache publications, `(key, entry)` documents in log order.
    pub fleet: Vec<(Value, Value)>,
}

/// Folds a record stream into recovery state. Pure — no registry, no I/O —
/// so the edge-case suite can drive it directly. Tolerates duplicate
/// records: repeated `created`s keep the first, repeated transitions are
/// idempotent, and a `done` only applies when its re-tune counter is the
/// next one the session expects.
pub fn replay(records: &[SessionRecord]) -> Replay {
    let mut sessions: BTreeMap<u64, ReplaySession> = BTreeMap::new();
    let mut fleet = Vec::new();
    for record in records {
        match record {
            SessionRecord::Created {
                id,
                tenant,
                request,
            } => {
                sessions.entry(*id).or_insert_with(|| ReplaySession {
                    id: *id,
                    tenant: tenant.clone(),
                    request: request.clone(),
                    state: SessionState::Queued,
                    error: None,
                    last_error: None,
                    retuning_pending: false,
                    ops: Vec::new(),
                });
            }
            SessionRecord::Removed { id } => {
                sessions.remove(id);
            }
            SessionRecord::Transition { id, state, error } => {
                let Some(s) = sessions.get_mut(id) else {
                    continue;
                };
                match state {
                    SessionState::Queued => {}
                    SessionState::Tuning => {
                        // Only meaningful from the queue; ignore echoes.
                        if matches!(s.state, SessionState::Queued | SessionState::Tuning) {
                            s.state = SessionState::Tuning;
                        }
                    }
                    SessionState::Retuning => {
                        if s.state == SessionState::Done {
                            s.state = SessionState::Retuning;
                            s.retuning_pending = true;
                        }
                    }
                    SessionState::Done => {
                        // Advisory: a re-tune failed (or was withdrawn);
                        // the session is serving again under its old winner.
                        s.state = SessionState::Done;
                        s.retuning_pending = false;
                        s.last_error = error.clone();
                    }
                    SessionState::Failed => {
                        s.state = SessionState::Failed;
                        s.error = error.clone();
                        s.retuning_pending = false;
                    }
                    SessionState::Cancelled => {
                        s.state = SessionState::Cancelled;
                        s.retuning_pending = false;
                    }
                }
            }
            SessionRecord::Done {
                id,
                retunes,
                outcome,
            } => {
                let Some(s) = sessions.get_mut(id) else {
                    continue;
                };
                let completions = s
                    .ops
                    .iter()
                    .filter(|op| matches!(op, ReplayOp::Complete { .. }))
                    .count() as u64;
                // Idempotency: apply only the completion the session
                // expects next; duplicates (same counter again) are noise.
                if *retunes == completions {
                    s.ops.push(ReplayOp::Complete {
                        retunes: *retunes,
                        outcome: outcome.clone(),
                    });
                }
                s.state = SessionState::Done;
                s.retuning_pending = false;
            }
            SessionRecord::Feed { id, sqls } => {
                if let Some(s) = sessions.get_mut(id) {
                    s.ops.push(ReplayOp::Feed { sqls: sqls.clone() });
                }
            }
            SessionRecord::Fleet { key, entry } => {
                fleet.push((key.clone(), entry.clone()));
            }
        }
    }
    Replay {
        sessions: sessions.into_values().collect(),
        fleet,
    }
}

/// What [`restore`] did, for the startup log line and `/metrics`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RestoreStats {
    /// Sessions restored into the registry.
    pub sessions: usize,
    /// Interrupted sessions re-queued for a fresh run.
    pub requeued: usize,
    /// Unfinished re-tunes re-queued.
    pub retunes_requeued: usize,
    /// Fleet-cache entries republished.
    pub fleet: usize,
    /// Histories skipped because their request or payload no longer parses.
    pub skipped: usize,
}

/// Rebuilds the registry (and the global fleet cache) from a replayed log,
/// re-queuing interrupted work on `pool` when one is given.
pub fn restore(
    registry: &SessionRegistry,
    pool: Option<&WorkerPool>,
    replay: Replay,
) -> RestoreStats {
    let mut stats = RestoreStats::default();
    let fleet_cache = FleetCache::global();
    for (key_doc, entry_doc) in &replay.fleet {
        match (
            fleet_key_from_json(key_doc),
            fleet_entry_from_json(entry_doc),
        ) {
            (Some(key), Some(entry)) => {
                fleet_cache.insert(key, entry);
                stats.fleet += 1;
            }
            _ => {
                stats.skipped += 1;
                obs::counter("wal.fleet_skipped", 1);
            }
        }
    }
    for rs in replay.sessions {
        let Ok(request) = TuneRequest::from_json(&rs.request) else {
            stats.skipped += 1;
            obs::counter("wal.sessions_skipped", 1);
            continue;
        };
        let handle = registry.restore_handle(rs.id, &rs.tenant, request.clone());
        restore_session(&handle, &request, &rs);
        stats.sessions += 1;
        match rs.state {
            SessionState::Queued | SessionState::Tuning => {
                handle.lock().state = SessionState::Queued;
                if let Some(pool) = pool {
                    if pool.submit(handle.clone()).is_ok() {
                        stats.requeued += 1;
                    } else {
                        obs::counter("wal.requeue_failed", 1);
                    }
                }
            }
            SessionState::Retuning if rs.retuning_pending => {
                if let Some(pool) = pool {
                    if pool.submit_retune(handle.clone()).is_ok() {
                        stats.retunes_requeued += 1;
                    } else {
                        obs::counter("wal.requeue_failed", 1);
                    }
                }
            }
            _ => {}
        }
    }
    stats
}

/// Applies one replayed history to a freshly restored session: outcome
/// snapshots rebuild scalar state and the serving database; feeds
/// re-execute on it in order.
fn restore_session(handle: &SessionHandle, request: &TuneRequest, rs: &ReplaySession) {
    let mut s = handle.lock();
    for op in &rs.ops {
        match op {
            ReplayOp::Complete { retunes, outcome } => {
                s.best_script = outcome.best_script.clone();
                s.best_time = outcome.best_time;
                s.default_time = outcome.default_time;
                s.tuning_time = outcome.tuning_time;
                s.workload_tokens = outcome.workload_tokens;
                s.samples_done = outcome.samples_done;
                s.rounds_started = outcome.rounds_started;
                s.trajectory = outcome
                    .trajectory
                    .iter()
                    .map(|&(o, b)| TrajectoryPoint {
                        opt_time: secs(o),
                        best_workload_time: secs(b),
                    })
                    .collect();
                if *retunes == 0 {
                    if let Some(script) = &outcome.best_script {
                        s.serving =
                            Some(crate::pool::build_serving(request, script, &outcome.prompt));
                    }
                } else if let (Some(serving), Some(script)) =
                    (s.serving.as_mut(), outcome.best_script.as_deref())
                {
                    // Re-adopt the re-tune's winner exactly the way the
                    // worker did: the observed workload is the recent-query
                    // window as it stood then, which the replayed feeds
                    // have just rebuilt.
                    let pairs: Vec<(&str, String)> = serving
                        .recent
                        .iter()
                        .map(|(label, sql)| (label.as_str(), sql.clone()))
                        .collect();
                    if let Ok(workload) =
                        Workload::from_sql("observed", serving.db.catalog().clone(), &pairs)
                    {
                        crate::pool::adopt_retune(
                            serving,
                            request,
                            script,
                            &outcome.prompt,
                            &workload,
                        );
                        s.drift.retunes = *retunes;
                    } else {
                        obs::counter("wal.retune_replay_failed", 1);
                    }
                }
            }
            ReplayOp::Feed { sqls } => {
                let observed = s.drift.queries_observed;
                let Some(serving) = s.serving.as_mut() else {
                    obs::counter("wal.feed_skipped", 1);
                    continue;
                };
                let labels: Vec<String> = (0..sqls.len())
                    .map(|i| format!("f{}", observed + 1 + i as u64))
                    .collect();
                let pairs: Vec<(&str, String)> = labels
                    .iter()
                    .zip(sqls)
                    .map(|(label, sql)| (label.as_str(), sql.clone()))
                    .collect();
                match Workload::from_sql("feed", serving.db.catalog().clone(), &pairs) {
                    Ok(workload) => {
                        let events = serving.observe_queries(&workload);
                        let now_observed = serving.monitor.observed();
                        s.drift.queries_observed = now_observed;
                        s.drift.events.extend(events);
                    }
                    Err(_) => obs::counter("wal.feed_skipped", 1),
                }
            }
        }
    }
    s.state = rs.state;
    s.error = rs.error.clone();
    s.drift.last_error = rs.last_error.clone();
}

#[derive(Debug)]
struct LogState {
    writer: LogWriter,
    records_in_file: u64,
}

/// The durable session log: a [`LogWriter`] under a mutex, plus the
/// compaction policy. One per server; handles carry it as an `Arc`.
#[derive(Debug)]
pub struct SessionLog {
    inner: Mutex<LogState>,
    path: PathBuf,
    opts: WalOptions,
    compact_every: u64,
}

impl SessionLog {
    /// Opens (or creates) `dir/sessions.wal`, replays what is there, takes
    /// a compaction snapshot — which also truncates any torn tail — and
    /// returns the log plus the replayed records for [`restore`].
    pub fn open(dir: &Path) -> io::Result<(SessionLog, Vec<SessionRecord>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("sessions.wal");
        let read = read_log(&path)?;
        match read.tail {
            Tail::Clean => {}
            Tail::Torn { dropped } | Tail::Corrupt { dropped } => {
                obs::counter("wal.tail_dropped_bytes", dropped);
                eprintln!(
                    "lt-serve: dropping {dropped} trailing bytes of {} ({})",
                    path.display(),
                    match read.tail {
                        Tail::Torn { .. } => "torn write",
                        _ => "checksum failure",
                    },
                );
            }
        }
        let records = decode_records(&read.records);
        let compacted = compact_records(&records);
        let opts = WalOptions::from_env();
        // Startup snapshot: rewrite unconditionally so a torn tail is gone
        // from disk before the writer appends after it.
        rewrite_log(&path, compacted.iter().map(|r| r.payload()), opts.sync)?;
        let writer = LogWriter::open(&path, opts.clone())?;
        let compact_every = std::env::var("LT_WAL_COMPACT_EVERY")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_COMPACT_EVERY);
        let log = SessionLog {
            inner: Mutex::new(LogState {
                writer,
                records_in_file: compacted.len() as u64,
            }),
            path,
            opts,
            compact_every,
        };
        Ok((log, compacted))
    }

    /// Appends a record, batched-fsync.
    pub fn append(&self, record: &SessionRecord) {
        self.write(record, false);
    }

    /// Appends a record and fsyncs before returning.
    pub fn append_sync(&self, record: &SessionRecord) {
        self.write(record, true);
    }

    fn write(&self, record: &SessionRecord, sync: bool) {
        let payload = record.payload();
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let result = if sync {
            g.writer.append_sync(&payload)
        } else {
            g.writer.append(&payload)
        };
        match result {
            Ok(()) => {
                obs::counter("wal.records_appended", 1);
                g.records_in_file += 1;
            }
            Err(err) => {
                obs::counter("wal.append_errors", 1);
                eprintln!("lt-serve: wal append failed: {err}");
            }
        }
        if self.compact_every > 0 && g.records_in_file > self.compact_every {
            if let Err(err) = self.compact_locked(&mut g) {
                obs::counter("wal.compact_errors", 1);
                eprintln!("lt-serve: wal compaction failed: {err}");
            }
        }
    }

    /// Rewrites the file with only the records replay still needs and
    /// reopens the writer. Runs under the writer lock, so appends queue
    /// behind it; the snapshot is atomic (write-temp + rename).
    fn compact_locked(&self, g: &mut LogState) -> io::Result<()> {
        g.writer.sync()?; // buffered frames must reach the file first
        let read = read_log(&self.path)?;
        let compacted = compact_records(&decode_records(&read.records));
        rewrite_log(
            &self.path,
            compacted.iter().map(|r| r.payload()),
            self.opts.sync,
        )?;
        g.writer = LogWriter::open(&self.path, self.opts.clone())?;
        g.records_in_file = compacted.len() as u64;
        obs::counter("wal.compactions", 1);
        Ok(())
    }

    /// Records currently in the file (including the snapshot prefix).
    pub fn records_in_file(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .records_in_file
    }

    /// Flushes and fsyncs any batched records.
    pub fn sync(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Err(err) = g.writer.sync() {
            obs::counter("wal.append_errors", 1);
            eprintln!("lt-serve: wal sync failed: {err}");
        }
    }
}
