//! λ-Tune as a service: a multi-tenant tuning server over `std::net`.
//!
//! The research pipeline in [`lambda_tune`] tunes one database per process
//! invocation. This crate wraps it in a long-lived HTTP service:
//!
//! - [`http`] — a minimal, bounded HTTP/1.1 subset (one request per
//!   connection, `Content-Length` bodies, JSON in and out);
//! - [`session`] — request parsing/validation, the per-session state
//!   machine (`Queued → Tuning → Done/Failed/Cancelled`) and the registry;
//! - [`pool`] — a fixed-size worker pool behind a bounded, tenant-fair
//!   (deficit-round-robin) queue; admission control (429), graceful drain
//!   on shutdown, and a `catch_unwind` backstop so one poisoned request
//!   cannot take down a worker thread;
//! - [`server`] — the accept loop and routing;
//! - [`load`] — the load generator behind the `lt-serve-load` binary;
//! - [`ring`] — the consistent-hash ring placing sessions on shards;
//! - [`coord`] — the coordinator: global admission, session routing over
//!   the ring, health probing, and fleet-wide `/metrics` aggregation;
//! - [`fleet`] — multi-process fabric spawning (N shard daemons + one
//!   coordinator) for the sharded benchmark and the CI shard gate.
//!
//! Determinism contract: each session owns its own simulated database,
//! seeded from the request. With the session seed fixed, the resulting best
//! configuration is byte-identical regardless of worker-pool size or
//! request interleaving — progress observers stream state out of the
//! pipeline but never feed anything back in except cancellation.

pub mod coord;
pub mod fleet;
pub mod http;
pub mod load;
pub mod pool;
pub mod ring;
pub mod server;
pub mod session;
pub mod wal;

pub use coord::{start_coordinator, CoordinatorConfig, CoordinatorHandle, ShardSpec};
pub use fleet::Fleet;
pub use pool::{SubmitError, WorkerPool};
pub use ring::HashRing;
pub use server::{start, ServerConfig, ServerHandle};
pub use session::{DriftStatus, ServingState, Session, SessionRegistry, SessionState, TuneRequest};
