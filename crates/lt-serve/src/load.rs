//! The load generator: concurrent clients against a running server.
//!
//! Each client derives its session seed from the shared base seed
//! (`derive_seed(base, client_index)`), submits one tuning session, polls
//! it to completion and fetches the winning configuration. Because seeds —
//! not thread scheduling — determine results, the same client set run
//! against a 1-worker server and a 4-worker server must produce
//! byte-identical per-seed configuration scripts; [`run_matrix`] verifies
//! exactly that, and the determinism integration test pins it.

use crate::http::Connection;
use crate::server::{start, ServerConfig};
use lt_common::json::{parse, Value};
use lt_common::{derive_seed, json};
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Concurrent clients (one session each).
    pub clients: usize,
    /// Benchmark each session tunes.
    pub benchmark: String,
    /// LLM samples per session (small keeps the smoke gate fast).
    pub num_configs: usize,
    /// Base seed; session slot `i` uses `derive_seed(base_seed, i)`.
    pub base_seed: u64,
    /// Give-up bound per session.
    pub poll_timeout: Duration,
    /// Sessions each client runs back to back (closed loop). More
    /// sessions per run tightens the placement spread a sharded fabric
    /// sees — with few keys, consistent hashing's multinomial variance
    /// dominates the drain time.
    pub sessions_per_client: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 16,
            benchmark: "tpch-sf1".to_string(),
            num_configs: 2,
            base_seed: base_seed(),
            poll_timeout: Duration::from_secs(120),
            sessions_per_client: 1,
        }
    }
}

/// Base seed for load runs. Override with `LT_SEED` (same convention as
/// the benchmark harness).
pub fn base_seed() -> u64 {
    std::env::var("LT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// What one client observed.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// Client index within the run.
    pub client: usize,
    /// The session seed this client submitted.
    pub seed: u64,
    /// Terminal state reported by the server (`done`, `failed`, …), or a
    /// transport-level error description.
    pub state: String,
    /// The winning configuration script (`done` sessions only).
    pub script: Option<String>,
    /// Submit → terminal-state wall time.
    pub latency: Duration,
}

impl ClientOutcome {
    /// True when the session finished with a configuration.
    pub fn ok(&self) -> bool {
        self.state == "done" && self.script.is_some()
    }
}

/// An aggregated load run against one server.
#[derive(Debug, Clone)]
pub struct LoadRun {
    /// Worker count of the server this run hit (0 = external server,
    /// unknown).
    pub workers: usize,
    /// Per-client outcomes, client-index order.
    pub outcomes: Vec<ClientOutcome>,
    /// Wall time of the whole run.
    pub wall: Duration,
}

impl LoadRun {
    /// Clients that failed (transport error, failed session, missing
    /// config).
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.ok()).count()
    }

    /// Completed sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        let ok = self.outcomes.len() - self.failures();
        ok as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Nearest-rank latency percentile in milliseconds, `p` in (0, 100].
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        let mut sorted: Vec<f64> = self
            .outcomes
            .iter()
            .map(|o| o.latency.as_secs_f64() * 1e3)
            .collect();
        if sorted.is_empty() {
            return 0.0;
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// JSON summary of this run.
    pub fn to_json(&self) -> Value {
        let outcomes: Vec<Value> = self
            .outcomes
            .iter()
            .map(|o| {
                json!({
                    "client": o.client,
                    "seed": o.seed,
                    "state": o.state.as_str(),
                    "latency_ms": o.latency.as_secs_f64() * 1e3,
                })
            })
            .collect();
        json!({
            "workers": self.workers,
            "clients": self.outcomes.len(),
            "failures": self.failures(),
            "wall_s": self.wall.as_secs_f64(),
            "sessions_per_sec": self.sessions_per_sec(),
            "latency_ms": json!({
                "p50": self.latency_percentile_ms(50.0),
                "p95": self.latency_percentile_ms(95.0),
                "p99": self.latency_percentile_ms(99.0),
            }),
            "outcomes": Value::Array(outcomes),
        })
    }
}

/// Runs one client: submit, poll to a terminal state, fetch the config —
/// all over a single keep-alive connection (polling every 10 ms through
/// fresh connections is exactly the workload connection reuse exists for).
/// Transport errors become a synthetic `error: …` state instead of a panic
/// so one refused connection does not sink the whole run.
fn run_client(addr: SocketAddr, client: usize, opts: &LoadOptions) -> ClientOutcome {
    // Masked into i64 range: session seeds travel through JSON, whose
    // integer model is i64.
    let seed = derive_seed(opts.base_seed, client as u64) & (i64::MAX as u64);
    let started = Instant::now();
    let mut conn = Connection::new(addr);
    let fail = |state: String| ClientOutcome {
        client,
        seed,
        state,
        script: None,
        latency: started.elapsed(),
    };

    let body = json!({
        "benchmark": opts.benchmark.as_str(),
        "seed": seed,
        "num_configs": opts.num_configs,
    })
    .to_string_pretty();
    // A refused connect means the endpoint process is down — distinct from
    // an HTTP-level rejection. During shard failover the coordinator (or a
    // restarting single server) comes back within a probe interval, so the
    // client retries the submit once through the coordinator before giving
    // up. Refusal is safe to retry even for this POST: nothing was sent.
    let submit =
        |conn: &mut Connection| conn.call_classified("POST", "/sessions", &[], Some(&body));
    let (status, _, response) = match submit(&mut conn) {
        Ok(r) => r,
        Err(e) if e.is_refused() => {
            std::thread::sleep(Duration::from_millis(100));
            match submit(&mut conn) {
                Ok(r) => r,
                Err(e) => return fail(format!("error: submit: {}", e.into_inner())),
            }
        }
        Err(e) => return fail(format!("error: submit: {}", e.into_inner())),
    };
    if status != 202 {
        return fail(format!("error: submit rejected with {status}: {response}"));
    }
    let id = match parse(&response).ok().and_then(|d| d.get("id")?.as_i64()) {
        Some(id) => id,
        None => return fail(format!("error: bad submit response: {response}")),
    };

    let mut refused_retries = 0;
    let state = loop {
        if started.elapsed() > opts.poll_timeout {
            break "error: poll timeout".to_string();
        }
        let path = format!("/sessions/{id}?wait_ms=1000");
        let (status, _, response) = match conn.call_classified("GET", &path, &[], None) {
            Ok(r) => r,
            // Connection refused mid-poll: the endpoint died under us
            // (kill-one-shard). Retry once through the coordinator after a
            // beat; a second refusal means it is genuinely gone.
            Err(e) if e.is_refused() && refused_retries == 0 => {
                refused_retries += 1;
                std::thread::sleep(Duration::from_millis(200));
                continue;
            }
            Err(e) => break format!("error: poll: {}", e.into_inner()),
        };
        match status {
            200 => {}
            // The owning shard is down and recovering; the coordinator
            // says retry later. Transient as long as the timeout allows.
            502 | 503 => {
                std::thread::sleep(Duration::from_millis(200));
                continue;
            }
            _ => break format!("error: poll status {status}"),
        }
        let state = parse(&response)
            .ok()
            .and_then(|d| Some(d.get("state")?.as_str()?.to_string()));
        match state.as_deref() {
            Some("done" | "failed" | "cancelled") => break state.unwrap(),
            // Long-poll returned on timeout without a transition; go
            // straight back to waiting — no client-side sleep needed.
            Some(_) => {}
            None => break format!("error: bad status document: {response}"),
        }
    };
    let latency = started.elapsed();

    let script = (state == "done")
        .then(|| {
            let (status, _, response) = conn
                .call("GET", &format!("/sessions/{id}/config"), &[], None)
                .ok()?;
            (status == 200)
                .then(|| parse(&response).ok())
                .flatten()
                .and_then(|d| Some(d.get("script")?.as_str()?.to_string()))
        })
        .flatten();
    ClientOutcome {
        client,
        seed,
        state,
        script,
        latency,
    }
}

/// Fires `opts.clients` concurrent clients at `addr`, each running
/// `opts.sessions_per_client` sessions back to back, and collects their
/// outcomes (sorted by session slot, so two runs with the same options
/// align element-wise). `workers` is only recorded in the result.
pub fn run_against(addr: SocketAddr, workers: usize, opts: &LoadOptions) -> LoadRun {
    let started = Instant::now();
    let rounds = opts.sessions_per_client.max(1);
    let mut outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|client| {
                scope.spawn(move || {
                    (0..rounds)
                        // Session slot: unique across the run, stable
                        // across topologies — it derives the seed.
                        .map(|round| run_client(addr, round * opts.clients + client, opts))
                        .collect::<Vec<ClientOutcome>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client thread"))
            .collect()
    });
    outcomes.sort_by_key(|o| o.client);
    LoadRun {
        workers,
        outcomes,
        wall: started.elapsed(),
    }
}

/// Starts an in-process server with `workers` workers, runs the client set
/// against it over real TCP loopback, and shuts the server down.
pub fn run_in_process(workers: usize, opts: &LoadOptions) -> io::Result<LoadRun> {
    let mut server = start(ServerConfig {
        workers,
        queue_depth: opts.clients.max(64),
        // Every client may hold a polling connection at once; admission
        // 503s would show up as load-run failures, so size the cap to the
        // client count.
        max_connections: opts.clients.max(64),
        // All load clients share the default tenant; the per-tenant quota
        // must not reject what the load run intends to submit.
        tenant_cap: opts.clients.max(64),
        ..ServerConfig::default()
    })?;
    let run = run_against(server.addr(), workers, opts);
    server.shutdown();
    Ok(run)
}

/// The worker-pool determinism matrix: the same client set at 1 worker and
/// at 4 workers. Returns both runs plus the list of seeds whose winning
/// scripts differ (must be empty — the determinism contract).
pub fn run_matrix(opts: &LoadOptions) -> io::Result<(LoadRun, LoadRun, Vec<u64>)> {
    let serial = run_in_process(1, opts)?;
    let pooled = run_in_process(4, opts)?;
    let mut mismatched = Vec::new();
    for (a, b) in serial.outcomes.iter().zip(&pooled.outcomes) {
        debug_assert_eq!(a.seed, b.seed);
        if a.script != b.script || a.state != b.state {
            mismatched.push(a.seed);
        }
    }
    Ok((serial, pooled, mismatched))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let run = LoadRun {
            workers: 1,
            outcomes: (0..10)
                .map(|i| ClientOutcome {
                    client: i,
                    seed: i as u64,
                    state: "done".to_string(),
                    script: Some("s".to_string()),
                    latency: Duration::from_millis((i as u64 + 1) * 10),
                })
                .collect(),
            wall: Duration::from_secs(1),
        };
        assert_eq!(run.latency_percentile_ms(50.0), 50.0);
        assert_eq!(run.latency_percentile_ms(95.0), 100.0);
        assert_eq!(run.latency_percentile_ms(99.0), 100.0);
        assert_eq!(run.failures(), 0);
        assert_eq!(run.sessions_per_sec(), 10.0);
    }

    /// Satellite of the sharded fabric: a client polling through the
    /// coordinator survives SIGKILL of the shard owning its session —
    /// refused/503 answers are transient, the shard restarts on its WAL,
    /// and every acked session still completes.
    #[test]
    fn clients_survive_kill_one_shard_failover() {
        if crate::fleet::server_binary().is_err() {
            eprintln!("skipped: lt-serve binary not built next to the test executable");
            return;
        }
        let envs = vec![
            ("LT_LLM_LATENCY_MS".to_string(), "300".to_string()),
            ("LT_SHARD_PROBE_MS".to_string(), "100".to_string()),
        ];
        let mut fleet = crate::fleet::Fleet::spawn(2, 1, &envs).expect("spawn 2-shard fleet");
        let addr = fleet.coordinator_addr();
        let opts = LoadOptions {
            clients: 4,
            num_configs: 2,
            base_seed: 9500,
            poll_timeout: Duration::from_secs(120),
            ..LoadOptions::default()
        };
        let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..opts.clients)
                .map(|client| {
                    let opts = &opts;
                    scope.spawn(move || run_client(addr, client, opts))
                })
                .collect();
            // Let the submits land and the slow sessions get in flight,
            // then crash one shard and bring it back.
            std::thread::sleep(Duration::from_millis(200));
            fleet.kill_shard(1);
            std::thread::sleep(Duration::from_millis(400));
            fleet.restart_shard(1).expect("restart killed shard");
            handles
                .into_iter()
                .map(|h| h.join().expect("load client thread"))
                .collect()
        });
        fleet.shutdown();
        for o in &outcomes {
            assert!(
                o.ok(),
                "client {} (seed {}) did not survive the shard kill: {}",
                o.client,
                o.seed,
                o.state
            );
        }
    }

    #[test]
    fn single_client_round_trip_over_loopback() {
        let opts = LoadOptions {
            clients: 1,
            num_configs: 2,
            ..LoadOptions::default()
        };
        let run = run_in_process(1, &opts).unwrap();
        assert_eq!(run.failures(), 0, "outcomes: {:?}", run.outcomes);
        assert!(run.outcomes[0].script.is_some());
    }
}
