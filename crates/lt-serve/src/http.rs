//! A minimal HTTP/1.1 layer over `std::net`, sized for the tuning service.
//!
//! The default is one request per connection (`Connection: close` on every
//! response); clients that send `Connection: keep-alive` explicitly get the
//! connection back for more requests, up to the server's per-connection cap
//! and idle timeout ([`Connection`] is the persistent client). No chunked
//! encoding — the serving protocol is small JSON documents delimited by
//! `Content-Length` in both directions. Head and body sizes are bounded so
//! a misbehaving peer cannot balloon memory.

use lt_common::json::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on the request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, upper-case as sent (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request target, e.g. `/sessions/3/config` (query strings are kept
    /// verbatim; the service routes on the path only).
    pub path: String,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or `None` when it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// True when the client explicitly asked to reuse the connection.
    /// HTTP/1.1 defaults to persistent connections, but this service keeps
    /// the historical close-by-default contract — existing clients send no
    /// `Connection` header and expect EOF-delimited responses.
    pub fn wants_keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }
}

/// Reads one request from `stream`. `Err` means the peer sent something
/// that is not HTTP (or exceeded the size bounds); the connection should
/// be answered with 400 and closed.
pub fn read_request(stream: &mut impl Read) -> io::Result<Request> {
    let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());

    // Accumulate until the blank line that ends the head.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    let head_end = loop {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(malformed("request head too large"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(malformed("connection closed mid-head")),
            _ => head.push(byte[0]),
        }
        if head.ends_with(b"\r\n\r\n") {
            break head.len() - 4;
        }
        if head.ends_with(b"\n\n") {
            break head.len() - 2; // tolerate bare-LF clients (curl never, netcat maybe)
        }
    };
    let head_text = std::str::from_utf8(&head[..head_end])
        .map_err(|_| malformed("request head is not UTF-8"))?;
    let mut lines = head_text.lines();
    let request_line = lines.next().ok_or_else(|| malformed("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| malformed("missing request target"))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1") => {}
        _ => return Err(malformed("missing or unsupported HTTP version")),
    }
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| malformed("bad Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(malformed("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body text (always JSON in this service).
    pub body: String,
    /// Extra headers beyond the standard set (e.g. `Allow` on a 405).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, value: &Value) -> Response {
        Response {
            status,
            body: value.to_string_pretty(),
            headers: Vec::new(),
        }
    }

    /// Appends an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// A JSON error envelope: `{"error": {"status", "message"}}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            &lt_common::json!({
                "error": lt_common::json!({
                    "status": status,
                    "message": message,
                }),
            }),
        )
    }

    /// Serializes status line, headers and body to `stream`, closing the
    /// connection afterwards (the historical one-request contract).
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        self.write_connection(stream, false)
    }

    /// [`Response::write_to`] with an explicit connection disposition:
    /// `keep_alive` announces the connection stays open for more requests.
    pub fn write_connection(&self, stream: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(stream, "\r\n{}", self.body)?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Blocking HTTP client for the load generator, tests and examples: opens
/// a fresh connection, sends one request, returns `(status, body)`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let (status, _, body) = request_with(addr, method, path, &[], body)?;
    Ok((status, body))
}

/// Status code, response headers (names lower-cased) and body of one
/// client-side response.
pub type RawResponse = (u16, Vec<(String, String)>, String);

/// Like [`request`], but sends extra request headers (e.g. `X-Tenant`) and
/// returns the response headers (names lower-cased) alongside status and
/// body.
pub fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
) -> io::Result<RawResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "\r\n{body}")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

/// Upper bound on a response body the persistent client will accept.
const MAX_RESPONSE_BYTES: usize = 8 * 1024 * 1024;

/// Reads one `Content-Length`-delimited response — the framing that makes
/// connection reuse possible (an EOF-delimited read would wait out the
/// server's idle timeout on every call).
fn read_response(stream: &mut impl Read) -> io::Result<RawResponse> {
    let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(malformed("response head too large"));
        }
        match stream.read(&mut byte)? {
            0 => {
                // EOF here means the peer closed between our request and
                // its response — a stale keep-alive or a dying server.
                // `UnexpectedEof` (not `InvalidData`) so the reconnect
                // logic can tell a dead socket from a protocol violation.
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            _ => head.push(byte[0]),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head_text = std::str::from_utf8(&head[..head.len() - 4])
        .map_err(|_| malformed("response head is not UTF-8"))?;
    let mut lines = head_text.lines();
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| malformed("bad status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| malformed("bad Content-Length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_RESPONSE_BYTES {
        return Err(malformed("response body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| malformed("response body is not UTF-8"))?;
    Ok((status, headers, body))
}

/// Why a [`Connection::call_classified`] failed — the distinction the
/// shard-failover path needs.
#[derive(Debug)]
pub enum CallError {
    /// The TCP connect itself was refused or unreachable: the server
    /// process is down and **no request bytes were sent**. Safe to retry
    /// elsewhere (or later, through the coordinator) even for POSTs.
    Refused(io::Error),
    /// The transport or HTTP exchange failed after a connection existed —
    /// the request may have been partially processed; retrying is the
    /// caller's judgement call.
    Transport(io::Error),
}

impl CallError {
    /// The underlying I/O error.
    pub fn into_inner(self) -> io::Error {
        match self {
            CallError::Refused(err) | CallError::Transport(err) => err,
        }
    }

    /// True when the failure was a connect-level refusal (server down).
    pub fn is_refused(&self) -> bool {
        matches!(self, CallError::Refused(_))
    }
}

/// True for error kinds that mean a previously-good keep-alive socket is
/// simply dead (server restarted, idle-closed, or capped the connection) —
/// the cases where a one-shot reconnect-and-retry is sound.
fn is_stale_connection(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WriteZero
    )
}

/// True when a connect attempt failed because nothing is listening.
fn is_refused_connect(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::HostUnreachable
            | io::ErrorKind::NetworkUnreachable
            | io::ErrorKind::AddrNotAvailable
    )
}

/// A persistent client connection: sends `Connection: keep-alive` on every
/// request and reads responses by `Content-Length`, so one TCP connection
/// carries many calls. When the server closes it anyway — per-connection
/// request cap, idle timeout, restart — the next call transparently
/// reconnects once before giving up.
#[derive(Debug)]
pub struct Connection {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl Connection {
    /// A lazily-connected client for `addr` (the socket opens on first use).
    pub fn new(addr: SocketAddr) -> Connection {
        Connection { addr, stream: None }
    }

    fn stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(60)))?;
            stream.set_write_timeout(Some(Duration::from_secs(60)))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("stream just connected"))
    }

    /// Sends one request over the persistent connection and reads the
    /// response. Reconnects and retries once when the connection turned out
    /// to be dead (server-side cap or idle close between calls).
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> io::Result<RawResponse> {
        self.call_classified(method, path, headers, body)
            .map_err(CallError::into_inner)
    }

    /// [`Connection::call`] that reports *why* it failed: a connect-level
    /// refusal ([`CallError::Refused`] — the server is down, nothing was
    /// sent, failover is safe) versus a transport/HTTP failure
    /// ([`CallError::Transport`]).
    ///
    /// A reused keep-alive socket that turns out to be dead (reset, broken
    /// pipe, EOF before the status line) is retried once on a fresh
    /// connection before either classification is reported — but a
    /// protocol-level error (malformed response) is **not** retried: the
    /// request may have been processed, and blind resends would duplicate
    /// non-idempotent calls.
    pub fn call_classified(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> Result<RawResponse, CallError> {
        let reused = self.stream.is_some();
        match self.try_call(method, path, headers, body) {
            Ok(response) => Ok(response),
            Err(err) if reused && is_stale_connection(&err) => {
                self.stream = None;
                self.try_call(method, path, headers, body)
                    .map_err(|err| self.classify(err))
            }
            Err(err) => Err(self.classify(err)),
        }
    }

    fn classify(&self, err: io::Error) -> CallError {
        if is_refused_connect(&err) {
            CallError::Refused(err)
        } else {
            CallError::Transport(err)
        }
    }

    fn try_call(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> io::Result<RawResponse> {
        let addr = self.addr;
        let result = (|| {
            let stream = self.stream()?;
            let body = body.unwrap_or("");
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n",
                body.len()
            )?;
            for (name, value) in headers {
                write!(stream, "{name}: {value}\r\n")?;
            }
            write!(stream, "\r\n{body}")?;
            stream.flush()?;
            read_response(stream)
        })();
        match result {
            Ok((status, headers, body)) => {
                // The server says whether the connection survives this
                // response; believe it rather than discovering a dead
                // socket on the next call.
                let closing = headers
                    .iter()
                    .any(|(n, v)| n == "connection" && v.eq_ignore_ascii_case("close"));
                if closing {
                    self.stream = None;
                }
                Ok((status, headers, body))
            }
            Err(err) => {
                self.stream = None;
                Err(err)
            }
        }
    }
}

/// Splits a raw HTTP response into status code, headers and body.
fn parse_response(raw: &str) -> io::Result<RawResponse> {
    let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| malformed("no header/body separator in response"))?;
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| malformed("bad status line"))?;
    let headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok((status, headers, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw =
            b"POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: 13\r\n\r\n{\"seed\": 7}\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_str(), Some("{\"seed\": 7}\r\n"));
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /metrics HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_truncation_and_oversize() {
        assert!(read_request(&mut &b"not http at all"[..]).is_err());
        assert!(
            read_request(&mut &b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"[..]).is_err()
        );
        assert!(
            read_request(&mut &b"GET /x HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\n"[..])
                .is_err()
        );
        assert!(
            read_request(&mut &b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..]).is_err()
        );
        assert!(
            read_request(&mut &b"GET /x\r\n\r\n"[..]).is_err(),
            "missing version"
        );
        let huge = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert!(read_request(&mut &huge[..]).is_err());
    }

    #[test]
    fn response_serializes_with_content_length() {
        let resp = Response::json(200, &lt_common::json!({ "ok": true }));
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert!(text.contains(&format!("Content-Length: {}", body.len())));
        let (status, headers, parsed_body) = parse_response(&text).unwrap();
        assert_eq!(status, 200);
        assert_eq!(parsed_body, body);
        assert!(headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "close"));
    }

    #[test]
    fn extra_headers_are_written() {
        let resp = Response::error(405, "nope").with_header("Allow", "GET, POST");
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(head.contains("\r\nAllow: GET, POST"), "{text}");
        let (status, headers, _) = parse_response(&text).unwrap();
        assert_eq!(status, 405);
        assert!(headers
            .iter()
            .any(|(n, v)| n == "allow" && v == "GET, POST"));
    }

    #[test]
    fn keep_alive_is_explicit_opt_in() {
        let raw = b"GET /metrics HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        assert!(read_request(&mut &raw[..]).unwrap().wants_keep_alive());
        let raw = b"GET /metrics HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n";
        assert!(read_request(&mut &raw[..]).unwrap().wants_keep_alive());
        let raw = b"GET /metrics HTTP/1.1\r\n\r\n";
        assert!(!read_request(&mut &raw[..]).unwrap().wants_keep_alive());
        let raw = b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!read_request(&mut &raw[..]).unwrap().wants_keep_alive());
    }

    #[test]
    fn write_connection_announces_the_disposition() {
        let resp = Response::json(200, &lt_common::json!({ "ok": true }));
        let mut out = Vec::new();
        resp.write_connection(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        let (_, headers, _) = parse_response(&text).unwrap();
        assert!(headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "keep-alive"));
    }

    #[test]
    fn read_response_stops_at_content_length() {
        // Two pipelined responses on one stream: the reader must consume
        // exactly one, leaving the second for the next call.
        let mut out = Vec::new();
        Response::json(200, &lt_common::json!({ "first": 1 }))
            .write_connection(&mut out, true)
            .unwrap();
        Response::json(404, &lt_common::json!({ "second": 2 }))
            .write_connection(&mut out, false)
            .unwrap();
        let mut stream = &out[..];
        let (status, _, body) = read_response(&mut stream).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("first"));
        let (status, _, body) = read_response(&mut stream).unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("second"));
        assert!(read_response(&mut stream).is_err(), "stream exhausted");
    }

    #[test]
    fn error_envelope_carries_status_and_message() {
        let resp = Response::error(429, "queue full");
        assert_eq!(resp.status, 429);
        let doc = lt_common::json::parse(&resp.body).unwrap();
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("status").and_then(Value::as_i64), Some(429));
        assert_eq!(
            err.get("message").and_then(Value::as_str),
            Some("queue full")
        );
    }
}
