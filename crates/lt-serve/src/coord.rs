//! The coordinator: global admission, consistent-hash session routing,
//! shard health probing and fleet-wide `/metrics` aggregation.
//!
//! A sharded fabric is one coordinator process fronting N shard processes
//! (ordinary [`crate::server`] daemons with a shard id and their own WAL
//! dirs). The split of responsibilities:
//!
//! - **Coordinator** owns *global* admission — the fleet-wide per-tenant
//!   quota and total-backlog bound answer 429 + `Retry-After` here, before
//!   any shard sees the request — plus session-id allocation, placement
//!   (the [`HashRing`] keys on the id), health probing and metrics
//!   aggregation. It holds no tuning state: everything it tracks can be
//!   rebuilt by asking the shards.
//! - **Shards** own the sessions: WAL durability, the worker pool,
//!   tenant-fair scheduling, drift feeds. A shard answers exactly as a
//!   standalone server does; `POST /shard/adopt` is the only
//!   coordinator-specific entry point.
//!
//! Client-visible API is identical to a single shard — `POST /sessions`,
//! `GET /sessions/<id>[?wait_ms=...]`, feeds, config, cancel — so the load
//! generator and clients are topology-agnostic. Per-session calls proxy to
//! the owning shard; long-polls are held open end to end.
//!
//! **Failure semantics.** A probe failure (or a refused proxy connect)
//! marks the shard dead: *new* sessions route around it via
//! [`HashRing::owner_filtered`], its existing sessions answer 503 +
//! `Retry-After` until it returns, and `/metrics` reports the fleet as
//! degraded. A restarted shard replays its namespaced WAL, re-queues its
//! in-flight sessions itself (PR 7 recovery), and the next probe folds it
//! back in — placements never move, so recovered ids resolve exactly
//! where they were acknowledged. Acknowledged sessions are therefore never
//! lost to a single-shard crash; they are only unavailable while their
//! shard is down.
//!
//! **Determinism.** The tune is pure in `(request, seed)`; the ring only
//! decides *where* it runs. Same session id + seed ⇒ byte-identical
//! winner at any shard count or placement.

use crate::http::{read_request, request_with, Connection, Request, Response};
use crate::ring::HashRing;
use lt_common::json::Value;
use lt_common::obs::Snapshot;
use lt_common::{json, obs};
use std::collections::{HashMap, HashSet};
use std::io::{self};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default health-probe cadence (`LT_SHARD_PROBE_MS`).
pub const DEFAULT_PROBE_MS: u64 = 500;

/// One shard as the coordinator sees it.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Stable shard identity — the ring hashes it, `/shard/healthz`
    /// echoes it, metrics are labelled with it.
    pub id: u32,
    /// The shard server's bound address.
    pub addr: SocketAddr,
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// The shard fleet. Must be non-empty.
    pub shards: Vec<ShardSpec>,
    /// Virtual nodes per shard on the ring (`LT_SHARD_VNODES`, default 64).
    pub vnodes: usize,
    /// Health-probe cadence in ms (`LT_SHARD_PROBE_MS`, default 500).
    pub probe_ms: u64,
    /// Fleet-wide cap on one tenant's non-terminal sessions
    /// (`LT_SERVE_TENANT_CAP`, default 64) — the global half of the
    /// admission split; shards no longer need their own tenant caps when
    /// fronted by a coordinator.
    pub tenant_cap: usize,
    /// Fleet-wide cap on total non-terminal sessions (`LT_SERVE_QUEUE` ×
    /// shard count by default): the global backlog bound answering 429.
    pub max_active: usize,
}

impl CoordinatorConfig {
    /// Defaults for `shards`, with env overrides for the knobs.
    pub fn new(shards: Vec<ShardSpec>) -> CoordinatorConfig {
        let usize_env = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&v| v > 0)
        };
        let queue = usize_env("LT_SERVE_QUEUE").unwrap_or(64);
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            vnodes: HashRing::from_env_vnodes(),
            probe_ms: usize_env("LT_SHARD_PROBE_MS")
                .map(|v| v as u64)
                .unwrap_or(DEFAULT_PROBE_MS),
            tenant_cap: usize_env("LT_SERVE_TENANT_CAP").unwrap_or(64),
            max_active: queue * shards.len().max(1),
            shards,
        }
    }
}

struct CoordState {
    ring: HashRing,
    shards: Vec<ShardSpec>,
    /// Liveness per `shards` index, maintained by the probe loop and by
    /// refused proxy connects.
    alive: Vec<AtomicBool>,
    /// session id → index into `shards`. Placement is decided once at
    /// admission and never moves (the session's WAL lives there).
    placements: Mutex<HashMap<u64, usize>>,
    /// tenant → ids believed non-terminal; the admission ledger. Updated
    /// optimistically on submit, reconciled against shard `/sessions`
    /// listings by the probe loop, and trimmed when proxied responses
    /// show a terminal state.
    active: Mutex<HashMap<String, HashSet<u64>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    addr: SocketAddr,
    tenant_cap: usize,
    max_active: usize,
    probe_ms: u64,
}

impl CoordState {
    fn shard_index(&self, id: u32) -> Option<usize> {
        self.shards.iter().position(|s| s.id == id)
    }

    fn is_alive(&self, index: usize) -> bool {
        self.alive[index].load(Ordering::SeqCst)
    }

    fn mark_dead(&self, index: usize) {
        if self.alive[index].swap(false, Ordering::SeqCst) {
            obs::counter("coord.shard_deaths", 1);
        }
    }

    fn alive_count(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::SeqCst))
            .count()
    }

    /// Retry-After seconds that cover at least one probe round.
    fn retry_after(&self) -> String {
        self.probe_ms.div_ceil(1000).max(1).to_string()
    }

    /// Drops `id` from the admission ledger once it is seen terminal.
    fn observe_terminal(&self, id: u64) {
        let mut active = lock(&self.active);
        for ids in active.values_mut() {
            ids.remove(&id);
        }
        active.retain(|_, ids| !ids.is_empty());
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A running coordinator. Dropping it (or [`CoordinatorHandle::shutdown`])
/// stops the accept loop and the probe thread; shards are independent
/// processes and are *not* shut down — they belong to whoever spawned them.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    state: Arc<CoordState>,
    accept_thread: Option<JoinHandle<()>>,
    probe_thread: Option<JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until someone stops the coordinator (`POST /shutdown`),
    /// then joins the service threads. The daemon's main-thread park.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.probe_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting and joins the service threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.probe_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CoordinatorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds the coordinator, starts the probe loop, returns immediately.
pub fn start_coordinator(config: CoordinatorConfig) -> io::Result<CoordinatorHandle> {
    if config.shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "coordinator needs at least one shard",
        ));
    }
    obs::set_enabled(true);
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let ids: Vec<u32> = config.shards.iter().map(|s| s.id).collect();
    let state = Arc::new(CoordState {
        ring: HashRing::new(&ids, config.vnodes),
        alive: config
            .shards
            .iter()
            .map(|_| AtomicBool::new(true))
            .collect(),
        shards: config.shards,
        placements: Mutex::new(HashMap::new()),
        active: Mutex::new(HashMap::new()),
        next_id: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
        addr,
        tenant_cap: config.tenant_cap.max(1),
        max_active: config.max_active.max(1),
        probe_ms: config.probe_ms.max(10),
    });

    let probe_state = state.clone();
    let probe_thread = std::thread::Builder::new()
        .name("lt-coord-probe".to_string())
        .spawn(move || probe_loop(&probe_state))?;

    let accept_state = state.clone();
    let accept_thread = std::thread::Builder::new()
        .name("lt-coord-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_state = accept_state.clone();
                let _ = std::thread::Builder::new()
                    .name("lt-coord-conn".to_string())
                    .spawn(move || handle_connection(stream, &conn_state));
            }
        })?;

    Ok(CoordinatorHandle {
        addr,
        state,
        accept_thread: Some(accept_thread),
        probe_thread: Some(probe_thread),
    })
}

/// Requests served per coordinator connection before close (mirrors the
/// shard server's keep-alive bound).
const KEEPALIVE_MAX: usize = 1024;

fn handle_connection(mut stream: TcpStream, state: &CoordState) {
    // Proxied long-polls can hold a request open for up to the shard-side
    // wait cap; the idle timeout must exceed it.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    for served in 0..KEEPALIVE_MAX {
        let request = match read_request(&mut stream) {
            Ok(request) => request,
            Err(err) => {
                if served == 0 {
                    let _ = Response::error(400, &format!("malformed request: {err}"))
                        .write_to(&mut stream);
                }
                return;
            }
        };
        let keep = request.wants_keep_alive() && served + 1 < KEEPALIVE_MAX;
        let response = route(&request, state);
        if response.write_connection(&mut stream, keep).is_err() || !keep {
            return;
        }
    }
}

fn route(request: &Request, state: &CoordState) -> Response {
    obs::counter("coord.http_requests", 1);
    let path = request.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let method = request.method.as_str();
    match segments.as_slice() {
        ["sessions"] => match method {
            "POST" => submit_session(request, state),
            "GET" => list_sessions(state),
            _ => method_not_allowed(method, path, "GET, POST"),
        },
        ["sessions", id] | ["sessions", id, "queries"] | ["sessions", id, "config"] => {
            proxy_session_call(request, state, id)
        }
        ["metrics"] => match method {
            "GET" => metrics(state),
            _ => method_not_allowed(method, path, "GET"),
        },
        ["healthz"] => match method {
            "GET" => Response::json(
                200,
                &json!({
                    "ok": true,
                    "coordinator": true,
                    "shards_alive": state.alive_count() as u64,
                    "shards_total": state.shards.len() as u64,
                }),
            ),
            _ => method_not_allowed(method, path, "GET"),
        },
        ["shutdown"] => match method {
            "POST" => {
                state.shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(state.addr);
                Response::json(200, &json!({ "shutting_down": true }))
            }
            _ => method_not_allowed(method, path, "POST"),
        },
        _ => Response::error(404, &format!("no route for {path}")),
    }
}

fn method_not_allowed(method: &str, path: &str, allow: &'static str) -> Response {
    Response::error(
        405,
        &format!("method {method} not allowed for {path} (allow: {allow})"),
    )
    .with_header("Allow", allow)
}

/// `POST /sessions` at the coordinator: global admission, id allocation,
/// ring placement, then adoption on the owning shard.
fn submit_session(request: &Request, state: &CoordState) -> Response {
    if state.shutdown.load(Ordering::SeqCst) {
        return Response::error(503, "coordinator is shutting down");
    }
    let Some(body) = request.body_str() else {
        return Response::error(400, "body is not UTF-8");
    };
    let doc = match lt_common::json::parse(if body.trim().is_empty() { "{}" } else { body }) {
        Ok(doc) => doc,
        Err(err) => return Response::error(400, &format!("invalid JSON: {err}")),
    };
    let tenant = request
        .header("x-tenant")
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .unwrap_or("default")
        .to_string();

    // Global admission, under one ledger lock so racing submissions
    // cannot both slip under a quota.
    {
        let active = lock(&state.active);
        let total: usize = active.values().map(HashSet::len).sum();
        if total >= state.max_active {
            obs::counter("coord.backlog_rejected", 1);
            return Response::error(
                429,
                &format!("fleet backlog is full ({total} active sessions), retry later"),
            )
            .with_header("Retry-After", state.retry_after());
        }
        if active.get(&tenant).map_or(0, HashSet::len) >= state.tenant_cap {
            obs::counter("coord.tenant_rejected", 1);
            return Response::error(
                429,
                &format!(
                    "tenant {tenant:?} is at its fleet-wide cap ({}), retry later",
                    state.tenant_cap
                ),
            )
            .with_header("Retry-After", "30");
        }
    }

    let id = state.next_id.fetch_add(1, Ordering::Relaxed);
    let adopt_body = json!({
        "id": id,
        "tenant": tenant.clone(),
        "request": doc,
    })
    .to_string_pretty();

    // Place on the ring, skipping dead shards; a refused connect marks
    // the owner dead and retries once on the next live owner — the same
    // route-around the probe loop would apply a beat later.
    for _attempt in 0..2 {
        let Some(owner) = state.ring.owner_filtered(id, |s| {
            state.shard_index(s).is_some_and(|i| state.is_alive(i))
        }) else {
            obs::counter("coord.no_shards", 1);
            return Response::error(503, "no live shards, retry later")
                .with_header("Retry-After", state.retry_after());
        };
        let index = state
            .shard_index(owner)
            .expect("ring members are configured");
        let mut conn = Connection::new(state.shards[index].addr);
        match conn.call_classified("POST", "/shard/adopt", &[], Some(&adopt_body)) {
            Ok((status, _, resp_body)) => {
                if status == 202 {
                    lock(&state.placements).insert(id, index);
                    lock(&state.active).entry(tenant).or_default().insert(id);
                    obs::counter("coord.sessions_routed", 1);
                } else {
                    obs::counter("coord.sessions_rejected", 1);
                }
                return passthrough(status, resp_body);
            }
            Err(err) if err.is_refused() => {
                state.mark_dead(index);
                obs::counter("coord.adopt_failovers", 1);
                continue;
            }
            Err(err) => {
                obs::counter("coord.proxy_errors", 1);
                return Response::error(
                    502,
                    &format!(
                        "shard {owner} failed adopting session: {}",
                        err.into_inner()
                    ),
                );
            }
        }
    }
    Response::error(503, "shards are unavailable, retry later")
        .with_header("Retry-After", state.retry_after())
}

/// Proxies a per-session call (`GET`/`DELETE /sessions/<id>`, feeds,
/// config — query string included, so long-polls pass through) to the
/// shard owning the session.
fn proxy_session_call(request: &Request, state: &CoordState, id: &str) -> Response {
    let Ok(session_id) = id.parse::<u64>() else {
        return Response::error(400, "session id must be an integer");
    };
    let Some(index) = lock(&state.placements).get(&session_id).copied() else {
        return Response::error(404, &format!("no session {session_id}"));
    };
    if !state.is_alive(index) {
        obs::counter("coord.unavailable_sessions", 1);
        return Response::error(
            503,
            &format!(
                "shard {} owning session {session_id} is down; recovery pending",
                state.shards[index].id
            ),
        )
        .with_header("Retry-After", state.retry_after());
    }
    let body = request.body_str().map(str::to_string);
    let mut conn = Connection::new(state.shards[index].addr);
    match conn.call_classified(&request.method, &request.path, &[], body.as_deref()) {
        Ok((status, _, resp_body)) => {
            // Keep the admission ledger fresh: a proxied answer that shows
            // a terminal state retires the session from the quotas.
            if status == 200 {
                if let Ok(doc) = lt_common::json::parse(&resp_body) {
                    if let Some(s) = doc.get("state").and_then(Value::as_str) {
                        if matches!(s, "done" | "failed" | "cancelled") {
                            state.observe_terminal(session_id);
                        }
                    }
                }
            }
            passthrough(status, resp_body)
        }
        Err(err) if err.is_refused() => {
            state.mark_dead(index);
            Response::error(
                503,
                &format!(
                    "shard {} owning session {session_id} is down; recovery pending",
                    state.shards[index].id
                ),
            )
            .with_header("Retry-After", state.retry_after())
        }
        Err(err) => {
            obs::counter("coord.proxy_errors", 1);
            Response::error(502, &format!("shard proxy error: {}", err.into_inner()))
        }
    }
}

/// Re-emits a shard response verbatim (it is already a JSON body).
fn passthrough(status: u16, body: String) -> Response {
    Response {
        status,
        body,
        headers: Vec::new(),
    }
}

/// `GET /sessions`: the union of every live shard's session list,
/// id-ascending; dead shards' sessions are listed from the placement map
/// with state `"unavailable"`.
fn list_sessions(state: &CoordState) -> Response {
    let mut rows: Vec<(u64, Value)> = Vec::new();
    for (index, shard) in state.shards.iter().enumerate() {
        if !state.is_alive(index) {
            continue;
        }
        if let Ok((200, body)) = crate::http::request(shard.addr, "GET", "/sessions", None) {
            if let Ok(doc) = lt_common::json::parse(&body) {
                if let Some(sessions) = doc.get("sessions").and_then(Value::as_array) {
                    for s in sessions {
                        if let Some(id) = s.get("id").and_then(Value::as_i64) {
                            rows.push((id as u64, s.clone()));
                        }
                    }
                }
            }
        }
    }
    let placements = lock(&state.placements);
    for (&id, &index) in placements.iter() {
        if !state.is_alive(index) {
            rows.push((id, json!({ "id": id, "state": "unavailable" })));
        }
    }
    drop(placements);
    rows.sort_by_key(|(id, _)| *id);
    rows.dedup_by_key(|(id, _)| *id);
    let sessions: Vec<Value> = rows.into_iter().map(|(_, v)| v).collect();
    Response::json(200, &json!({ "sessions": Value::Array(sessions) }))
}

/// `GET /metrics`: per-shard documents (labelled) plus fleet totals
/// merged at the JSON level, and the degraded flag.
fn metrics(state: &CoordState) -> Response {
    let mut shard_docs: Vec<Value> = Vec::new();
    let mut merged_inputs: Vec<Value> = Vec::new();
    for (index, shard) in state.shards.iter().enumerate() {
        let alive = state.is_alive(index);
        let mut entry = vec![
            ("shard_id".to_string(), Value::Int(shard.id as i64)),
            ("alive".to_string(), Value::Bool(alive)),
        ];
        if alive {
            if let Ok((200, body)) = crate::http::request(shard.addr, "GET", "/metrics", None) {
                if let Ok(doc) = lt_common::json::parse(&body) {
                    merged_inputs.push(doc.clone());
                    entry.push(("metrics".to_string(), doc));
                }
            }
        }
        shard_docs.push(Value::Object(entry));
    }
    let alive = state.alive_count();
    let total = state.shards.len();
    let doc = json!({
        "version": 1,
        "coordinator": obs::snapshot().to_metrics_json(),
        "shards_alive": alive as u64,
        "shards_total": total as u64,
        "degraded": alive < total,
        "fleet": Snapshot::merge_metrics_json(&merged_inputs),
        "shards": Value::Array(shard_docs),
    });
    Response::json(200, &doc)
}

/// The probe loop: marks shards dead/alive from `/shard/healthz` and
/// reconciles the admission ledger against live shards' session lists.
fn probe_loop(state: &CoordState) {
    while !state.shutdown.load(Ordering::SeqCst) {
        for (index, shard) in state.shards.iter().enumerate() {
            let healthy = matches!(
                request_with(shard.addr, "GET", "/shard/healthz", &[], None),
                Ok((200, _, _))
            );
            let was = state.alive[index].swap(healthy, Ordering::SeqCst);
            if was && !healthy {
                obs::counter("coord.shard_deaths", 1);
                obs::counter("coord.probe_failures", 1);
            } else if !was && healthy {
                obs::counter("coord.shard_recoveries", 1);
            }
        }
        reconcile_active(state);
        // Sleep in small steps so shutdown is prompt even with slow probes.
        let mut remaining = state.probe_ms;
        while remaining > 0 && !state.shutdown.load(Ordering::SeqCst) {
            let step = remaining.min(50);
            std::thread::sleep(Duration::from_millis(step));
            remaining -= step;
        }
    }
}

/// Exact reconciliation of the admission ledger: ask every live shard for
/// its `(id, state)` list and retire ids that went terminal without a
/// client ever polling them. Ids on dead shards stay counted — their
/// sessions still exist and will resume on recovery.
fn reconcile_active(state: &CoordState) {
    let mut terminal: HashSet<u64> = HashSet::new();
    for (index, shard) in state.shards.iter().enumerate() {
        if !state.is_alive(index) {
            continue;
        }
        let Ok((200, body)) = crate::http::request(shard.addr, "GET", "/sessions", None) else {
            continue;
        };
        let Ok(doc) = lt_common::json::parse(&body) else {
            continue;
        };
        let Some(sessions) = doc.get("sessions").and_then(Value::as_array) else {
            continue;
        };
        for s in sessions {
            let id = s.get("id").and_then(Value::as_i64);
            let st = s.get("state").and_then(Value::as_str);
            if let (Some(id), Some(st)) = (id, st) {
                if matches!(st, "done" | "failed" | "cancelled") {
                    terminal.insert(id as u64);
                }
            }
        }
    }
    if terminal.is_empty() {
        return;
    }
    let mut active = lock(&state.active);
    for ids in active.values_mut() {
        ids.retain(|id| !terminal.contains(id));
    }
    active.retain(|_, ids| !ids.is_empty());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{start, ServerConfig};

    fn shard_config(shard_id: u32) -> ServerConfig {
        ServerConfig {
            workers: 1,
            shard_id: Some(shard_id),
            ..ServerConfig::default()
        }
    }

    fn fabric(n: u32) -> (Vec<crate::server::ServerHandle>, CoordinatorHandle) {
        let shards: Vec<_> = (0..n).map(|i| start(shard_config(i)).unwrap()).collect();
        let specs = shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardSpec {
                id: i as u32,
                addr: s.addr(),
            })
            .collect();
        let mut config = CoordinatorConfig::new(specs);
        config.probe_ms = 50;
        let coord = start_coordinator(config).unwrap();
        (shards, coord)
    }

    fn submit(addr: SocketAddr, seed: u64) -> u64 {
        let body = format!(r#"{{"benchmark": "tpch", "num_configs": 2, "seed": {seed}}}"#);
        let (status, body) = crate::http::request(addr, "POST", "/sessions", Some(&body)).unwrap();
        assert_eq!(status, 202, "{body}");
        lt_common::json::parse(&body)
            .unwrap()
            .get("id")
            .and_then(Value::as_i64)
            .unwrap() as u64
    }

    fn wait_done(addr: SocketAddr, id: u64) -> Value {
        for _ in 0..600 {
            let (status, body) =
                crate::http::request(addr, "GET", &format!("/sessions/{id}?wait_ms=100"), None)
                    .unwrap();
            assert_eq!(status, 200, "{body}");
            let doc = lt_common::json::parse(&body).unwrap();
            let state = doc
                .get("state")
                .and_then(Value::as_str)
                .unwrap()
                .to_string();
            if matches!(state.as_str(), "done" | "failed" | "cancelled") {
                return doc;
            }
        }
        panic!("session {id} never reached a terminal state");
    }

    #[test]
    fn coordinator_routes_sessions_and_winners_match_single_shard() {
        // Two-shard fabric: sessions land on both shards over enough ids,
        // and each seed's winner is byte-identical to a standalone run.
        let (_shards, coord) = fabric(2);
        // Seeds 9400.. are reserved for this test (fleet cache is
        // process-global in the test binary).
        let ids: Vec<(u64, u64)> = (0..4u64)
            .map(|i| (submit(coord.addr(), 9400 + i), 9400 + i))
            .collect();
        let mut winners = Vec::new();
        for (id, seed) in &ids {
            let doc = wait_done(coord.addr(), *id);
            assert_eq!(doc.get("state").and_then(Value::as_str), Some("done"));
            let (status, body) =
                crate::http::request(coord.addr(), "GET", &format!("/sessions/{id}/config"), None)
                    .unwrap();
            assert_eq!(status, 200, "{body}");
            let config = lt_common::json::parse(&body).unwrap();
            winners.push((
                *seed,
                config
                    .get("script")
                    .and_then(Value::as_str)
                    .unwrap()
                    .to_string(),
            ));
        }
        // Standalone reference: same seeds through one plain server.
        let standalone = start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        for (seed, fabric_script) in &winners {
            let id = submit(standalone.addr(), *seed);
            let doc = wait_done(standalone.addr(), id);
            assert_eq!(doc.get("state").and_then(Value::as_str), Some("done"));
            let (status, body) = crate::http::request(
                standalone.addr(),
                "GET",
                &format!("/sessions/{id}/config"),
                None,
            )
            .unwrap();
            assert_eq!(status, 200, "{body}");
            let config = lt_common::json::parse(&body).unwrap();
            assert_eq!(
                config.get("script").and_then(Value::as_str).unwrap(),
                fabric_script,
                "seed {seed}: fabric and standalone winners must be byte-identical"
            );
        }
    }

    #[test]
    fn coordinator_enforces_fleet_tenant_quota() {
        let (_shards, coord) = fabric(2);
        // Cap of 1 active session per tenant fleet-wide.
        let shards_specs: Vec<ShardSpec> = _shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardSpec {
                id: i as u32,
                addr: s.addr(),
            })
            .collect();
        let mut config = CoordinatorConfig::new(shards_specs);
        config.tenant_cap = 1;
        config.probe_ms = 5_000; // no reconciliation during the test window
        let capped = start_coordinator(config).unwrap();
        let body = r#"{"benchmark": "tpch", "num_configs": 2, "seed": 9420}"#;
        let (s1, _) = crate::http::request_with(
            capped.addr(),
            "POST",
            "/sessions",
            &[("X-Tenant", "t1")],
            Some(body),
        )
        .map(|(s, _, b)| (s, b))
        .unwrap();
        assert_eq!(s1, 202);
        let (s2, _, b2) = crate::http::request_with(
            capped.addr(),
            "POST",
            "/sessions",
            &[("X-Tenant", "t1")],
            Some(body),
        )
        .unwrap();
        assert_eq!(s2, 429, "{b2}");
        // A different tenant is unaffected.
        let (s3, _, b3) = crate::http::request_with(
            capped.addr(),
            "POST",
            "/sessions",
            &[("X-Tenant", "t2")],
            Some(body),
        )
        .unwrap();
        assert_eq!(s3, 202, "{b3}");
        drop(coord);
    }

    #[test]
    fn metrics_aggregates_across_shards_and_reports_degraded() {
        let (mut shards, coord) = fabric(2);
        let id = submit(coord.addr(), 9430);
        wait_done(coord.addr(), id);
        let (status, body) = crate::http::request(coord.addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let doc = lt_common::json::parse(&body).unwrap();
        assert_eq!(doc.get("degraded").and_then(Value::as_bool), Some(false));
        assert_eq!(doc.get("shards_alive").and_then(Value::as_i64), Some(2));
        assert_eq!(
            doc.get("shards")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
        // Fleet totals exist and carry summed counters.
        assert!(doc.get("fleet").and_then(|f| f.get("counters")).is_some());
        // Kill shard 1: the next probe flags the fleet degraded and new
        // sessions still get served by shard 0.
        shards.remove(1).shutdown();
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(20));
            let (_, body) = crate::http::request(coord.addr(), "GET", "/metrics", None).unwrap();
            let doc = lt_common::json::parse(&body).unwrap();
            if doc.get("degraded").and_then(Value::as_bool) == Some(true) {
                let id = submit(coord.addr(), 9431);
                let done = wait_done(coord.addr(), id);
                assert_eq!(done.get("state").and_then(Value::as_str), Some("done"));
                return;
            }
        }
        panic!("coordinator never reported the killed shard");
    }
}
