//! Edge-case suite for the durable session log: torn tails, duplicate
//! records, compaction equivalence, and cold starts. These drive the pure
//! replay/compaction layer and [`SessionLog`] directly; end-to-end crash
//! recovery through the HTTP service is `crash-bench`'s job.

use lt_common::json;
use lt_serve::wal::{compact_records, replay, Outcome, Replay, SessionLog, SessionRecord};
use lt_serve::SessionState;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lt_wal_test_{}_{}_{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn outcome(script: &str, best: f64) -> Outcome {
    Outcome {
        best_script: Some(script.to_string()),
        best_time: Some(best),
        default_time: Some(best * 2.0),
        tuning_time: Some(1.5),
        workload_tokens: Some(420),
        samples_done: 4,
        rounds_started: 2,
        prompt: format!("prompt for {script}"),
        trajectory: vec![(0.5, best * 2.0), (1.5, best)],
    }
}

fn created(id: u64) -> SessionRecord {
    SessionRecord::Created {
        id,
        tenant: "default".to_string(),
        request: json!({ "benchmark": "tpch-sf1", "seed": id as i64, "num_configs": 2 }),
    }
}

fn transition(id: u64, state: SessionState) -> SessionRecord {
    SessionRecord::Transition {
        id,
        state,
        error: None,
    }
}

/// Collapses a replay into a comparable form. Fleet publications compare
/// as final cache state (last entry per key), which is what both the raw
/// and the compacted log produce when re-inserted in order.
fn summarize(r: &Replay) -> (Vec<String>, Vec<(String, String)>) {
    let sessions = r.sessions.iter().map(|s| format!("{s:?}")).collect();
    let mut fleet: Vec<(String, String)> = Vec::new();
    for (key, entry) in &r.fleet {
        let key = key.to_string_pretty();
        let entry = entry.to_string_pretty();
        fleet.retain(|(k, _)| *k != key);
        fleet.push((key, entry));
    }
    fleet.sort();
    (sessions, fleet)
}

/// A representative history: two completed sessions (one with feeds and a
/// finished re-tune), one failed, one removed after admission, one still
/// queued, plus duplicate fleet publications.
fn scenario() -> Vec<SessionRecord> {
    let fleet_key = json!({ "benchmark": "tpch-sf1", "dbms": "postgres" });
    vec![
        created(1),
        transition(1, SessionState::Tuning),
        SessionRecord::Fleet {
            key: fleet_key.clone(),
            entry: json!({ "script": "SET a = 1;", "version": 1 }),
        },
        SessionRecord::Done {
            id: 1,
            retunes: 0,
            outcome: outcome("SET shared_buffers = '4GB';", 10.0),
        },
        created(2),
        transition(2, SessionState::Tuning),
        SessionRecord::Feed {
            id: 1,
            sqls: vec!["SELECT 1".to_string(), "SELECT 2".to_string()],
        },
        transition(1, SessionState::Retuning),
        SessionRecord::Done {
            id: 1,
            retunes: 1,
            outcome: outcome("SET work_mem = '64MB';", 8.0),
        },
        SessionRecord::Transition {
            id: 2,
            state: SessionState::Failed,
            error: Some("llm refused".to_string()),
        },
        created(3),
        SessionRecord::Removed { id: 3 },
        SessionRecord::Fleet {
            key: fleet_key,
            entry: json!({ "script": "SET a = 2;", "version": 2 }),
        },
        created(4),
    ]
}

#[test]
fn records_round_trip_through_json() {
    for record in scenario() {
        let doc = record.to_json();
        let back = SessionRecord::from_json(&doc).expect("round-trip");
        assert_eq!(record, back, "through {}", doc.to_string_pretty());
    }
}

#[test]
fn cold_start_missing_and_empty_log() {
    // Directory does not exist yet: open creates it and starts empty.
    let dir = fresh_dir("missing");
    let (log, records) = SessionLog::open(&dir).expect("open missing");
    assert!(records.is_empty());
    assert_eq!(log.records_in_file(), 0);
    drop(log);

    // A zero-byte log file (crash before the magic was written).
    let dir = fresh_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("sessions.wal"), b"").unwrap();
    let (_log, records) = SessionLog::open(&dir).expect("open empty");
    assert!(records.is_empty());
}

#[test]
fn appended_records_survive_reopen() {
    let dir = fresh_dir("reopen");
    let (log, records) = SessionLog::open(&dir).expect("open");
    assert!(records.is_empty());
    let written = scenario();
    for record in &written {
        log.append_sync(record);
    }
    assert_eq!(log.records_in_file(), written.len() as u64);
    drop(log);

    // Open always rewrites a compaction snapshot, so the reopened log is
    // the compacted history — replay-equivalent to what was appended.
    let (_log, records) = SessionLog::open(&dir).expect("reopen");
    assert_eq!(records, compact_records(&written));
    assert_eq!(summarize(&replay(&records)), summarize(&replay(&written)));
}

#[test]
fn torn_final_record_is_truncated_on_open() {
    let dir = fresh_dir("torn");
    let (log, _) = SessionLog::open(&dir).expect("open");
    let written = scenario();
    for record in &written {
        log.append_sync(record);
    }
    drop(log);

    // A crash mid-append leaves a frame header promising more bytes than
    // the file holds.
    let path = dir.join("sessions.wal");
    let clean_len = std::fs::metadata(&path).unwrap().len();
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&1024u32.to_le_bytes()).unwrap();
        f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
        f.write_all(b"partial record").unwrap();
    }
    assert!(std::fs::metadata(&path).unwrap().len() > clean_len);

    // Open truncates the tail, keeps every whole record (modulo the
    // compaction snapshot), and rewrites the file clean so the next
    // append does not land after garbage.
    let (log, records) = SessionLog::open(&dir).expect("reopen torn");
    assert_eq!(records, compact_records(&written));
    let compacted = records.len();
    log.append_sync(&created(9));
    drop(log);
    let (_log, records) = SessionLog::open(&dir).expect("reopen appended");
    assert_eq!(records.len(), compacted + 1);
    assert_eq!(records[records.len() - 1], created(9));
}

#[test]
fn corrupt_middle_record_drops_the_rest() {
    let dir = fresh_dir("corrupt");
    let (log, _) = SessionLog::open(&dir).expect("open");
    for record in scenario() {
        log.append_sync(&record);
    }
    drop(log);

    let path = dir.join("sessions.wal");
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    // The frame layer keeps exactly the records before the damaged one…
    let written = scenario();
    let surviving: Vec<SessionRecord> = lt_common::wal::read_log(&path)
        .expect("read corrupt")
        .records
        .iter()
        .filter_map(|p| {
            SessionRecord::from_json(&lt_common::json::parse(std::str::from_utf8(p).ok()?).ok()?)
        })
        .collect();
    assert!(
        !surviving.is_empty() && surviving.len() < written.len(),
        "corruption must drop a strict suffix, kept {}",
        surviving.len()
    );
    assert_eq!(surviving[..], written[..surviving.len()]);

    // …and the session log opens to the compacted form of that prefix.
    let (_log, records) = SessionLog::open(&dir).expect("reopen corrupt");
    assert_eq!(records, compact_records(&surviving));
}

#[test]
fn duplicate_and_illegal_transitions_are_idempotent() {
    let final_outcome = outcome("SET x = 1;", 5.0);
    let records = vec![
        created(7),
        // A crash between the batched `tuning` append and the fsynced
        // terminal record can replay `tuning` twice on the next run.
        transition(7, SessionState::Tuning),
        transition(7, SessionState::Tuning),
        SessionRecord::Done {
            id: 7,
            retunes: 0,
            outcome: final_outcome.clone(),
        },
        // Stale duplicates after completion must not regress the state or
        // double-apply the tune.
        transition(7, SessionState::Tuning),
        SessionRecord::Done {
            id: 7,
            retunes: 0,
            outcome: outcome("SET x = 2;", 4.0),
        },
        // A second `created` for a live id keeps the first.
        created(7),
    ];
    let replayed = replay(&records);
    assert_eq!(replayed.sessions.len(), 1);
    let s = &replayed.sessions[0];
    assert_eq!(s.state, SessionState::Done);
    assert!(!s.retuning_pending);
    assert_eq!(s.ops.len(), 1, "duplicate done must not re-apply");
    match &s.ops[0] {
        lt_serve::wal::ReplayOp::Complete { retunes, outcome } => {
            assert_eq!(*retunes, 0);
            assert_eq!(*outcome, final_outcome);
        }
        other => panic!("expected a completion, got {other:?}"),
    }
}

#[test]
fn interrupted_retune_is_flagged_exactly_once() {
    let records = vec![
        created(5),
        transition(5, SessionState::Tuning),
        SessionRecord::Done {
            id: 5,
            retunes: 0,
            outcome: outcome("SET a = 1;", 9.0),
        },
        transition(5, SessionState::Retuning),
        transition(5, SessionState::Retuning),
    ];
    let replayed = replay(&records);
    let s = &replayed.sessions[0];
    assert!(s.retuning_pending, "unfinished re-tune must be re-queued");
    assert_eq!(s.ops.len(), 1);

    // Once the re-tune's own `done` lands, the flag clears and the second
    // completion is applied exactly once.
    let mut finished = records;
    finished.push(SessionRecord::Done {
        id: 5,
        retunes: 1,
        outcome: outcome("SET a = 2;", 7.0),
    });
    let replayed = replay(&finished);
    let s = &replayed.sessions[0];
    assert!(!s.retuning_pending);
    assert_eq!(s.state, SessionState::Done);
    assert_eq!(s.ops.len(), 2);
}

#[test]
fn compaction_preserves_replay() {
    let records = scenario();
    let compacted = compact_records(&records);
    assert!(
        compacted.len() < records.len(),
        "compaction must drop something from {} records",
        records.len()
    );
    assert_eq!(summarize(&replay(&compacted)), summarize(&replay(&records)));

    // The removed session and the superseded fleet entry are gone.
    assert!(!compacted.iter().any(|r| r.id() == Some(3)));
    let fleet: Vec<_> = compacted
        .iter()
        .filter(|r| matches!(r, SessionRecord::Fleet { .. }))
        .collect();
    assert_eq!(fleet.len(), 1, "one fleet record per key after compaction");
}

#[test]
fn compaction_snapshot_plus_tail_replays_like_the_full_log() {
    let records = scenario();
    // A running compaction can snapshot at any record boundary; whatever
    // arrives afterwards is an ordinary tail. Every split point must fold
    // to the same state as the uncompacted history.
    let want = summarize(&replay(&records));
    for split in 0..=records.len() {
        let mut log = compact_records(&records[..split]);
        log.extend_from_slice(&records[split..]);
        assert_eq!(
            summarize(&replay(&log)),
            want,
            "split at record {split} diverged"
        );
    }
}

#[test]
fn compaction_is_idempotent() {
    let records = scenario();
    let once = compact_records(&records);
    let twice = compact_records(&once);
    assert_eq!(once, twice);
}
