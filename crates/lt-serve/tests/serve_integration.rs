//! End-to-end tests for the tuning service over real TCP loopback.
//!
//! The headline test is the determinism contract: the same 16 requests run
//! against a 1-worker server and a 4-worker server must yield byte-identical
//! per-seed best configuration scripts — worker scheduling must never leak
//! into tuning results.

use lt_common::json::{parse, Value};
use lt_serve::http::{request, request_with, Connection};
use lt_serve::load::{run_matrix, LoadOptions};
use lt_serve::{start, start_coordinator, CoordinatorConfig, ServerConfig, ShardSpec};
use lt_synth::{predicate_templates, Phase};
use lt_workloads::Benchmark;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn start_server(workers: usize, queue_depth: usize) -> lt_serve::ServerHandle {
    start(ServerConfig {
        workers,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn post_session(addr: SocketAddr, body: &str) -> (u16, Value) {
    let (status, response) = request(addr, "POST", "/sessions", Some(body)).expect("submit");
    (status, parse(&response).expect("response is JSON"))
}

fn session_state(addr: SocketAddr, id: i64) -> String {
    let (status, response) = request(addr, "GET", &format!("/sessions/{id}"), None).expect("poll");
    assert_eq!(status, 200);
    parse(&response)
        .ok()
        .and_then(|d| Some(d.get("state")?.as_str()?.to_string()))
        .expect("status document carries a state")
}

fn wait_terminal(addr: SocketAddr, id: i64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let state = session_state(addr, id);
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            return state;
        }
        assert!(Instant::now() < deadline, "session {id} stuck in {state}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// 16 concurrent requests, 1 worker vs 4 workers: zero failures and
/// byte-identical per-seed winning scripts.
#[test]
fn pool_size_does_not_change_results() {
    let opts = LoadOptions {
        clients: 16,
        num_configs: 2,
        ..LoadOptions::default()
    };
    let (serial, pooled, mismatched) = run_matrix(&opts).expect("matrix runs");
    assert_eq!(
        serial.failures(),
        0,
        "serial outcomes: {:?}",
        serial.outcomes
    );
    assert_eq!(
        pooled.failures(),
        0,
        "pooled outcomes: {:?}",
        pooled.outcomes
    );
    assert!(
        mismatched.is_empty(),
        "per-seed configs differ across pool sizes for seeds {mismatched:?}"
    );
    // The scripts are real configurations, not empty strings.
    for outcome in &serial.outcomes {
        let script = outcome.script.as_deref().unwrap();
        assert!(script.contains("SET"), "suspicious script: {script:?}");
    }
}

/// A full bounded queue answers 429 and the rejected session is not
/// registered; accepted sessions still finish.
#[test]
fn overload_returns_429_and_recovers() {
    let mut server = start_server(1, 1);
    let addr = server.addr();
    // 1 worker + queue depth 1: the third-plus rapid submit must overflow.
    let mut accepted = Vec::new();
    let mut rejected = 0;
    for seed in 0..8 {
        let (status, doc) = post_session(addr, &format!(r#"{{"seed": {seed}, "num_configs": 2}}"#));
        match status {
            202 => accepted.push(doc.get("id").and_then(Value::as_i64).unwrap()),
            429 => {
                rejected += 1;
                let message = doc
                    .get("error")
                    .and_then(|e| e.get("message"))
                    .and_then(Value::as_str)
                    .unwrap();
                assert!(message.contains("queue"), "unexpected 429 body: {message}");
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(rejected > 0, "queue of depth 1 never overflowed");
    assert!(!accepted.is_empty());
    for id in &accepted {
        assert_eq!(wait_terminal(addr, *id), "done");
    }
    // Rejected sessions must not appear in the listing.
    let (status, response) = request(addr, "GET", "/sessions", None).unwrap();
    assert_eq!(status, 200);
    let listed = parse(&response)
        .ok()
        .and_then(|d| Some(d.get("sessions")?.as_array()?.len()))
        .unwrap();
    assert_eq!(listed, accepted.len());
    server.shutdown();
}

/// DELETE cancels a queued session immediately and a running session
/// cooperatively; terminal sessions are left untouched.
#[test]
fn delete_cancels_queued_and_running_sessions() {
    let mut server = start_server(1, 16);
    let addr = server.addr();
    // Fill the single worker with a longer session, then queue another.
    let (status, doc) = post_session(addr, r#"{"seed": 1, "num_configs": 5}"#);
    assert_eq!(status, 202);
    let running = doc.get("id").and_then(Value::as_i64).unwrap();
    let (status, doc) = post_session(addr, r#"{"seed": 2, "num_configs": 2}"#);
    assert_eq!(status, 202);
    let queued = doc.get("id").and_then(Value::as_i64).unwrap();

    // The queued session dies instantly.
    let (status, _) = request(addr, "DELETE", &format!("/sessions/{queued}"), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(session_state(addr, queued), "cancelled");

    // The running session stops at its next interruption point.
    let (status, _) = request(addr, "DELETE", &format!("/sessions/{running}"), None).unwrap();
    assert_eq!(status, 200);
    let state = wait_terminal(addr, running);
    assert!(
        state == "cancelled" || state == "done",
        "cancel raced completion into {state}"
    );

    // Cancelling a terminal session is a no-op 200.
    let (status, doc_text) = request(addr, "DELETE", &format!("/sessions/{queued}"), None).unwrap();
    assert_eq!(status, 200);
    assert!(doc_text.contains("cancelled"));
    server.shutdown();
}

/// Malformed inputs come back as 4xx errors — none of them crash a worker,
/// and the server keeps tuning afterwards.
#[test]
fn malformed_requests_are_rejected_not_fatal() {
    let mut server = start_server(1, 16);
    let addr = server.addr();
    let bad_bodies = [
        ("{not json", "invalid JSON"),
        (r#"{"benchmark": "tpcc"}"#, "unknown benchmark"),
        (r#"{"num_configs": 0}"#, "num_configs"),
        // An absurd sample count must be a 400, not a worker pinned for
        // hours (or an aborting multi-petabyte allocation).
        (r#"{"num_configs": 1000000000000000}"#, "at most"),
        (r#"{"token_budget": 0}"#, "token_budget"),
        (r#"{"token_budget": 99999999999}"#, "at most"),
        (r#"{"temperature": -1}"#, "temperature"),
        (r#"{"dbms": "oracle"}"#, "unknown dbms"),
        (
            r#"{"params_only": true, "indexes_only": true}"#,
            "exclusive",
        ),
    ];
    for (body, needle) in bad_bodies {
        let (status, doc) = post_session(addr, body);
        assert_eq!(status, 400, "{body} should be rejected");
        let message = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .unwrap();
        assert!(
            message.contains(needle),
            "{body}: expected {needle:?} in {message:?}"
        );
    }

    // Unknown routes and methods.
    let (status, _) = request(addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/sessions/999", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/sessions/abc", None).unwrap();
    assert_eq!(status, 400);
    let (status, _) = request(addr, "PATCH", "/sessions", None).unwrap();
    assert_eq!(status, 405);
    // A wrong method on an existing path is 405 naming the allowed set,
    // not a misleading 404 — and the method check precedes the id lookup.
    for (method, path) in [
        ("POST", "/metrics"),
        ("DELETE", "/healthz"),
        ("GET", "/shutdown"),
        ("POST", "/sessions/999"),
        ("DELETE", "/sessions/999/config"),
        ("PUT", "/sessions"),
    ] {
        let (status, body) = request(addr, method, path, None).unwrap();
        assert_eq!(status, 405, "{method} {path}: {body}");
        assert!(body.contains("allow:"), "{method} {path}: {body}");
    }

    // An initial_config with no valid statement fails its own session only…
    let (status, doc) = post_session(
        addr,
        r#"{"initial_config": "DROP EVERYTHING;", "num_configs": 2}"#,
    );
    assert_eq!(status, 202);
    let poisoned = doc.get("id").and_then(Value::as_i64).unwrap();
    assert_eq!(wait_terminal(addr, poisoned), "failed");
    let (status, response) =
        request(addr, "GET", &format!("/sessions/{poisoned}/config"), None).unwrap();
    assert_eq!(status, 409, "failed session has no config: {response}");

    // …and the worker that ran it still serves the next session.
    let (status, doc) = post_session(addr, r#"{"seed": 3, "num_configs": 2}"#);
    assert_eq!(status, 202);
    let healthy = doc.get("id").and_then(Value::as_i64).unwrap();
    assert_eq!(wait_terminal(addr, healthy), "done");
    server.shutdown();
}

/// `/metrics` exposes live pipeline counters accumulated across sessions.
#[test]
fn keep_alive_carries_a_whole_session_on_one_connection() {
    let mut server = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        keepalive_max: 64,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();
    let mut conn = Connection::new(addr);

    // Submit, poll to done, fetch the config — every exchange over the
    // same TCP connection.
    let (status, headers, response) = conn
        .call(
            "POST",
            "/sessions",
            &[],
            Some(r#"{"seed": 9300, "num_configs": 2}"#),
        )
        .expect("submit over keep-alive");
    assert_eq!(status, 202, "{response}");
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "keep-alive"),
        "server honors the keep-alive request: {headers:?}"
    );
    let id = parse(&response)
        .ok()
        .and_then(|d| d.get("id")?.as_i64())
        .expect("session id");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, _, response) = conn
            .call("GET", &format!("/sessions/{id}"), &[], None)
            .expect("poll over keep-alive");
        assert_eq!(status, 200);
        let state = parse(&response)
            .ok()
            .and_then(|d| Some(d.get("state")?.as_str()?.to_string()))
            .expect("state");
        if state == "done" {
            break;
        }
        assert_ne!(state.as_str(), "failed", "{response}");
        assert!(Instant::now() < deadline, "session stuck");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (status, _, response) = conn
        .call("GET", &format!("/sessions/{id}/config"), &[], None)
        .expect("config over keep-alive");
    assert_eq!(status, 200, "{response}");

    // The server counted the reused exchanges.
    let (status, metrics) = request(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    let reused = parse(&metrics)
        .ok()
        .and_then(|d| d.get("counters")?.get("serve.keepalive_reuse")?.as_i64())
        .unwrap_or(0);
    assert!(reused > 0, "keep-alive reuse not counted: {metrics}");
    server.shutdown();
}

#[test]
fn keep_alive_connection_survives_the_request_cap() {
    let mut server = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        keepalive_max: 3, // force a server-side close every 3 requests
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let mut conn = Connection::new(server.addr());
    for i in 0..10 {
        let (status, _, response) = conn
            .call("GET", "/metrics", &[], None)
            .unwrap_or_else(|e| panic!("call {i} failed: {e}"));
        assert_eq!(status, 200, "{response}");
    }
    server.shutdown();
}

#[test]
fn metrics_expose_live_counters() {
    let mut server = start_server(2, 16);
    let addr = server.addr();
    let (status, doc) = post_session(addr, r#"{"seed": 7, "num_configs": 2}"#);
    assert_eq!(status, 202);
    let id = doc.get("id").and_then(Value::as_i64).unwrap();
    assert_eq!(wait_terminal(addr, id), "done");

    let (status, response) = request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let doc = parse(&response).expect("metrics are JSON");
    let counters = doc.get("counters").expect("counters object");
    let counter = |name: &str| counters.get(name).and_then(Value::as_i64).unwrap_or(0);
    // Serving-layer counters…
    assert!(counter("serve.sessions_accepted") >= 1);
    assert!(counter("serve.sessions_done") >= 1);
    assert!(counter("serve.http_requests") >= 2);
    // …and pipeline counters flowing through the shared obs registry.
    assert!(counter("llm.prompt_tokens") > 0, "metrics: {response}");
    assert!(
        counter("dbms.plan_cache.hit") + counter("dbms.plan_cache.miss") > 0,
        "metrics: {response}"
    );
    // Session-state breakdown rides along.
    let done = doc
        .get("sessions")
        .and_then(|s| s.get("done"))
        .and_then(Value::as_i64)
        .unwrap();
    assert!(done >= 1);
    // The event log must NOT be in the document (it grows without bound).
    assert!(doc.get("events").is_none());
    server.shutdown();
}

/// `POST /shutdown` alone stops the accept loop: the route pokes the
/// listener, so `wait()` returns without any further connection arriving
/// (the daemon's documented stop procedure).
#[test]
fn http_shutdown_stops_the_accept_loop() {
    let mut server = start_server(1, 4);
    let addr = server.addr();
    let (status, body) = request(addr, "POST", "/shutdown", None).expect("shutdown request");
    assert_eq!(status, 200);
    assert!(body.contains("shutting_down"), "{body}");
    // Hangs here (and the test times out) if /shutdown only set the flag.
    server.wait();
    assert!(
        request(addr, "GET", "/healthz", None).is_err(),
        "listener still accepting after shutdown"
    );
    server.shutdown();
}

/// Connections above `max_connections` are refused with 503 before any
/// thread is spawned, and the slot frees once a connection closes.
#[test]
fn connection_cap_answers_503_and_recovers() {
    let mut server = start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        max_connections: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();

    // An idle client holds the single connection slot (its thread sits in
    // the read timeout)…
    let held = std::net::TcpStream::connect(addr).expect("hold a connection");
    // …so further connections are turned away at the accept loop. The 503
    // write can race the rejected client's own request write (reset), so
    // poll until a clean 503 is observed.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match request(addr, "GET", "/healthz", None) {
            Ok((503, body)) => {
                assert!(body.contains("too many connections"), "{body}");
                break;
            }
            Ok((200, _)) | Err(_) => {} // holder not counted yet, or write race
            Ok((status, body)) => panic!("unexpected {status}: {body}"),
        }
        assert!(Instant::now() < deadline, "cap never produced a 503");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Releasing the held connection frees the slot and service resumes.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok((200, _)) = request(addr, "GET", "/healthz", None) {
            break;
        }
        assert!(Instant::now() < deadline, "connection slot never freed");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

/// Builds a `POST /sessions/<id>/queries` body from SQL strings.
fn feed_body(sqls: &[String]) -> String {
    let queries: Vec<Value> = sqls.iter().map(|s| Value::String(s.clone())).collect();
    Value::Object(vec![("queries".to_string(), Value::Array(queries))]).to_string_pretty()
}

/// Per-tenant quotas: a tenant at its cap gets 429 + `Retry-After` while
/// other tenants (and the same tenant after its sessions finish) are still
/// admitted.
#[test]
fn tenant_quota_answers_429_with_retry_after() {
    let mut server = start(ServerConfig {
        workers: 1,
        queue_depth: 16,
        tenant_cap: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();

    // A default-tenant session occupies the single worker, so the acme
    // session below stays queued (non-terminal) while we probe the quota.
    let (status, doc) = post_session(addr, r#"{"seed": 1, "num_configs": 64}"#);
    assert_eq!(status, 202);
    let blocker = doc.get("id").and_then(Value::as_i64).unwrap();

    let acme = [("X-Tenant", "acme")];
    let (status, _, body) = request_with(
        addr,
        "POST",
        "/sessions",
        &acme,
        Some(r#"{"seed": 2, "num_configs": 2}"#),
    )
    .unwrap();
    assert_eq!(status, 202, "{body}");
    let queued = parse(&body)
        .ok()
        .and_then(|d| d.get("id")?.as_i64())
        .unwrap();

    // acme is at its cap of 1 → 429 with a Retry-After hint…
    let (status, headers, body) = request_with(
        addr,
        "POST",
        "/sessions",
        &acme,
        Some(r#"{"seed": 3, "num_configs": 2}"#),
    )
    .unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(
        headers.iter().any(|(n, _)| n == "retry-after"),
        "429 without Retry-After: {headers:?}"
    );
    assert!(body.contains("acme"), "{body}");

    // …while a different tenant is admitted past acme's quota.
    let (status, _, body) = request_with(
        addr,
        "POST",
        "/sessions",
        &[("X-Tenant", "other")],
        Some(r#"{"seed": 4, "num_configs": 2}"#),
    )
    .unwrap();
    assert_eq!(status, 202, "{body}");

    // Once acme's session reaches a terminal state, the slot frees.
    assert_eq!(wait_terminal(addr, queued), "done");
    let (status, _, body) = request_with(
        addr,
        "POST",
        "/sessions",
        &acme,
        Some(r#"{"seed": 5, "num_configs": 2}"#),
    )
    .unwrap();
    assert_eq!(status, 202, "{body}");

    // The session status names its tenant.
    let (status, response) = request(addr, "GET", &format!("/sessions/{queued}"), None).unwrap();
    assert_eq!(status, 200);
    let tenant = parse(&response)
        .ok()
        .and_then(|d| Some(d.get("tenant")?.as_str()?.to_string()))
        .unwrap();
    assert_eq!(tenant, "acme");
    let _ = blocker;
    server.shutdown();
}

/// The full drift loop over HTTP: tune, feed in-distribution queries (no
/// alarm), feed a shifted batch (alarm), auto-re-tune back to `done` with
/// the drift status reflecting the event and the re-tune.
#[test]
fn query_feed_detects_drift_and_auto_retunes() {
    let mut server = start_server(2, 16);
    let addr = server.addr();
    let (status, doc) = post_session(
        addr,
        r#"{"seed": 5, "num_configs": 2, "auto_retune": true,
            "drift": {"window": 16, "stride": 4, "confirm": 2, "cooldown": 32}}"#,
    );
    assert_eq!(status, 202);
    let id = doc.get("id").and_then(Value::as_i64).unwrap();
    assert_eq!(wait_terminal(addr, id), "done");

    // Feeding the workload the session was tuned for must not alarm.
    let tpch: Vec<String> = Benchmark::TpchSf1
        .load()
        .queries
        .iter()
        .map(|q| q.sql.clone())
        .collect();
    let (status, response) = request(
        addr,
        "POST",
        &format!("/sessions/{id}/queries"),
        Some(&feed_body(&tpch)),
    )
    .unwrap();
    assert_eq!(status, 200, "{response}");
    let doc = parse(&response).unwrap();
    assert_eq!(
        doc.get("events").and_then(Value::as_array).unwrap().len(),
        0,
        "in-distribution feed raised a false alarm: {response}"
    );
    assert_eq!(doc.get("retune").and_then(Value::as_bool), Some(false));

    // A shifted batch (the post-shift predicate templates, repeated) must
    // alarm and kick the auto-re-tune.
    let templates: Vec<String> = predicate_templates(Phase::After)
        .into_iter()
        .map(|(_, sql)| sql)
        .collect();
    let shifted: Vec<String> = std::iter::repeat_with(|| templates.clone())
        .take(16)
        .flatten()
        .collect();
    let (status, response) = request(
        addr,
        "POST",
        &format!("/sessions/{id}/queries"),
        Some(&feed_body(&shifted)),
    )
    .unwrap();
    assert_eq!(status, 200, "{response}");
    let doc = parse(&response).unwrap();
    assert!(
        !doc.get("events")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty(),
        "shifted feed never alarmed: {response}"
    );
    assert_eq!(
        doc.get("retune").and_then(Value::as_bool),
        Some(true),
        "{response}"
    );

    // The re-tune completes and the session returns to `done` with the
    // drift status reflecting what happened.
    let deadline = Instant::now() + Duration::from_secs(120);
    let status_doc = loop {
        let (status, response) = request(addr, "GET", &format!("/sessions/{id}"), None).unwrap();
        assert_eq!(status, 200);
        let doc = parse(&response).unwrap();
        let state = doc
            .get("state")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        let retunes = doc
            .get("drift")
            .and_then(|d| d.get("retunes"))
            .and_then(Value::as_i64)
            .unwrap_or(0);
        let last_error = doc
            .get("drift")
            .and_then(|d| d.get("last_error"))
            .and_then(Value::as_str)
            .map(str::to_string);
        if state == "done" && retunes >= 1 {
            break doc;
        }
        assert!(
            last_error.is_none(),
            "re-tune failed instead of completing: {last_error:?}"
        );
        assert!(Instant::now() < deadline, "re-tune never completed");
        std::thread::sleep(Duration::from_millis(10));
    };
    let drift = status_doc.get("drift").unwrap();
    assert!(
        drift
            .get("queries_observed")
            .and_then(Value::as_i64)
            .unwrap()
            > 0
    );
    assert!(!drift
        .get("events")
        .and_then(Value::as_array)
        .unwrap()
        .is_empty());

    // The config endpoint serves the (re-tuned) winner.
    let (status, response) = request(addr, "GET", &format!("/sessions/{id}/config"), None).unwrap();
    assert_eq!(status, 200);
    assert!(response.contains("SET"), "{response}");

    // Feed guards: unparseable SQL is 400 and changes nothing; a session
    // without serving state (failed) is 409.
    let (status, response) = request(
        addr,
        "POST",
        &format!("/sessions/{id}/queries"),
        Some(&feed_body(&["SELECT * FROM no_such_table".to_string()])),
    )
    .unwrap();
    assert_eq!(status, 400, "{response}");
    let (status, _) = request(
        addr,
        "POST",
        &format!("/sessions/{id}/queries"),
        Some(r#"{"queries": []}"#),
    )
    .unwrap();
    assert_eq!(status, 400);
    let (status, doc) = post_session(
        addr,
        r#"{"initial_config": "DROP EVERYTHING;", "num_configs": 2}"#,
    );
    assert_eq!(status, 202);
    let failed = doc.get("id").and_then(Value::as_i64).unwrap();
    assert_eq!(wait_terminal(addr, failed), "failed");
    let (status, response) = request(
        addr,
        "POST",
        &format!("/sessions/{failed}/queries"),
        Some(&feed_body(&tpch[..1])),
    )
    .unwrap();
    assert_eq!(status, 409, "{response}");
    server.shutdown();
}

/// A `"spec"` feed body synthesizes the batch server-side via `lt-synth`
/// and runs it through the same validation/execution path as literal
/// queries — both directly against a shard and proxied through the
/// coordinator. Malformed and ambiguous bodies are 400 without executing
/// anything, and after a feed the per-detector drift scores surface as
/// `drift.*` gauges in `/metrics`.
#[test]
fn spec_feed_synthesizes_server_side_and_proxies_through_the_coordinator() {
    let shard = start(ServerConfig {
        workers: 2,
        shard_id: Some(0),
        ..ServerConfig::default()
    })
    .expect("bind shard");
    let mut config = CoordinatorConfig::new(vec![ShardSpec {
        id: 0,
        addr: shard.addr(),
    }]);
    config.probe_ms = 50;
    let mut coord = start_coordinator(config).expect("bind coordinator");
    let addr = coord.addr();

    let (status, doc) = post_session(
        addr,
        r#"{"seed": 8700, "num_configs": 2,
            "drift": {"window": 16, "stride": 4, "confirm": 2, "cooldown": 32}}"#,
    );
    assert_eq!(status, 202);
    let id = doc.get("id").and_then(Value::as_i64).unwrap();
    assert_eq!(wait_terminal(addr, id), "done");

    // Declarative feed through the coordinator proxy: the shard expands
    // the spec into 24 catalog-valid queries and executes them all.
    let spec_body = r#"{"spec": {"benchmark": "tpch", "queries": 24, "seed": 7}}"#;
    let (status, response) = request(
        addr,
        "POST",
        &format!("/sessions/{id}/queries"),
        Some(spec_body),
    )
    .unwrap();
    assert_eq!(status, 200, "{response}");
    let doc = parse(&response).unwrap();
    assert_eq!(
        doc.get("executed").and_then(Value::as_i64),
        Some(24),
        "{response}"
    );

    // The same spec replayed directly against the shard is deterministic:
    // it executes the same 24 queries again.
    let (status, response) = request(
        shard.addr(),
        "POST",
        &format!("/sessions/{id}/queries"),
        Some(spec_body),
    )
    .unwrap();
    assert_eq!(status, 200, "{response}");

    // Guards: ambiguous body, unknown spec field, out-of-range count —
    // all 400, nothing executed.
    for bad in [
        r#"{"queries": ["select count(*) from nation"], "spec": {"queries": 2}}"#,
        r#"{"spec": {"no_such_field": 1}}"#,
        r#"{"spec": {"queries": 100000}}"#,
        r#"{"spec": {"benchmark": "no-such-benchmark"}}"#,
    ] {
        let (status, response) =
            request(addr, "POST", &format!("/sessions/{id}/queries"), Some(bad)).unwrap();
        assert_eq!(status, 400, "body {bad} -> {response}");
    }

    // The drift monitor ran windowed evaluations during the feeds, so the
    // per-detector scores are live gauges in /metrics.
    let (status, response) = request(shard.addr(), "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    for gauge in ["drift.jsd", "drift.ewma_hit_rate", "drift.page_hinkley"] {
        assert!(response.contains(gauge), "missing {gauge} in {response}");
    }

    coord.shutdown();
}

/// Graceful shutdown drains accepted work: sessions queued before
/// `POST /shutdown` still reach a terminal state.
#[test]
fn shutdown_drains_inflight_sessions() {
    let mut server = start_server(1, 16);
    let addr = server.addr();
    let mut ids = Vec::new();
    for seed in 0..3 {
        let (status, doc) = post_session(addr, &format!(r#"{{"seed": {seed}, "num_configs": 2}}"#));
        assert_eq!(status, 202);
        ids.push(doc.get("id").and_then(Value::as_i64).unwrap());
    }
    // shutdown() joins the pool only after the queue drains, so returning
    // at all proves the accepted sessions ran; afterwards the port is dead.
    server.shutdown();
    assert!(request(addr, "GET", "/healthz", None).is_err());
    let _ = ids;
}
