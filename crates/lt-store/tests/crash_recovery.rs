//! Crash-recovery tests for the store's redo log.
//!
//! The parent test re-executes this test binary as a child with
//! `LT_STORE_CRASH_CHILD=1` and `LT_WAL_CRASH_AT=<n>` set: the child
//! bulk-loads a heap through a tiny buffer pool (so dirty write-backs — and
//! therefore redo appends — start early) and the WAL layer `abort()`s the
//! process at the n-th page image, optionally leaving a torn half-frame
//! (`LT_WAL_CRASH_TORN=1`). The parent then simulates the torn *data* write
//! the redo rule exists for — scribbling garbage over the page whose image
//! was logged last — runs [`lt_store::redo::recover`], and asserts the
//! store comes back checksum-clean with the logged image restored.

use lt_common::wal::read_frames;
use lt_store::heap::{write_value, Heap, Schema};
use lt_store::page::{self, PAGE_SIZE};
use lt_store::redo::{read_page_direct, recover};
use lt_store::BufferPool;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Frames small enough that the ~18-page load evicts (and logs) from early
/// on — every crash point in the sweep is reachable mid-load.
const CHILD_POOL_FRAMES: usize = 8;
const CHILD_ROWS: u64 = 4_000;

fn child_dir() -> Option<PathBuf> {
    if std::env::var("LT_STORE_CRASH_CHILD").is_ok() {
        Some(PathBuf::from(std::env::var("LT_CRASH_DIR").unwrap()))
    } else {
        None
    }
}

/// The child workload. As a plain `#[test]` it is a no-op; the parent runs
/// it by name with the crash env set, and it aborts inside `Heap::build`.
#[test]
fn child_workload() {
    let Some(dir) = child_dir() else { return };
    let mut pool = BufferPool::open(
        &dir.join("data.pages"),
        &dir.join("redo.wal"),
        CHILD_POOL_FRAMES,
    )
    .unwrap();
    let mut c = lt_dbms::Catalog::new();
    c.add_table("t", CHILD_ROWS)
        .primary_key("t_key", 8)
        .column("t_val", 8, 100.0)
        .column("t_pad", 16, 10.0)
        .finish();
    let table = c.table_by_name("t").unwrap();
    let schema = Schema::of_table(&c, table);
    Heap::build(&mut pool, table, schema, CHILD_ROWS, |i, row| {
        write_value(&mut row[0..8], i);
        write_value(&mut row[8..16], i.wrapping_mul(3));
    })
    .unwrap();
    pool.flush().unwrap();
    // Only reached when LT_WAL_CRASH_AT exceeds the workload's appends —
    // a mis-sized sweep, which the parent detects via the clean exit.
}

fn spawn_child(dir: &Path, crash_at: u64, torn: bool) {
    let exe = std::env::current_exe().unwrap();
    let status = Command::new(exe)
        .args(["child_workload", "--exact", "--nocapture"])
        .env("LT_STORE_CRASH_CHILD", "1")
        .env("LT_CRASH_DIR", dir)
        .env("LT_WAL_CRASH_AT", crash_at.to_string())
        .env("LT_WAL_CRASH_TORN", if torn { "1" } else { "0" })
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap();
    assert!(
        !status.success(),
        "child must abort at crash point {crash_at}, not exit cleanly"
    );
}

/// Every non-hole page of the recovered data file must verify; holes (pages
/// allocated but never flushed before the crash) stay all-zero.
fn assert_checksum_clean(data: &Path) {
    let bytes = std::fs::read(data).unwrap();
    assert_eq!(bytes.len() % PAGE_SIZE, 0, "data file ends on a boundary");
    for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
        if chunk.iter().all(|&b| b == 0) {
            continue;
        }
        assert!(
            page::verify(chunk),
            "page {i} fails checksum after recovery"
        );
    }
}

fn run_crash_point(crash_at: u64, torn: bool) {
    let dir = std::env::temp_dir().join(format!(
        "lt_store_crash_{crash_at}_{torn}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    spawn_child(&dir, crash_at, torn);

    let redo = dir.join("redo.wal");
    let data = dir.join("data.pages");

    // Exactly the acknowledged frames survive; a torn tail is dropped.
    let frames: Vec<Vec<u8>> = read_frames(&redo).unwrap().map_while(|f| f.ok()).collect();
    assert_eq!(
        frames.len() as u64,
        crash_at,
        "intact frame count at crash point {crash_at} (torn={torn})"
    );

    // Simulate the torn data write the redo rule protects against: the last
    // logged image's page may or may not have reached the data file —
    // clobber it either way.
    let last = frames.last().unwrap();
    let page_no = u64::from_le_bytes(last[1..9].try_into().unwrap());
    let image = &last[9..];
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&data)
            .unwrap();
        f.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64)).unwrap();
        f.write_all(&vec![0xAA; PAGE_SIZE]).unwrap();
    }

    let applied = recover(&redo, &data).unwrap();
    assert_eq!(applied, crash_at, "every intact image replays");
    let got = page::verify(&read_page_direct(&data, page_no).unwrap());
    assert!(got, "clobbered page {page_no} repaired by redo");
    assert_eq!(
        read_page_direct(&data, page_no).unwrap(),
        image,
        "recovered page equals the logged after-image"
    );
    assert_checksum_clean(&data);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_after_early_crash() {
    run_crash_point(2, false);
}

#[test]
fn recovery_after_mid_load_crash() {
    run_crash_point(5, false);
}

#[test]
fn recovery_after_late_crash_with_torn_tail() {
    run_crash_point(9, true);
}
