//! Seeded property suite: the on-disk B+tree differential-tested against
//! `std::collections::BTreeSet<(key, rid)>` as the reference model.
//!
//! Each seed drives ≥10k randomized operations (inserts with heavy key
//! duplication, deletes of both present and absent entries, point probes,
//! bounded range scans) through a deliberately tiny buffer pool, so every
//! run also exercises page eviction, redo logging and checksum round-trips
//! underneath the tree.

use lt_store::btree::BTree;
use lt_store::BufferPool;
use std::collections::BTreeSet;
use std::path::PathBuf;

const OPS_PER_SEED: u64 = 12_000;
/// Small key domain → long duplicate runs within single keys.
const KEY_DOMAIN: u64 = 1_500;
const RID_DOMAIN: u64 = 4_000;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lt_store_prop_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn check_range(
    tree: &BTree,
    pool: &mut BufferPool,
    model: &BTreeSet<(u64, u64)>,
    lo: u64,
    hi: u64,
) {
    let mut got = Vec::new();
    tree.range_scan(pool, lo, hi, |k, r| got.push((k, r)))
        .unwrap();
    let want: Vec<(u64, u64)> = model.range((lo, 0)..=(hi, u64::MAX)).copied().collect();
    assert_eq!(got, want, "range [{lo}, {hi}] diverged from the model");
}

fn run_seed(seed: u64) {
    let dir = tmpdir(&seed.to_string());
    // 24 frames is far below the tree's page count at peak: evictions are
    // constant, so the model comparison also covers disk round-trips.
    let mut pool = BufferPool::open(&dir.join("data.pages"), &dir.join("redo.wal"), 24).unwrap();
    let mut tree = BTree::create(&mut pool).unwrap();
    let mut model: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut rng = lt_common::seeded_rng(seed);
    for op in 0..OPS_PER_SEED {
        match rng.next_u64() % 100 {
            // 65%: insert (idempotent on duplicates, like the model).
            0..=64 => {
                let k = rng.next_u64() % KEY_DOMAIN;
                let r = rng.next_u64() % RID_DOMAIN;
                tree.insert(&mut pool, k, r).unwrap();
                model.insert((k, r));
            }
            // 20%: delete — half target a known-present entry, half a
            // random (mostly absent) one; return values must agree.
            65..=84 => {
                let (k, r) = if rng.next_u64().is_multiple_of(2) && !model.is_empty() {
                    let idx = (rng.next_u64() % model.len() as u64) as usize;
                    *model.iter().nth(idx).unwrap()
                } else {
                    (rng.next_u64() % KEY_DOMAIN, rng.next_u64() % RID_DOMAIN)
                };
                let existed = tree.delete(&mut pool, k, r).unwrap();
                assert_eq!(existed, model.remove(&(k, r)), "delete({k},{r}) verdict");
            }
            // 10%: point probe.
            85..=94 => {
                let k = rng.next_u64() % KEY_DOMAIN;
                let got = tree.probe(&mut pool, k).unwrap();
                let want: Vec<u64> = model
                    .range((k, 0)..=(k, u64::MAX))
                    .map(|&(_, r)| r)
                    .collect();
                assert_eq!(got, want, "probe({k}) at op {op}");
            }
            // 5%: bounded range scan.
            _ => {
                let a = rng.next_u64() % KEY_DOMAIN;
                let b = rng.next_u64() % KEY_DOMAIN;
                check_range(&tree, &mut pool, &model, a.min(b), a.max(b));
            }
        }
        assert_eq!(tree.entries, model.len() as u64, "entry count at op {op}");
    }
    // Full sweep at the end: exact content + order equality.
    check_range(&tree, &mut pool, &model, 0, u64::MAX);
    assert!(tree.height >= 1, "workload must have split the root");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn differential_seed_11() {
    run_seed(11);
}

#[test]
fn differential_seed_42() {
    run_seed(42);
}

#[test]
fn differential_seed_1337() {
    run_seed(1337);
}

#[test]
fn differential_seed_99991() {
    run_seed(99991);
}
