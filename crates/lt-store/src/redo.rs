//! Physical redo logging on the shared WAL frame layer.
//!
//! The buffer pool follows the write-ahead rule: before a dirty page is
//! written back to the data file, its full after-image is appended to
//! `redo.wal` (one frame per image, [`lt_common::wal`] framing with
//! per-frame crc32). Recovery streams the log with
//! [`lt_common::wal::read_frames`] — torn tails from a crash are detected
//! and dropped by the frame layer — and replays every intact image over the
//! data file, which repairs torn *data* pages. A checkpoint (clean
//! shutdown, or after a bulk load) truncates the log back to its header.
//!
//! Crash injection: the writer honours `LT_WAL_CRASH_AT` /
//! `LT_WAL_CRASH_TORN` via [`lt_common::wal::WalOptions::from_env`], so the
//! recovery tests can kill a child process mid-load at a chosen append.

use crate::page::PAGE_SIZE;
use lt_common::obs;
use lt_common::wal::{read_frames, rewrite_log, LogWriter, WalOptions};
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Redo record: one full page after-image.
const TAG_PAGE_IMAGE: u8 = 1;

/// Appends page after-images to the store's redo log.
pub struct RedoLog {
    path: PathBuf,
    writer: LogWriter,
    appends: u64,
}

impl RedoLog {
    /// Opens (or creates) the redo log at `path`.
    ///
    /// Durability default: fsync is *off* unless `LT_WAL_SYNC` is set
    /// explicitly — the store is a benchmark replica, and the redo rule
    /// (image before data write) already repairs torn data pages on
    /// recovery; what a lost buffered suffix costs is the tail of a load,
    /// never consistency.
    pub fn open(path: &Path) -> io::Result<RedoLog> {
        let mut opts = WalOptions::from_env();
        if std::env::var("LT_WAL_SYNC").is_err() {
            opts.sync = false;
        }
        Ok(RedoLog {
            path: path.to_path_buf(),
            writer: LogWriter::open(path, opts)?,
            appends: 0,
        })
    }

    /// Logs the after-image of `page_no` (the write-ahead step of a dirty
    /// page write-back).
    pub fn log_page(&mut self, page_no: u64, image: &[u8]) -> io::Result<()> {
        debug_assert_eq!(image.len(), PAGE_SIZE);
        let mut rec = Vec::with_capacity(9 + PAGE_SIZE);
        rec.push(TAG_PAGE_IMAGE);
        rec.extend_from_slice(&page_no.to_le_bytes());
        rec.extend_from_slice(image);
        self.writer.append(&rec)?;
        self.appends += 1;
        obs::counter("store.wal_appends", 1);
        Ok(())
    }

    /// Flushes buffered frames to the OS (fsync only if configured).
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }

    /// Total page images appended through this handle.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Truncates the log after all dirty pages have been flushed: the data
    /// file now *is* the checkpoint, so no image needs replaying.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        rewrite_log(&self.path, std::iter::empty::<Vec<u8>>(), false)?;
        let mut opts = WalOptions::from_env();
        if std::env::var("LT_WAL_SYNC").is_err() {
            opts.sync = false;
        }
        self.writer = LogWriter::open(&self.path, opts)?;
        Ok(())
    }
}

/// Replays every intact page image in `redo` over `data`, growing the data
/// file as needed, and returns the number of images applied. Later images
/// of the same page win (append order). A torn or corrupt tail ends replay
/// silently — exactly the frames the crashed process never promised.
pub fn recover(redo: &Path, data: &Path) -> io::Result<u64> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(data)?;
    let mut applied = 0u64;
    for frame in read_frames(redo)? {
        let rec = frame?;
        if rec.len() != 1 + 8 + PAGE_SIZE || rec[0] != TAG_PAGE_IMAGE {
            // Unknown record shape: a versioning bug, not a torn write
            // (framing already checksums) — stop replay conservatively.
            break;
        }
        let page_no = u64::from_le_bytes(rec[1..9].try_into().unwrap());
        file.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        file.write_all(&rec[9..])?;
        applied += 1;
    }
    file.flush()?;
    Ok(applied)
}

/// Reads one page image straight from the data file (recovery validation
/// and tests; normal reads go through the buffer pool).
pub fn read_page_direct(data: &Path, page_no: u64) -> io::Result<Vec<u8>> {
    let mut file = std::fs::File::open(data)?;
    file.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
    let mut buf = vec![0u8; PAGE_SIZE];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lt_store_redo_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn recovery_replays_images_in_order() {
        let dir = tmpdir("replay");
        let redo = dir.join("redo.wal");
        let data = dir.join("data.pages");
        let mut log = RedoLog::open(&redo).unwrap();
        let mut img1 = vec![0u8; PAGE_SIZE];
        page::init(&mut img1, page::PageKind::Heap, 1);
        page::insert(&mut img1, b"first").unwrap();
        page::seal(&mut img1);
        log.log_page(0, &img1).unwrap();
        // A second image of the same page must win.
        let mut img2 = img1.clone();
        page::insert(&mut img2, b"second").unwrap();
        page::seal(&mut img2);
        log.log_page(0, &img2).unwrap();
        log.sync().unwrap();
        assert_eq!(log.appends(), 2);

        let applied = recover(&redo, &data).unwrap();
        assert_eq!(applied, 2);
        let got = read_page_direct(&data, 0).unwrap();
        assert!(page::verify(&got));
        assert_eq!(page::count(&got), 2);
        assert_eq!(page::get(&got, 1), b"second");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let dir = tmpdir("ckpt");
        let redo = dir.join("redo.wal");
        let data = dir.join("data.pages");
        let mut log = RedoLog::open(&redo).unwrap();
        let img = vec![0u8; PAGE_SIZE];
        log.log_page(5, &img).unwrap();
        log.checkpoint().unwrap();
        assert_eq!(recover(&redo, &data).unwrap(), 0);
        // The log is usable again after the checkpoint.
        log.log_page(6, &img).unwrap();
        log.sync().unwrap();
        assert_eq!(recover(&redo, &data).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
