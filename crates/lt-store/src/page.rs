//! Fixed-size checksummed pages with a slotted-record layout.
//!
//! Every page is [`PAGE_SIZE`] bytes. The first [`HEADER`] bytes hold:
//!
//! ```text
//! [0..4]   crc32 of bytes[4..PAGE_SIZE] (computed by `seal`)
//! [4]      page kind (free / heap / btree leaf / btree internal)
//! [5]      btree level (0 = leaf)
//! [6..8]   slot or entry count, u16 LE
//! [8..10]  free-space offset (end of the used payload area), u16 LE
//! [10..14] link, u32 LE: next-leaf page for B+tree leaves, leftmost
//!          child for internal nodes (LINK_NONE = none)
//! [14..16] owner, u16 LE: owning table id for heap pages
//! ```
//!
//! Heap pages use the slotted layout: record payloads grow up from
//! `HEADER`, the slot directory (4 bytes per slot: offset u16, length u16)
//! grows down from the page end. B+tree pages manage the payload area as a
//! sorted array of fixed-size entries and use only the header accessors.

/// Page size in bytes (PostgreSQL's 8 KiB, matching the planner's
/// [`lt_dbms::PAGE_SIZE`] so page counts line up with catalog estimates).
pub const PAGE_SIZE: usize = 8192;

/// Header bytes reserved at the start of every page.
pub const HEADER: usize = 16;

/// Sentinel for "no link" in the header link field.
pub const LINK_NONE: u32 = u32::MAX;

/// Page kind tags (header byte 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageKind {
    /// Unallocated / zeroed.
    Free = 0,
    /// Slotted heap page holding table rows.
    Heap = 1,
    /// B+tree leaf node.
    Leaf = 2,
    /// B+tree internal node.
    Internal = 3,
}

impl PageKind {
    /// Decodes the header tag (unknown values read as `Free`).
    pub fn from_u8(v: u8) -> PageKind {
        match v {
            1 => PageKind::Heap,
            2 => PageKind::Leaf,
            3 => PageKind::Internal,
            _ => PageKind::Free,
        }
    }
}

/// Initializes `buf` as an empty page of `kind` owned by `owner`.
pub fn init(buf: &mut [u8], kind: PageKind, owner: u16) {
    buf[..PAGE_SIZE].fill(0);
    buf[4] = kind as u8;
    set_count(buf, 0);
    set_free_off(buf, HEADER as u16);
    set_link(buf, LINK_NONE);
    buf[14..16].copy_from_slice(&owner.to_le_bytes());
}

/// The page's kind tag.
pub fn kind(buf: &[u8]) -> PageKind {
    PageKind::from_u8(buf[4])
}

/// B+tree level (0 for leaves); unused by heap pages.
pub fn level(buf: &[u8]) -> u8 {
    buf[5]
}

/// Sets the B+tree level.
pub fn set_level(buf: &mut [u8], l: u8) {
    buf[5] = l;
}

/// Slot count (heap) or entry count (B+tree).
pub fn count(buf: &[u8]) -> u16 {
    u16::from_le_bytes([buf[6], buf[7]])
}

/// Sets the slot / entry count.
pub fn set_count(buf: &mut [u8], n: u16) {
    buf[6..8].copy_from_slice(&n.to_le_bytes());
}

/// End of the used payload area.
pub fn free_off(buf: &[u8]) -> u16 {
    u16::from_le_bytes([buf[8], buf[9]])
}

/// Sets the end of the used payload area.
pub fn set_free_off(buf: &mut [u8], off: u16) {
    buf[8..10].copy_from_slice(&off.to_le_bytes());
}

/// Header link field (next leaf / leftmost child).
pub fn link(buf: &[u8]) -> u32 {
    u32::from_le_bytes([buf[10], buf[11], buf[12], buf[13]])
}

/// Sets the header link field.
pub fn set_link(buf: &mut [u8], l: u32) {
    buf[10..14].copy_from_slice(&l.to_le_bytes());
}

/// Owning table id of a heap page.
pub fn owner(buf: &[u8]) -> u16 {
    u16::from_le_bytes([buf[14], buf[15]])
}

/// Computes and stores the page checksum. Call before writing to disk.
pub fn seal(buf: &mut [u8]) {
    let crc = lt_common::crc32(&buf[4..PAGE_SIZE]);
    buf[0..4].copy_from_slice(&crc.to_le_bytes());
}

/// Verifies the stored checksum against the page contents.
pub fn verify(buf: &[u8]) -> bool {
    let stored = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    stored == lt_common::crc32(&buf[4..PAGE_SIZE])
}

// ---- slotted layout (heap pages) ----

/// Free bytes available for one more record (payload + slot entry).
pub fn free_space(buf: &[u8]) -> usize {
    let slots_end = PAGE_SIZE - 4 * count(buf) as usize;
    slots_end.saturating_sub(free_off(buf) as usize)
}

/// Appends a record, returning its slot number, or `None` when the page
/// cannot hold it.
pub fn insert(buf: &mut [u8], payload: &[u8]) -> Option<u16> {
    if free_space(buf) < payload.len() + 4 {
        return None;
    }
    let slot = count(buf);
    let off = free_off(buf) as usize;
    buf[off..off + payload.len()].copy_from_slice(payload);
    let dir = PAGE_SIZE - 4 * (slot as usize + 1);
    buf[dir..dir + 2].copy_from_slice(&(off as u16).to_le_bytes());
    buf[dir + 2..dir + 4].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    set_count(buf, slot + 1);
    set_free_off(buf, (off + payload.len()) as u16);
    Some(slot)
}

/// Borrow of the record in `slot`. Panics on an out-of-range slot
/// (program error — rids are never guessed).
pub fn get(buf: &[u8], slot: u16) -> &[u8] {
    assert!(slot < count(buf), "slot {slot} out of range");
    let dir = PAGE_SIZE - 4 * (slot as usize + 1);
    let off = u16::from_le_bytes([buf[dir], buf[dir + 1]]) as usize;
    let len = u16::from_le_bytes([buf[dir + 2], buf[dir + 3]]) as usize;
    &buf[off..off + len]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf, PageKind::Heap, 3);
        assert_eq!(kind(&buf), PageKind::Heap);
        assert_eq!(owner(&buf), 3);
        let a = insert(&mut buf, b"hello").unwrap();
        let b = insert(&mut buf, b"world!").unwrap();
        assert_eq!(get(&buf, a), b"hello");
        assert_eq!(get(&buf, b), b"world!");
        assert_eq!(count(&buf), 2);
    }

    #[test]
    fn page_fills_up_and_rejects() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf, PageKind::Heap, 0);
        let payload = [7u8; 100];
        let mut n = 0;
        while insert(&mut buf, &payload).is_some() {
            n += 1;
        }
        // 104 bytes per record (100 payload + 4 slot) into 8176 usable.
        assert_eq!(n, (PAGE_SIZE - HEADER) / 104);
        assert!(free_space(&buf) < 104);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf, PageKind::Leaf, 0);
        insert(&mut buf, b"payload");
        seal(&mut buf);
        assert!(verify(&buf));
        buf[HEADER] ^= 0xFF;
        assert!(!verify(&buf));
    }

    #[test]
    fn header_fields_roundtrip() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf, PageKind::Internal, 0);
        set_level(&mut buf, 2);
        set_link(&mut buf, 77);
        set_count(&mut buf, 13);
        assert_eq!(level(&buf), 2);
        assert_eq!(link(&buf), 77);
        assert_eq!(count(&buf), 13);
        assert_eq!(kind(&buf), PageKind::Internal);
    }
}
