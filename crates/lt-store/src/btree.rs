//! Paged B+tree mapping `(key, rid)` to heap rows.
//!
//! Entries are composite `(key, rid)` pairs, so duplicate keys — the normal
//! case for secondary indexes on foreign keys — stay totally ordered and
//! deletable individually. Leaves hold 16-byte entries and chain through
//! the page-header link field; internal nodes hold 24-byte
//! `(key, rid, child)` routing entries plus a leftmost child in the link
//! field. Splits propagate upward; deletes do not rebalance (separators may
//! go stale, which keeps routing correct while wasting some space — an
//! acceptable trade for a bulk-load + read-mostly engine).
//!
//! All node access goes through the buffer pool, so index descents and leaf
//! walks produce the same hit/miss/eviction signals heap scans do.

use crate::buffer::BufferPool;
use crate::page::{self, PageKind, HEADER, LINK_NONE, PAGE_SIZE};
use std::io;

/// Bytes per leaf entry: key + rid.
const LEAF_ENTRY: usize = 16;
/// Bytes per internal entry: key + rid + child page.
const INT_ENTRY: usize = 24;
/// Max entries in a leaf node.
pub const LEAF_CAP: usize = (PAGE_SIZE - HEADER) / LEAF_ENTRY;
/// Max entries in an internal node.
pub const INT_CAP: usize = (PAGE_SIZE - HEADER) / INT_ENTRY;

/// A B+tree rooted in a buffer-pool page.
#[derive(Debug, Clone)]
pub struct BTree {
    /// Root page (leaf until the first split).
    pub root: u64,
    /// Levels below the root (0 = root is a leaf).
    pub height: u32,
    /// Live entries.
    pub entries: u64,
}

fn leaf_entry(buf: &[u8], i: usize) -> (u64, u64) {
    let off = HEADER + LEAF_ENTRY * i;
    (
        u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
        u64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()),
    )
}

fn write_leaf_entry(buf: &mut [u8], i: usize, key: u64, rid: u64) {
    let off = HEADER + LEAF_ENTRY * i;
    buf[off..off + 8].copy_from_slice(&key.to_le_bytes());
    buf[off + 8..off + 16].copy_from_slice(&rid.to_le_bytes());
}

fn int_entry(buf: &[u8], i: usize) -> (u64, u64, u64) {
    let off = HEADER + INT_ENTRY * i;
    (
        u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
        u64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()),
        u64::from_le_bytes(buf[off + 16..off + 24].try_into().unwrap()),
    )
}

fn write_int_entry(buf: &mut [u8], i: usize, key: u64, rid: u64, child: u64) {
    let off = HEADER + INT_ENTRY * i;
    buf[off..off + 8].copy_from_slice(&key.to_le_bytes());
    buf[off + 8..off + 16].copy_from_slice(&rid.to_le_bytes());
    buf[off + 16..off + 24].copy_from_slice(&child.to_le_bytes());
}

/// First leaf slot whose entry is `>= (key, rid)`.
fn leaf_lower_bound(buf: &[u8], key: u64, rid: u64) -> usize {
    let n = page::count(buf) as usize;
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if leaf_entry(buf, mid) < (key, rid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Child page covering `(key, rid)` in an internal node.
fn route(buf: &[u8], key: u64, rid: u64) -> u64 {
    let n = page::count(buf) as usize;
    // Last entry with separator <= (key, rid); none → leftmost child.
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (k, r, _) = int_entry(buf, mid);
        if (k, r) <= (key, rid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        page::link(buf) as u64
    } else {
        int_entry(buf, lo - 1).2
    }
}

impl BTree {
    /// Creates an empty tree (one leaf page).
    pub fn create(pool: &mut BufferPool) -> io::Result<BTree> {
        let root = pool.alloc_page();
        pool.with_page_mut(root, |buf| {
            page::init(buf, PageKind::Leaf, 0);
        })?;
        Ok(BTree {
            root,
            height: 0,
            entries: 0,
        })
    }

    /// Inserts `(key, rid)`. Duplicate `(key, rid)` pairs are stored once
    /// (idempotent, like a unique composite index over key+rid).
    pub fn insert(&mut self, pool: &mut BufferPool, key: u64, rid: u64) -> io::Result<()> {
        if let Some((sk, sr, right)) = self.insert_rec(pool, self.root, self.height, key, rid)? {
            // Root split: new internal root over (old root, right).
            let new_root = pool.alloc_page();
            let old_root = self.root;
            pool.with_page_mut(new_root, |buf| {
                page::init(buf, PageKind::Internal, 0);
                page::set_level(buf, 0);
                page::set_link(buf, old_root as u32);
                write_int_entry(buf, 0, sk, sr, right);
                page::set_count(buf, 1);
            })?;
            self.root = new_root;
            self.height += 1;
        }
        Ok(())
    }

    fn insert_rec(
        &mut self,
        pool: &mut BufferPool,
        node: u64,
        level: u32,
        key: u64,
        rid: u64,
    ) -> io::Result<Option<(u64, u64, u64)>> {
        if level == 0 {
            return self.leaf_insert(pool, node, key, rid);
        }
        let child = pool.with_page(node, |buf| route(buf, key, rid))?;
        let Some((sk, sr, new_child)) = self.insert_rec(pool, child, level - 1, key, rid)? else {
            return Ok(None);
        };
        // Insert the separator into this node, splitting if full.
        let count = pool.with_page(node, |buf| page::count(buf) as usize)?;
        if count < INT_CAP {
            pool.with_page_mut(node, |buf| {
                int_insert_sorted(buf, sk, sr, new_child);
            })?;
            return Ok(None);
        }
        // Split this internal node around its middle separator.
        let right = pool.alloc_page();
        let (mid_k, mid_r, promoted) = pool.with_page(node, |buf| {
            let mid = count / 2;
            int_entry(buf, mid)
        })?;
        let moved: Vec<(u64, u64, u64)> = pool.with_page(node, |buf| {
            ((count / 2 + 1)..count)
                .map(|i| int_entry(buf, i))
                .collect()
        })?;
        pool.with_page_mut(right, |buf| {
            page::init(buf, PageKind::Internal, 0);
            page::set_link(buf, promoted as u32);
            for (i, &(k, r, c)) in moved.iter().enumerate() {
                write_int_entry(buf, i, k, r, c);
            }
            page::set_count(buf, moved.len() as u16);
        })?;
        pool.with_page_mut(node, |buf| {
            page::set_count(buf, (count / 2) as u16);
        })?;
        let target = if (sk, sr) < (mid_k, mid_r) {
            node
        } else {
            right
        };
        pool.with_page_mut(target, |buf| {
            int_insert_sorted(buf, sk, sr, new_child);
        })?;
        Ok(Some((mid_k, mid_r, right)))
    }

    fn leaf_insert(
        &mut self,
        pool: &mut BufferPool,
        leaf: u64,
        key: u64,
        rid: u64,
    ) -> io::Result<Option<(u64, u64, u64)>> {
        let (count, pos, exists) = pool.with_page(leaf, |buf| {
            let n = page::count(buf) as usize;
            let pos = leaf_lower_bound(buf, key, rid);
            (n, pos, pos < n && leaf_entry(buf, pos) == (key, rid))
        })?;
        if exists {
            return Ok(None);
        }
        if count < LEAF_CAP {
            pool.with_page_mut(leaf, |buf| {
                leaf_insert_at(buf, pos, key, rid);
            })?;
            self.entries += 1;
            return Ok(None);
        }
        // Split: move the upper half to a fresh right sibling.
        let right = pool.alloc_page();
        let mid = count / 2;
        let (moved, old_link): (Vec<(u64, u64)>, u32) = pool.with_page(leaf, |buf| {
            (
                (mid..count).map(|i| leaf_entry(buf, i)).collect(),
                page::link(buf),
            )
        })?;
        pool.with_page_mut(right, |buf| {
            page::init(buf, PageKind::Leaf, 0);
            page::set_link(buf, old_link);
            for (i, &(k, r)) in moved.iter().enumerate() {
                write_leaf_entry(buf, i, k, r);
            }
            page::set_count(buf, moved.len() as u16);
        })?;
        pool.with_page_mut(leaf, |buf| {
            page::set_count(buf, mid as u16);
            page::set_link(buf, right as u32);
        })?;
        let sep = moved[0];
        let target = if (key, rid) < sep { leaf } else { right };
        pool.with_page_mut(target, |buf| {
            let pos = leaf_lower_bound(buf, key, rid);
            leaf_insert_at(buf, pos, key, rid);
        })?;
        self.entries += 1;
        Ok(Some((sep.0, sep.1, right)))
    }

    /// Deletes `(key, rid)`. Returns whether the entry existed.
    pub fn delete(&mut self, pool: &mut BufferPool, key: u64, rid: u64) -> io::Result<bool> {
        let leaf = self.descend(pool, key, rid)?;
        let removed = pool.with_page_mut(leaf, |buf| {
            let n = page::count(buf) as usize;
            let pos = leaf_lower_bound(buf, key, rid);
            if pos >= n || leaf_entry(buf, pos) != (key, rid) {
                return false;
            }
            for i in pos..n - 1 {
                let (k, r) = leaf_entry(buf, i + 1);
                write_leaf_entry(buf, i, k, r);
            }
            page::set_count(buf, (n - 1) as u16);
            true
        })?;
        if removed {
            self.entries -= 1;
        }
        Ok(removed)
    }

    /// Walks the tree to the leaf that would hold `(key, rid)`.
    fn descend(&self, pool: &mut BufferPool, key: u64, rid: u64) -> io::Result<u64> {
        let mut node = self.root;
        for _ in 0..self.height {
            node = pool.with_page(node, |buf| route(buf, key, rid))?;
        }
        Ok(node)
    }

    /// Visits every `(key, rid)` with `lo <= key <= hi` in order. Returns
    /// the number of leaf pages touched (the executor's I/O evidence).
    pub fn range_scan(
        &self,
        pool: &mut BufferPool,
        lo: u64,
        hi: u64,
        mut f: impl FnMut(u64, u64),
    ) -> io::Result<u64> {
        let mut leaf = self.descend(pool, lo, 0)?;
        let mut leaves = 0u64;
        loop {
            leaves += 1;
            let (next, done) = pool.with_page(leaf, |buf| {
                let n = page::count(buf) as usize;
                let mut i = leaf_lower_bound(buf, lo, 0);
                while i < n {
                    let (k, r) = leaf_entry(buf, i);
                    if k > hi {
                        return (LINK_NONE, true);
                    }
                    f(k, r);
                    i += 1;
                }
                (page::link(buf), false)
            })?;
            if done || next == LINK_NONE {
                return Ok(leaves);
            }
            leaf = next as u64;
        }
    }

    /// All rids stored under exactly `key`.
    pub fn probe(&self, pool: &mut BufferPool, key: u64) -> io::Result<Vec<u64>> {
        let mut rids = Vec::new();
        self.range_scan(pool, key, key, |_, rid| rids.push(rid))?;
        Ok(rids)
    }

    /// Visits the first `limit` entries in key order (a prefix range scan —
    /// how the executor realizes an index scan of a given selectivity).
    pub fn scan_prefix(
        &self,
        pool: &mut BufferPool,
        limit: u64,
        mut f: impl FnMut(u64, u64),
    ) -> io::Result<u64> {
        let mut remaining = limit;
        if remaining == 0 {
            return Ok(0);
        }
        let mut leaf = self.descend(pool, 0, 0)?;
        let mut leaves = 0u64;
        loop {
            leaves += 1;
            let next = pool.with_page(leaf, |buf| {
                let n = page::count(buf) as usize;
                for i in 0..n {
                    if remaining == 0 {
                        return LINK_NONE;
                    }
                    let (k, r) = leaf_entry(buf, i);
                    f(k, r);
                    remaining -= 1;
                }
                page::link(buf)
            })?;
            if remaining == 0 || next == LINK_NONE {
                return Ok(leaves);
            }
            leaf = next as u64;
        }
    }
}

fn leaf_insert_at(buf: &mut [u8], pos: usize, key: u64, rid: u64) {
    let n = page::count(buf) as usize;
    debug_assert!(n < LEAF_CAP);
    let start = HEADER + LEAF_ENTRY * pos;
    let end = HEADER + LEAF_ENTRY * n;
    buf.copy_within(start..end, start + LEAF_ENTRY);
    write_leaf_entry(buf, pos, key, rid);
    page::set_count(buf, (n + 1) as u16);
}

fn int_insert_sorted(buf: &mut [u8], key: u64, rid: u64, child: u64) {
    let n = page::count(buf) as usize;
    debug_assert!(n < INT_CAP);
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (k, r, _) = int_entry(buf, mid);
        if (k, r) < (key, rid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let start = HEADER + INT_ENTRY * lo;
    let end = HEADER + INT_ENTRY * n;
    buf.copy_within(start..end, start + INT_ENTRY);
    write_int_entry(buf, lo, key, rid, child);
    page::set_count(buf, (n + 1) as u16);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lt_store_bt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn sorted_after_many_random_inserts() {
        let dir = tmpdir("sorted");
        let mut pool =
            BufferPool::open(&dir.join("data.pages"), &dir.join("redo.wal"), 64).unwrap();
        let mut bt = BTree::create(&mut pool).unwrap();
        let mut rng = lt_common::seeded_rng(7);
        let n = 5000u64;
        for i in 0..n {
            bt.insert(&mut pool, rng.next_u64() % 1000, i).unwrap();
        }
        assert_eq!(bt.entries, n);
        assert!(bt.height >= 1, "5000 entries must split the root");
        let mut prev = None;
        let mut count = 0u64;
        bt.range_scan(&mut pool, 0, u64::MAX, |k, r| {
            if let Some(p) = prev {
                assert!(p <= (k, r), "out of order: {p:?} then {:?}", (k, r));
            }
            prev = Some((k, r));
            count += 1;
        })
        .unwrap();
        assert_eq!(count, n);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_returns_all_duplicates() {
        let dir = tmpdir("dups");
        let mut pool =
            BufferPool::open(&dir.join("data.pages"), &dir.join("redo.wal"), 64).unwrap();
        let mut bt = BTree::create(&mut pool).unwrap();
        for rid in 0..2000u64 {
            bt.insert(&mut pool, rid % 10, rid).unwrap();
        }
        let rids = bt.probe(&mut pool, 3).unwrap();
        assert_eq!(rids.len(), 200);
        assert!(rids.windows(2).all(|w| w[0] < w[1]));
        assert!(rids.iter().all(|r| r % 10 == 3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_removes_exactly_one_entry() {
        let dir = tmpdir("del");
        let mut pool =
            BufferPool::open(&dir.join("data.pages"), &dir.join("redo.wal"), 64).unwrap();
        let mut bt = BTree::create(&mut pool).unwrap();
        for rid in 0..1000u64 {
            bt.insert(&mut pool, rid / 4, rid).unwrap();
        }
        assert!(bt.delete(&mut pool, 50, 201).unwrap());
        assert!(!bt.delete(&mut pool, 50, 201).unwrap(), "already gone");
        assert_eq!(bt.entries, 999);
        let rids = bt.probe(&mut pool, 50).unwrap();
        assert_eq!(rids, vec![200, 202, 203]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_prefix_caps_the_walk() {
        let dir = tmpdir("prefix");
        let mut pool =
            BufferPool::open(&dir.join("data.pages"), &dir.join("redo.wal"), 64).unwrap();
        let mut bt = BTree::create(&mut pool).unwrap();
        for i in 0..3000u64 {
            bt.insert(&mut pool, i, i).unwrap();
        }
        let mut got = Vec::new();
        bt.scan_prefix(&mut pool, 100, |k, _| got.push(k)).unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u64>>());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
