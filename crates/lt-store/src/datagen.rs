//! Deterministic synthetic data matching the catalog's statistics.
//!
//! The store loads a *scaled replica* of a benchmark schema: every table's
//! row count is multiplied by `LT_STORE_SCALE`, and column NDVs shrink the
//! same way [`Catalog::scale`] grows them — linearly for key columns,
//! sub-linearly (square root) for categorical ones. Values are pure
//! functions of `(seed, column, row index)`:
//!
//! * **primary key** → the row index itself (dense `0..rows`),
//! * **foreign key** → `mix(seed ^ column ^ row) % scaled_ndv`. Because fk
//!   NDV scales linearly and a full-scale fk NDV equals the parent's row
//!   count, the scaled domain is the parent's scaled pk domain — joins
//!   really match at the rate the planner's statistics predict,
//! * **other** → `mix(...) % scaled_ndv` over the sqrt-scaled domain.
//!
//! Determinism here is what makes `BENCH_store.smoke.json` byte-identical
//! across thread counts: two loads from equal `(catalog, seed, scale)`
//! produce equal bytes.

use lt_dbms::ColumnMeta;

/// Splitmix64 finalizer: uncorrelated value streams per (seed, column, row).
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rows a table keeps in the scaled replica (mirrors [`Catalog::scale`]'s
/// rounding, floor 1).
///
/// [`Catalog::scale`]: lt_dbms::Catalog::scale
pub fn scaled_rows(full_rows: u64, scale: f64) -> u64 {
    ((full_rows as f64) * scale).round().max(1.0) as u64
}

/// Distinct values a column keeps in the scaled replica: linear for
/// key columns, square-root for categorical ones (mirrors
/// [`Catalog::scale`]).
///
/// [`Catalog::scale`]: lt_dbms::Catalog::scale
pub fn scaled_ndv(col: &ColumnMeta, scale: f64) -> u64 {
    let factor = if col.primary_key || col.foreign_key {
        scale
    } else {
        scale.sqrt()
    };
    ((col.ndv * factor).round().max(1.0)) as u64
}

/// The stored value of `col` in row `row` of its scaled table.
pub fn column_value(seed: u64, col: &ColumnMeta, scale: f64, row: u64) -> u64 {
    if col.primary_key {
        return row;
    }
    let ndv = scaled_ndv(col, scale).max(1);
    mix(seed ^ (col.id.index() as u64).wrapping_mul(0xA24B_AED4_963E_E407) ^ row) % ndv
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("orders", 1_000_000)
            .primary_key("o_orderkey", 8)
            .foreign_key("o_custkey", 8, 100_000.0)
            .column("o_status", 1, 3.0)
            .column("o_totalprice", 8, 800_000.0)
            .finish();
        c
    }

    #[test]
    fn scaling_mirrors_catalog_scale() {
        let mut full = catalog();
        let scale = 0.01;
        let pk = full.resolve_column(None, "o_orderkey").unwrap();
        let fk = full.resolve_column(None, "o_custkey").unwrap();
        let price = full.resolve_column(None, "o_totalprice").unwrap();
        let want_rows = scaled_rows(1_000_000, scale);
        let want_fk = scaled_ndv(full.column(fk), scale);
        let want_price = scaled_ndv(full.column(price), scale);
        // Catalog::scale applied to the same factor must agree.
        full.scale(scale);
        let t = full.table_by_name("orders").unwrap();
        assert_eq!(full.table(t).rows, want_rows);
        assert_eq!(full.column(fk).ndv.round() as u64, want_fk);
        assert_eq!(full.column(price).ndv.round() as u64, want_price);
        assert_eq!(full.column(pk).ndv.round() as u64, want_rows);
    }

    #[test]
    fn fk_values_land_in_parent_pk_domain() {
        let c = catalog();
        let fk = c.resolve_column(None, "o_custkey").unwrap();
        let col = c.column(fk);
        let scale = 0.005;
        let ndv = scaled_ndv(col, scale);
        assert_eq!(ndv, 500); // 100k customers × 0.005
        let mut seen = std::collections::HashSet::new();
        for row in 0..5000 {
            let v = column_value(42, col, scale, row);
            assert!(v < ndv);
            seen.insert(v);
        }
        // Plenty of rows per distinct value → near-full domain coverage.
        assert!(
            seen.len() > 450,
            "only {} of {ndv} fk values hit",
            seen.len()
        );
    }

    #[test]
    fn values_are_deterministic_and_seed_sensitive() {
        let c = catalog();
        let price = c.resolve_column(None, "o_totalprice").unwrap();
        let col = c.column(price);
        let a = column_value(42, col, 0.01, 7);
        assert_eq!(a, column_value(42, col, 0.01, 7));
        let diff =
            (0..64).any(|r| column_value(42, col, 0.01, r) != column_value(43, col, 0.01, r));
        assert!(diff, "seed must matter");
    }
}
