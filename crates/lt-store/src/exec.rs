//! Chunked physical executor: runs the optimizer's plan trees against the
//! store.
//!
//! The planner is shared with [`lt_dbms::SimDb`] — it plans on the
//! *full-scale* catalog — while execution happens on the scaled replica.
//! Filter selectivities therefore come from the same [`Estimator`] the
//! simulator uses ("true" selectivities, with the same deterministic
//! misestimation pattern), applied as per-row Bernoulli decisions keyed on
//! `(filter set, rid)`.
//!
//! Operators materialize one [`Chunk`] per node (column values are
//! fixed-width `u64`s, see [`crate::heap`]). Hash joins Grace-partition to
//! real temp files and sorts run external merge passes when their input
//! exceeds the effective work memory — the spill behaviour `work_mem`
//! tuning is supposed to remove, now physically observable.
//!
//! Determinism: every output is a pure function of the store contents and
//! the plan. Hash maps are never iterated directly (probe order / first-seen
//! order rules every emission), and timeouts cut on *deterministic proxy
//! time* derived from I/O and tuple counters rather than the wall clock, so
//! two runs at different thread counts take identical decisions.

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::datagen::mix;
use crate::heap::{Heap, Schema};
use crate::page::PAGE_SIZE;
use lt_common::{obs, ColumnId, IndexId, TableId};
use lt_dbms::stats::{Estimator, FilterKind, FilterTerm, QueryPredicates};
use lt_dbms::{PlanNode, PlanOp};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Proxy seconds per buffer-pool hit.
const T_HIT: f64 = 1.0e-6;
/// Proxy seconds per buffer-pool miss (read from the data file).
const T_MISS: f64 = 1.0e-4;
/// Proxy seconds per spill temp page written or read.
const T_SPILL_PAGE: f64 = 2.5e-5;
/// Proxy seconds per tuple processed.
const T_TUPLE: f64 = 1.5e-7;
/// Proxy seconds per B+tree descent.
const T_DESCENT: f64 = 2.0e-6;
/// Hard cap on one operator's output rows (a cross-join backstop; the
/// scaled replica keeps ordinary plans far below it).
const ROW_CAP: u64 = 4_000_000;
/// Budget-check cadence in rows.
const CHECK_EVERY: u64 = 8192;

/// Execution failure: deterministic timeout or real I/O error.
#[derive(Debug)]
pub enum ExecError {
    /// The proxy-time budget was exhausted (statement timeout).
    Timeout,
    /// Underlying storage failure.
    Io(io::Error),
}

impl From<io::Error> for ExecError {
    fn from(e: io::Error) -> Self {
        ExecError::Io(e)
    }
}

/// Deterministic work counters accumulated over one plan execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples processed across all operators.
    pub rows: u64,
    /// B+tree descents (index scans and index nested loops).
    pub descents: u64,
    /// Operators that spilled to temp files.
    pub spills: u64,
    /// Temp-file pages written + read back.
    pub spill_pages: u64,
}

/// Proxy seconds for a set of counters: the deterministic stand-in for
/// wall time that drives the virtual clock and timeout decisions.
pub fn proxy_seconds(hits: u64, misses: u64, stats: &ExecStats) -> f64 {
    hits as f64 * T_HIT
        + misses as f64 * T_MISS
        + stats.spill_pages as f64 * T_SPILL_PAGE
        + stats.rows as f64 * T_TUPLE
        + stats.descents as f64 * T_DESCENT
}

/// A physically built secondary index: its key column and B+tree.
#[derive(Debug, Clone)]
pub struct StoredIndex {
    /// Indexed table.
    pub table: TableId,
    /// Leading (and only stored) key column.
    pub column: ColumnId,
    /// The tree, rooted in the shared buffer pool.
    pub tree: BTree,
}

/// Materialized operator output: `rows` fixed-width rows.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    /// Row layout.
    pub schema: Schema,
    /// `rows * schema.width` bytes.
    pub data: Vec<u8>,
    /// Row count (explicit so zero-width chunks still count rows).
    pub rows: u64,
}

impl Chunk {
    fn row(&self, i: u64) -> &[u8] {
        let w = self.schema.width;
        &self.data[(i as usize) * w..(i as usize + 1) * w]
    }

    fn push_row(&mut self, row: &[u8]) {
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Bytes held by this chunk.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64
    }
}

/// Everything one plan execution needs. Borrows the store's structures;
/// owns only its counters and temp-file sequence.
pub struct Executor<'a> {
    /// Shared buffer pool (heaps and indexes live in it).
    pub pool: &'a mut BufferPool,
    /// Heaps of the scaled replica by table.
    pub heaps: &'a BTreeMap<TableId, Heap>,
    /// Physically built indexes by planner index id.
    pub indexes: &'a BTreeMap<IndexId, StoredIndex>,
    /// Selectivity oracle over the *full-scale* catalog (shared with the
    /// optimizer, same stats seed as the simulator).
    pub est: &'a Estimator<'a>,
    /// The query's extracted predicates.
    pub preds: &'a QueryPredicates,
    /// Effective work memory in bytes (already scaled).
    pub work_mem_eff: u64,
    /// Directory for spill temp files.
    pub temp_dir: &'a Path,
    /// Proxy-second budget (`None` = no statement timeout).
    pub budget: Option<f64>,
    /// Accumulated counters.
    pub stats: ExecStats,
    /// Pool hits/misses at executor construction (budget baseline).
    pub base_hits: u64,
    /// Pool misses at executor construction.
    pub base_misses: u64,
    temp_seq: u64,
}

impl<'a> Executor<'a> {
    /// New executor over the store's structures.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pool: &'a mut BufferPool,
        heaps: &'a BTreeMap<TableId, Heap>,
        indexes: &'a BTreeMap<IndexId, StoredIndex>,
        est: &'a Estimator<'a>,
        preds: &'a QueryPredicates,
        work_mem_eff: u64,
        temp_dir: &'a Path,
        budget: Option<f64>,
    ) -> Self {
        let base_hits = pool.stats.hits;
        let base_misses = pool.stats.misses;
        Executor {
            pool,
            heaps,
            indexes,
            est,
            preds,
            work_mem_eff,
            temp_dir,
            budget,
            stats: ExecStats::default(),
            base_hits,
            base_misses,
            temp_seq: 0,
        }
    }

    /// Executes the plan tree, returning the root's output.
    pub fn run(&mut self, root: &PlanNode) -> Result<Chunk, ExecError> {
        let out = self.exec(root)?;
        if self.stats.spills > 0 {
            obs::counter("store.spills", self.stats.spills);
        }
        Ok(out)
    }

    /// Physical counters accumulated by this execution.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Proxy seconds consumed so far by this execution.
    pub fn elapsed_proxy(&self) -> f64 {
        proxy_seconds(
            self.pool.stats.hits - self.base_hits,
            self.pool.stats.misses - self.base_misses,
            &self.stats,
        )
    }

    fn check_budget(&self) -> Result<(), ExecError> {
        match self.budget {
            Some(b) if self.elapsed_proxy() > b => Err(ExecError::Timeout),
            _ => Ok(()),
        }
    }

    fn exec(&mut self, node: &PlanNode) -> Result<Chunk, ExecError> {
        self.check_budget()?;
        match &node.op {
            PlanOp::SeqScan { table, .. } => self.seq_scan(*table),
            PlanOp::IndexScan {
                table,
                index,
                selectivity,
            } => self.index_scan(*table, *index, *selectivity),
            PlanOp::HashJoin { keys, .. } => {
                let probe = self.exec(&node.children[0])?;
                let build = self.exec(&node.children[1])?;
                self.hash_join(probe, build, keys)
            }
            PlanOp::MergeJoin { keys } => {
                let left = self.exec(&node.children[0])?;
                let right = self.exec(&node.children[1])?;
                self.merge_join(left, right, keys)
            }
            PlanOp::NestLoopJoin { keys, inner_index } => {
                let outer = self.exec(&node.children[0])?;
                match inner_index.and_then(|i| self.indexes.get(&i).cloned()) {
                    Some(idx) => self.index_nest_loop(outer, &node.children[1], &idx, keys),
                    // No physical index: hashing computes the identical
                    // output (outer-major, inner insertion order per match).
                    None => {
                        let inner = self.exec(&node.children[1])?;
                        self.hash_join(outer, inner, keys)
                    }
                }
            }
            PlanOp::CrossJoin => {
                let left = self.exec(&node.children[0])?;
                let right = self.exec(&node.children[1])?;
                self.cross_join(left, right)
            }
            PlanOp::Sort { .. } => {
                let input = self.exec(&node.children[0])?;
                self.sort(input)
            }
            PlanOp::Aggregate { grouped } => {
                let input = self.exec(&node.children[0])?;
                self.aggregate(input, *grouped)
            }
            // The replica executes single-threaded; parallelism is priced by
            // the simulator's model, not measured here.
            PlanOp::Gather { .. } => self.exec(&node.children[0]),
            PlanOp::Limit { rows } => match node.children.first() {
                Some(child) => {
                    let mut input = self.exec(child)?;
                    let keep = (*rows).min(input.rows);
                    input.data.truncate(keep as usize * input.schema.width);
                    input.rows = keep;
                    Ok(input)
                }
                // Table-less constant query.
                None => Ok(Chunk {
                    schema: Schema::default(),
                    data: Vec::new(),
                    rows: 1,
                }),
            },
        }
    }

    // ---- scans ----

    fn seq_scan(&mut self, table: TableId) -> Result<Chunk, ExecError> {
        let heap = self.heap(table)?;
        let sel = self.true_selectivity(table);
        let fseed = filter_seed(table, self.preds.filters.get(&table).map_or(&[], |v| v));
        let mut out = Chunk {
            schema: heap.schema.clone(),
            data: Vec::new(),
            rows: 0,
        };
        let mut scanned = 0u64;
        let heap = heap.clone();
        heap.for_each_row(self.pool, |rid, row| {
            scanned += 1;
            if keep_row(fseed, rid, sel) {
                out.data.extend_from_slice(row);
                out.rows += 1;
            }
        })?;
        self.stats.rows += scanned;
        // `for_each_row` cannot early-return through the closure; price the
        // full scan, then honour the budget.
        self.check_budget()?;
        Ok(out)
    }

    fn index_scan(
        &mut self,
        table: TableId,
        index: IndexId,
        est_sel: f64,
    ) -> Result<Chunk, ExecError> {
        let Some(idx) = self.indexes.get(&index).cloned() else {
            // Planner referenced an index the store has not built (possible
            // only through what-if paths); degrade to a filtered seq scan.
            return self.seq_scan(table);
        };
        let heap = self.heap(table)?.clone();
        // Same reality-vs-estimate gap the simulator applies.
        let true_sel = (est_sel * self.true_misfactor(table)).clamp(1e-12, 1.0);
        let fetch = ((true_sel * heap.rows as f64).ceil() as u64).clamp(1, heap.rows.max(1));
        let mut rids = Vec::with_capacity(fetch as usize);
        idx.tree
            .scan_prefix(self.pool, fetch, |_, rid| rids.push(rid))?;
        self.stats.descents += 1;
        let mut out = Chunk {
            schema: heap.schema.clone(),
            data: Vec::new(),
            rows: 0,
        };
        for (i, rid) in rids.iter().enumerate() {
            // Scattered heap fetches: this is where small pools bleed misses.
            let row = heap.fetch(self.pool, *rid)?;
            out.push_row(&row);
            self.stats.rows += 1;
            if (i as u64) % CHECK_EVERY == CHECK_EVERY - 1 {
                self.check_budget()?;
            }
        }
        Ok(out)
    }

    // ---- joins ----

    fn hash_join(
        &mut self,
        probe: Chunk,
        build: Chunk,
        keys: &[(ColumnId, ColumnId)],
    ) -> Result<Chunk, ExecError> {
        if keys.is_empty() {
            return self.cross_join(probe, build);
        }
        let schema = probe.schema.concat(&build.schema);
        if build.bytes() > self.work_mem_eff && build.rows > 0 {
            return self.grace_hash_join(probe, build, keys, schema);
        }
        let mut out = Chunk {
            schema,
            data: Vec::new(),
            rows: 0,
        };
        self.hash_join_into(&probe, &build, keys, &mut out)?;
        Ok(out)
    }

    /// In-memory hash join of one (partition of a) probe/build pair.
    /// Output order: probe-major, build insertion order within a key.
    fn hash_join_into(
        &mut self,
        probe: &Chunk,
        build: &Chunk,
        keys: &[(ColumnId, ColumnId)],
        out: &mut Chunk,
    ) -> Result<(), ExecError> {
        let (pcol, bcol) = join_columns(&probe.schema, &build.schema, keys[0])
            .ok_or_else(|| ExecError::Io(missing_key_err(keys[0])))?;
        let residual = residual_columns(&probe.schema, &build.schema, &keys[1..]);
        let mut table: HashMap<u64, Vec<u64>> = HashMap::new();
        for i in 0..build.rows {
            let k = build.schema.value(build.row(i), bcol);
            table.entry(k).or_default().push(i);
            self.stats.rows += 1;
        }
        for i in 0..probe.rows {
            let prow = probe.row(i);
            let k = probe.schema.value(prow, pcol);
            self.stats.rows += 1;
            if let Some(matches) = table.get(&k) {
                for &j in matches {
                    let brow = build.row(j);
                    if residual.iter().all(|&(pc, bc)| {
                        probe.schema.value(prow, pc) == build.schema.value(brow, bc)
                    }) {
                        if out.rows >= ROW_CAP {
                            return Ok(());
                        }
                        out.data.extend_from_slice(prow);
                        out.data.extend_from_slice(brow);
                        out.rows += 1;
                    }
                }
            }
            if i % CHECK_EVERY == CHECK_EVERY - 1 {
                self.check_budget()?;
            }
        }
        Ok(())
    }

    /// Grace hash join: both sides partitioned to temp files so each build
    /// partition fits in work memory, then joined partition by partition.
    fn grace_hash_join(
        &mut self,
        probe: Chunk,
        build: Chunk,
        keys: &[(ColumnId, ColumnId)],
        schema: Schema,
    ) -> Result<Chunk, ExecError> {
        self.stats.spills += 1;
        let parts = (build.bytes().div_ceil(self.work_mem_eff.max(1)))
            .next_power_of_two()
            .clamp(2, 256);
        let (pcol, bcol) = join_columns(&probe.schema, &build.schema, keys[0])
            .ok_or_else(|| ExecError::Io(missing_key_err(keys[0])))?;
        let probe_parts = self.partition(&probe, pcol, parts)?;
        let build_parts = self.partition(&build, bcol, parts)?;
        drop(probe);
        drop(build);
        let mut out = Chunk {
            schema,
            data: Vec::new(),
            rows: 0,
        };
        for p in 0..parts as usize {
            let pp = self.read_partition(&probe_parts, p)?;
            let bp = self.read_partition(&build_parts, p)?;
            if pp.rows == 0 || bp.rows == 0 {
                continue;
            }
            self.hash_join_into(&pp, &bp, keys, &mut out)?;
        }
        remove_temp(&probe_parts.path);
        remove_temp(&build_parts.path);
        Ok(out)
    }

    /// Hash-partitions a chunk into `parts` buckets inside one temp file,
    /// charging spill I/O for the write and later read-back.
    fn partition(
        &mut self,
        chunk: &Chunk,
        col: crate::heap::Column,
        parts: u64,
    ) -> io::Result<Spill> {
        let mut buckets: Vec<Vec<u8>> = vec![Vec::new(); parts as usize];
        for i in 0..chunk.rows {
            let row = chunk.row(i);
            let k = chunk.schema.value(row, col);
            let p = (mix(k) % parts) as usize;
            buckets[p].extend_from_slice(row);
        }
        let path = self.temp_path();
        let mut w = BufWriter::new(File::create(&path)?);
        let mut offsets = Vec::with_capacity(parts as usize + 1);
        let mut off = 0u64;
        for b in &buckets {
            offsets.push(off);
            w.write_all(b)?;
            off += b.len() as u64;
        }
        offsets.push(off);
        w.flush()?;
        // Written now, read back per partition: 2 passes of spill I/O.
        self.stats.spill_pages += 2 * off.div_ceil(PAGE_SIZE as u64);
        Ok(Spill {
            path,
            offsets,
            schema: chunk.schema.clone(),
        })
    }

    fn read_partition(&mut self, spill: &Spill, p: usize) -> io::Result<Chunk> {
        let (start, end) = (spill.offsets[p], spill.offsets[p + 1]);
        let mut data = vec![0u8; (end - start) as usize];
        let mut f = File::open(&spill.path)?;
        use std::io::Seek;
        f.seek(io::SeekFrom::Start(start))?;
        f.read_exact(&mut data)?;
        let rows = data.len().checked_div(spill.schema.width).unwrap_or(0) as u64;
        Ok(Chunk {
            schema: spill.schema.clone(),
            data,
            rows,
        })
    }

    fn merge_join(
        &mut self,
        left: Chunk,
        right: Chunk,
        keys: &[(ColumnId, ColumnId)],
    ) -> Result<Chunk, ExecError> {
        if keys.is_empty() {
            return self.cross_join(left, right);
        }
        let (lcol, rcol) = join_columns(&left.schema, &right.schema, keys[0])
            .ok_or_else(|| ExecError::Io(missing_key_err(keys[0])))?;
        let residual = residual_columns(&left.schema, &right.schema, &keys[1..]);
        let lsorted = self.sort_by_key(&left, lcol)?;
        let rsorted = self.sort_by_key(&right, rcol)?;
        let mut out = Chunk {
            schema: left.schema.concat(&right.schema),
            data: Vec::new(),
            rows: 0,
        };
        let (mut li, mut ri) = (0usize, 0usize);
        while li < lsorted.len() && ri < rsorted.len() {
            let (lk, lrow) = &lsorted[li];
            let (rk, _) = &rsorted[ri];
            match lk.cmp(rk) {
                std::cmp::Ordering::Less => li += 1,
                std::cmp::Ordering::Greater => ri += 1,
                std::cmp::Ordering::Equal => {
                    // Emit the cross product of the equal-key groups.
                    let mut rj = ri;
                    while rj < rsorted.len() && rsorted[rj].0 == *lk {
                        let rrow = &rsorted[rj].1;
                        self.stats.rows += 1;
                        if residual.iter().all(|&(lc, rc)| {
                            left.schema.value(lrow, lc) == right.schema.value(rrow, rc)
                        }) && out.rows < ROW_CAP
                        {
                            out.data.extend_from_slice(lrow);
                            out.data.extend_from_slice(rrow);
                            out.rows += 1;
                        }
                        rj += 1;
                    }
                    li += 1;
                    if li % CHECK_EVERY as usize == 0 {
                        self.check_budget()?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Extracts `(key, row)` pairs sorted by `(key, input order)`.
    fn sort_by_key(
        &mut self,
        chunk: &Chunk,
        col: crate::heap::Column,
    ) -> Result<Vec<(u64, Vec<u8>)>, ExecError> {
        let mut rows: Vec<(u64, Vec<u8>)> = (0..chunk.rows)
            .map(|i| {
                let row = chunk.row(i);
                (chunk.schema.value(row, col), row.to_vec())
            })
            .collect();
        self.stats.rows += chunk.rows;
        rows.sort_by_key(|r| r.0); // stable: input order breaks ties
        self.charge_sort_spill(chunk.bytes())?;
        Ok(rows)
    }

    fn index_nest_loop(
        &mut self,
        outer: Chunk,
        inner_node: &PlanNode,
        idx: &StoredIndex,
        keys: &[(ColumnId, ColumnId)],
    ) -> Result<Chunk, ExecError> {
        let inner_table = match inner_node.op {
            PlanOp::IndexScan { table, .. } | PlanOp::SeqScan { table, .. } => table,
            _ => idx.table,
        };
        let inner_heap = self.heap(inner_table)?.clone();
        // keys are (outer, inner); the first drives the index.
        let (ocol, _) = keys[0];
        let Some(ocol) = outer.schema.find(ocol) else {
            return Err(ExecError::Io(missing_key_err(keys[0])));
        };
        let residual = residual_columns(&outer.schema, &inner_heap.schema, &keys[1..]);
        let mut out = Chunk {
            schema: outer.schema.concat(&inner_heap.schema),
            data: Vec::new(),
            rows: 0,
        };
        for i in 0..outer.rows {
            let orow = outer.row(i).to_vec();
            let k = outer.schema.value(&orow, ocol);
            let rids = idx.tree.probe(self.pool, k)?;
            self.stats.descents += 1;
            for rid in rids {
                let irow = inner_heap.fetch(self.pool, rid)?;
                self.stats.rows += 1;
                if residual.iter().all(|&(oc, ic)| {
                    outer.schema.value(&orow, oc) == inner_heap.schema.value(&irow, ic)
                }) && out.rows < ROW_CAP
                {
                    out.data.extend_from_slice(&orow);
                    out.data.extend_from_slice(&irow);
                    out.rows += 1;
                }
            }
            if i % CHECK_EVERY == CHECK_EVERY - 1 {
                self.check_budget()?;
            }
        }
        Ok(out)
    }

    fn cross_join(&mut self, left: Chunk, right: Chunk) -> Result<Chunk, ExecError> {
        let mut out = Chunk {
            schema: left.schema.concat(&right.schema),
            data: Vec::new(),
            rows: 0,
        };
        'outer: for i in 0..left.rows {
            let lrow = left.row(i);
            for j in 0..right.rows {
                if out.rows >= ROW_CAP {
                    break 'outer;
                }
                out.data.extend_from_slice(lrow);
                out.data.extend_from_slice(right.row(j));
                out.rows += 1;
                self.stats.rows += 1;
                if out.rows.is_multiple_of(CHECK_EVERY) {
                    self.check_budget()?;
                }
            }
        }
        Ok(out)
    }

    // ---- sort / aggregate ----

    /// ORDER BY: the analyzer records only *how many* sort columns exist,
    /// so the store sorts by whole-row bytes — deterministic, with the
    /// same memory/spill profile as any other total order.
    fn sort(&mut self, input: Chunk) -> Result<Chunk, ExecError> {
        let width = input.schema.width;
        if width == 0 || input.rows <= 1 {
            return Ok(input);
        }
        self.stats.rows += input.rows;
        let bytes = input.bytes();
        if bytes <= self.work_mem_eff {
            let mut rows: Vec<&[u8]> = (0..input.rows).map(|i| input.row(i)).collect();
            rows.sort();
            let mut data = Vec::with_capacity(input.data.len());
            for r in rows {
                data.extend_from_slice(r);
            }
            return Ok(Chunk {
                schema: input.schema,
                data,
                rows: input.rows,
            });
        }
        // External merge sort: sorted runs of work_mem_eff bytes spilled to
        // a temp file, then a k-way merge.
        self.stats.spills += 1;
        let rows_per_run = (self.work_mem_eff.max(width as u64) / width as u64).max(1);
        let path = self.temp_path();
        let mut w = BufWriter::new(File::create(&path)?);
        let mut run_bounds = vec![0u64];
        let mut i = 0u64;
        while i < input.rows {
            let end = (i + rows_per_run).min(input.rows);
            let mut run: Vec<&[u8]> = (i..end).map(|r| input.row(r)).collect();
            run.sort();
            for r in &run {
                w.write_all(r)?;
            }
            run_bounds.push(end * width as u64);
            i = end;
        }
        w.flush()?;
        self.stats.spill_pages += 2 * bytes.div_ceil(PAGE_SIZE as u64);
        drop(w);
        // Merge: read every run back and heap-merge.
        let mut file = File::open(&path)?;
        let mut all = Vec::with_capacity(input.data.len());
        file.read_to_end(&mut all)?;
        remove_temp(&path);
        let mut cursors: Vec<(usize, usize)> = run_bounds
            .windows(2)
            .map(|wd| (wd[0] as usize, wd[1] as usize))
            .collect();
        let mut data = Vec::with_capacity(input.data.len());
        let mut emitted = 0u64;
        while emitted < input.rows {
            // Smallest head among runs (first run wins ties: stable).
            let mut best: Option<usize> = None;
            for (ci, &(start, end)) in cursors.iter().enumerate() {
                if start >= end {
                    continue;
                }
                let cand = &all[start..start + width];
                match best {
                    None => best = Some(ci),
                    Some(b) => {
                        let bhead = &all[cursors[b].0..cursors[b].0 + width];
                        if cand < bhead {
                            best = Some(ci);
                        }
                    }
                }
            }
            let b = best.expect("rows remain but no run has data");
            data.extend_from_slice(&all[cursors[b].0..cursors[b].0 + width]);
            cursors[b].0 += width;
            emitted += 1;
            if emitted.is_multiple_of(CHECK_EVERY) {
                self.check_budget()?;
            }
        }
        Ok(Chunk {
            schema: input.schema,
            data,
            rows: input.rows,
        })
    }

    /// Charges spill I/O for a sort-like operator that had to materialize
    /// `bytes` beyond work memory (merge-join inputs).
    fn charge_sort_spill(&mut self, bytes: u64) -> Result<(), ExecError> {
        if bytes > self.work_mem_eff {
            self.stats.spills += 1;
            self.stats.spill_pages += 2 * bytes.div_ceil(PAGE_SIZE as u64);
        }
        self.check_budget()
    }

    /// GROUP BY groups on the first schema column (the analyzer keeps only
    /// the group-key *count*); scalar aggregates reduce to one row.
    fn aggregate(&mut self, input: Chunk, grouped: bool) -> Result<Chunk, ExecError> {
        self.stats.rows += input.rows;
        if !grouped || input.schema.width == 0 {
            let row = if input.rows > 0 {
                input.row(0).to_vec()
            } else {
                vec![0u8; input.schema.width]
            };
            return Ok(Chunk {
                schema: input.schema,
                data: row,
                rows: 1,
            });
        }
        let key_col = input.schema.cols[0];
        let mut seen: HashSet<u64> = HashSet::new();
        let mut reps: Vec<u64> = Vec::new(); // first row index per group
        for i in 0..input.rows {
            let k = input.schema.value(input.row(i), key_col);
            if seen.insert(k) {
                reps.push(i);
            }
        }
        self.check_budget()?;
        let mut out = Chunk {
            schema: input.schema.clone(),
            data: Vec::with_capacity(reps.len() * input.schema.width),
            rows: 0,
        };
        for i in reps {
            out.push_row(input.row(i)); // first-seen order: deterministic
        }
        Ok(out)
    }

    // ---- helpers ----

    fn heap(&self, table: TableId) -> Result<&'a Heap, ExecError> {
        self.heaps.get(&table).ok_or_else(|| {
            ExecError::Io(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no heap loaded for {table}"),
            ))
        })
    }

    fn true_selectivity(&self, table: TableId) -> f64 {
        match self.preds.filters.get(&table) {
            Some(terms) => self.est.true_table_selectivity(terms),
            None => 1.0,
        }
    }

    /// True/estimated selectivity ratio, clamped like the simulator's.
    fn true_misfactor(&self, table: TableId) -> f64 {
        match self.preds.filters.get(&table) {
            Some(terms) => {
                let est = self.est.estimated_table_selectivity(terms);
                let tru = self.est.true_table_selectivity(terms);
                (tru / est).clamp(1.0 / 27.0, 27.0)
            }
            None => 1.0,
        }
    }

    fn temp_path(&mut self) -> PathBuf {
        self.temp_seq += 1;
        self.temp_dir.join(format!("spill_{}.tmp", self.temp_seq))
    }
}

/// One partitioned spill file: bucket byte ranges within it.
struct Spill {
    path: PathBuf,
    offsets: Vec<u64>,
    schema: Schema,
}

fn remove_temp(path: &Path) {
    let _ = std::fs::remove_file(path);
}

fn missing_key_err(key: (ColumnId, ColumnId)) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("join key {key:?} not present in child schemas"),
    )
}

/// Resolves a join key pair against two child schemas, trying both
/// orientations (the optimizer's pair order follows the join's logical
/// sides, which may be swapped relative to this operator's children).
fn join_columns(
    left: &Schema,
    right: &Schema,
    key: (ColumnId, ColumnId),
) -> Option<(crate::heap::Column, crate::heap::Column)> {
    if let (Some(l), Some(r)) = (left.find(key.0), right.find(key.1)) {
        return Some((l, r));
    }
    if let (Some(l), Some(r)) = (left.find(key.1), right.find(key.0)) {
        return Some((l, r));
    }
    None
}

/// Resolves the residual (non-driving) key pairs; unresolvable pairs are
/// dropped (they would have been skipped by the planner's cost model too).
fn residual_columns(
    left: &Schema,
    right: &Schema,
    keys: &[(ColumnId, ColumnId)],
) -> Vec<(crate::heap::Column, crate::heap::Column)> {
    keys.iter()
        .filter_map(|&k| join_columns(left, right, k))
        .collect()
}

/// Deterministic Bernoulli filter: keep `rid` iff its hash fraction falls
/// under the true selectivity.
fn keep_row(fseed: u64, rid: u64, sel: f64) -> bool {
    if sel >= 1.0 {
        return true;
    }
    let h = mix(fseed ^ rid.wrapping_mul(0x2545_F491_4F6C_DD1D));
    ((h >> 11) as f64 / (1u64 << 53) as f64) < sel
}

/// Hashes a filter-term set into the Bernoulli seed ([`FilterKind`] carries
/// no `Hash` impl, so terms are folded by hand).
fn filter_seed(table: TableId, terms: &[FilterTerm]) -> u64 {
    let mut h =
        0x9E37_79B9_7F4A_7C15u64 ^ (table.index() as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    for t in terms {
        let tag: u64 = match t.kind {
            FilterKind::Equality => 1,
            FilterKind::Inequality => 2,
            FilterKind::Range => 3,
            FilterKind::Between => 4,
            FilterKind::LikePrefix => 5,
            FilterKind::LikeContains => 6,
            FilterKind::InList(n) => (7u64 << 32) | n as u64,
            FilterKind::IsNull => 8,
            FilterKind::IsNotNull => 9,
            FilterKind::SemiJoin => 10,
            FilterKind::AntiJoin => 11,
        };
        h = mix(h ^ (t.column.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ tag);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::write_value;
    use lt_dbms::Catalog;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lt_store_exec_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("orders", 2000)
            .primary_key("o_orderkey", 8)
            .column("o_totalprice", 8, 1000.0)
            .finish();
        c.add_table("lineitem", 8000)
            .foreign_key("l_orderkey", 8, 2000.0)
            .column("l_quantity", 8, 50.0)
            .finish();
        c
    }

    struct Fixture {
        dir: PathBuf,
        pool: BufferPool,
        heaps: BTreeMap<TableId, Heap>,
        catalog: Catalog,
    }

    fn fixture(tag: &str, pool_frames: usize) -> Fixture {
        let dir = tmpdir(tag);
        let mut pool =
            BufferPool::open(&dir.join("data.pages"), &dir.join("redo.wal"), pool_frames).unwrap();
        let catalog = catalog();
        let mut heaps = BTreeMap::new();
        for t in catalog.tables() {
            let schema = Schema::of_table(&catalog, t.id);
            let cols: Vec<_> = t
                .columns
                .iter()
                .map(|&c| catalog.column(c).clone())
                .collect();
            let heap = Heap::build(&mut pool, t.id, schema.clone(), t.rows, |i, row| {
                for (ci, col) in cols.iter().enumerate() {
                    let off = schema.cols[ci].offset;
                    let w = schema.cols[ci].width;
                    let v = crate::datagen::column_value(42, col, 1.0, i);
                    write_value(&mut row[off..off + w], v);
                }
            })
            .unwrap();
            heaps.insert(t.id, heap);
        }
        Fixture {
            dir,
            pool,
            heaps,
            catalog,
        }
    }

    fn scan_node(c: &Catalog, name: &str) -> PlanNode {
        let t = c.table_by_name(name).unwrap();
        PlanNode::leaf(
            PlanOp::SeqScan {
                table: t,
                selectivity: 1.0,
            },
            c.table(t).rows as f64,
            1.0,
            16.0,
        )
    }

    fn run(f: &mut Fixture, node: &PlanNode, work_mem: u64) -> (Chunk, ExecStats) {
        let est = Estimator::new(&f.catalog, 7);
        let preds = QueryPredicates::default();
        let indexes = BTreeMap::new();
        let mut ex = Executor::new(
            &mut f.pool,
            &f.heaps,
            &indexes,
            &est,
            &preds,
            work_mem,
            &f.dir,
            None,
        );
        let out = ex.run(node).unwrap();
        (out, ex.stats)
    }

    #[test]
    fn seq_scan_returns_all_rows_without_filters() {
        let mut f = fixture("scan", 64);
        let node = scan_node(&f.catalog, "orders");
        let (out, stats) = run(&mut f, &node, 1 << 20);
        assert_eq!(out.rows, 2000);
        assert_eq!(stats.rows, 2000);
        let _ = std::fs::remove_dir_all(&f.dir);
    }

    #[test]
    fn hash_join_matches_fk_rate_and_spills_under_small_work_mem() {
        let mut f = fixture("join", 64);
        let ok = f.catalog.resolve_column(None, "o_orderkey").unwrap();
        let lk = f.catalog.resolve_column(None, "l_orderkey").unwrap();
        let join = PlanNode {
            op: PlanOp::HashJoin {
                keys: vec![(lk, ok)],
                spills: false,
            },
            children: vec![
                scan_node(&f.catalog, "lineitem"),
                scan_node(&f.catalog, "orders"),
            ],
            est_rows: 8000.0,
            est_cost: 1.0,
            width: 32.0,
        };
        // Plenty of memory: no spill; every lineitem matches exactly one pk.
        let (out, stats) = run(&mut f, &join, 16 << 20);
        assert_eq!(out.rows, 8000);
        assert_eq!(stats.spills, 0);
        // Tiny work memory: identical result, via Grace partitioning...
        let (out2, stats2) = run(&mut f, &join, 4096);
        assert_eq!(out2.rows, 8000);
        assert_eq!(stats2.spills, 1);
        assert!(stats2.spill_pages > 0);
        // ...with the same multiset of rows (partition order differs).
        let w = out.schema.width;
        let mut a: Vec<&[u8]> = out.data.chunks(w).collect();
        let mut b: Vec<&[u8]> = out2.data.chunks(w).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        let _ = std::fs::remove_dir_all(&f.dir);
    }

    #[test]
    fn sort_spills_and_stays_sorted() {
        let mut f = fixture("sort", 64);
        let sort = PlanNode {
            op: PlanOp::Sort { spills: false },
            children: vec![scan_node(&f.catalog, "lineitem")],
            est_rows: 8000.0,
            est_cost: 1.0,
            width: 16.0,
        };
        let (big, s_big) = run(&mut f, &sort, 16 << 20);
        assert_eq!(s_big.spills, 0);
        let (small, s_small) = run(&mut f, &sort, 8192);
        assert_eq!(s_small.spills, 1);
        assert_eq!(small.rows, 8000);
        // External and in-memory sorts agree byte for byte.
        assert_eq!(big.data, small.data);
        let w = small.schema.width;
        assert!(small
            .data
            .chunks(w)
            .zip(small.data.chunks(w).skip(1))
            .all(|(a, b)| a <= b));
        let _ = std::fs::remove_dir_all(&f.dir);
    }

    #[test]
    fn aggregate_groups_deterministically() {
        let mut f = fixture("agg", 64);
        let agg = PlanNode {
            op: PlanOp::Aggregate { grouped: true },
            children: vec![scan_node(&f.catalog, "lineitem")],
            est_rows: 800.0,
            est_cost: 1.0,
            width: 16.0,
        };
        let (a, _) = run(&mut f, &agg, 1 << 20);
        let (b, _) = run(&mut f, &agg, 1 << 20);
        assert_eq!(a.data, b.data);
        // l_orderkey has ~2000 distinct values over 8000 rows.
        assert!(a.rows > 1000 && a.rows <= 2000, "groups={}", a.rows);
        let _ = std::fs::remove_dir_all(&f.dir);
    }

    #[test]
    fn timeout_cuts_on_proxy_budget() {
        let mut f = fixture("timeout", 64);
        let node = scan_node(&f.catalog, "lineitem");
        let est = Estimator::new(&f.catalog, 7);
        let preds = QueryPredicates::default();
        let indexes = BTreeMap::new();
        let mut ex = Executor::new(
            &mut f.pool,
            &f.heaps,
            &indexes,
            &est,
            &preds,
            1 << 20,
            &f.dir,
            Some(0.0),
        );
        assert!(matches!(ex.run(&node), Err(ExecError::Timeout)));
        let _ = std::fs::remove_dir_all(&f.dir);
    }
}
