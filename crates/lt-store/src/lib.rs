//! `lt-store`: a real persistent storage engine as a second tuning target.
//!
//! The rest of the workspace tunes [`lt_dbms::SimDb`], a virtual-time
//! simulator. This crate provides a target whose costs are *measured*, not
//! modelled: slotted heap pages with checksums ([`page`]), a clock-eviction
//! buffer pool whose hit rate genuinely responds to `shared_buffers`-style
//! sizing ([`buffer`]), a B+tree with secondary-index support ([`btree`]),
//! physical redo logging on the shared WAL frame layer ([`redo`]), and a
//! chunked executor whose sorts and hash joins spill to real temp files when
//! `work_mem` is exceeded ([`exec`]).
//!
//! [`StoreDb`] wires those into [`lt_dbms::TuningTarget`]: it *plans* on
//! the full-scale catalog with the same optimizer and statistics seed as
//! `SimDb` (identical plan trees, prompts and snippet extraction), then
//! *executes* each plan against a scaled-down physical replica
//! (`LT_STORE_SCALE`), mapping memory knobs proportionally. Because data
//! size and memory budgets shrink by the same factor, cache-fit and
//! spill behaviour mirror the full-scale deployment.
//!
//! The `store_bench` binary (in `lt-bench`) closes the loop: it sweeps
//! knobs on lt-store, fits the simulator's [`lt_dbms::CostConstants`], and
//! reports per-benchmark residuals to `results/BENCH_store.json`.

pub mod btree;
pub mod buffer;
pub mod datagen;
pub mod db;
pub mod exec;
pub mod heap;
pub mod page;
pub mod redo;

pub use btree::BTree;
pub use buffer::{BpStats, BufferPool};
pub use db::StoreDb;
pub use heap::{Heap, Schema};
pub use redo::RedoLog;
