//! Table heaps: fixed-schema rows in slotted pages.
//!
//! Rows are encoded with the catalog's column widths — each column stores
//! its `u64` value little-endian in the first `min(8, width)` bytes and
//! zero-pads the rest, so physical row width equals the catalog's
//! `row_width` and heap page counts line up with what the planner prices.
//!
//! A row id (rid) packs `(page index within the heap) << SLOT_BITS | slot`;
//! rids are stable for the lifetime of the store (the engine is bulk-load +
//! read-mostly, like the OLAP workloads it serves).

use crate::buffer::BufferPool;
use crate::page::{self, PageKind};
use lt_common::{ColumnId, TableId};
use lt_dbms::Catalog;
use std::io;

/// Bits reserved for the slot within a rid. 8 KiB / (8-byte row + 4-byte
/// slot) bounds slots per page well under 1024.
pub const SLOT_BITS: u64 = 10;

/// Packs a rid from heap-page index and slot.
pub fn rid(page_index: u64, slot: u16) -> u64 {
    debug_assert!((slot as u64) < (1 << SLOT_BITS));
    (page_index << SLOT_BITS) | slot as u64
}

/// Physical layout of one column within a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Column {
    /// Catalog column id.
    pub id: ColumnId,
    /// Byte offset within the row.
    pub offset: usize,
    /// Stored width in bytes.
    pub width: usize,
}

/// Row layout: column order, offsets and total width.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    /// Columns in storage order.
    pub cols: Vec<Column>,
    /// Total row width in bytes.
    pub width: usize,
}

impl Schema {
    /// The storage schema of a base table (declaration order, catalog
    /// widths).
    pub fn of_table(catalog: &Catalog, table: TableId) -> Schema {
        let mut cols = Vec::new();
        let mut offset = 0usize;
        for &cid in &catalog.table(table).columns {
            let width = catalog.column(cid).width as usize;
            cols.push(Column {
                id: cid,
                offset,
                width,
            });
            offset += width;
        }
        Schema {
            cols,
            width: offset,
        }
    }

    /// Schema of `self`'s row followed by `other`'s (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.clone();
        for c in &other.cols {
            cols.push(Column {
                id: c.id,
                offset: c.offset + self.width,
                width: c.width,
            });
        }
        Schema {
            cols,
            width: self.width + other.width,
        }
    }

    /// Locates a column in this layout.
    pub fn find(&self, id: ColumnId) -> Option<Column> {
        self.cols.iter().copied().find(|c| c.id == id)
    }

    /// Reads a column's value from an encoded row.
    pub fn value(&self, row: &[u8], col: Column) -> u64 {
        read_value(&row[col.offset..col.offset + col.width])
    }
}

/// Writes `value` into a column slot (LE in the first `min(8, width)`
/// bytes, zero padding beyond).
pub fn write_value(slot: &mut [u8], value: u64) {
    let n = slot.len().min(8);
    slot[..n].copy_from_slice(&value.to_le_bytes()[..n]);
    for b in &mut slot[n..] {
        *b = 0;
    }
}

/// Reads a column value (inverse of [`write_value`]).
pub fn read_value(slot: &[u8]) -> u64 {
    let n = slot.len().min(8);
    let mut bytes = [0u8; 8];
    bytes[..n].copy_from_slice(&slot[..n]);
    u64::from_le_bytes(bytes)
}

/// One table's heap: its pages in order, row count and layout.
#[derive(Debug, Clone)]
pub struct Heap {
    /// Owning table.
    pub table: TableId,
    /// Page numbers in allocation order (`rid >> SLOT_BITS` indexes this).
    pub pages: Vec<u64>,
    /// Total stored rows.
    pub rows: u64,
    /// Row layout.
    pub schema: Schema,
}

impl Heap {
    /// Bulk-loads `rows` rows produced by `gen(row_index, &mut row_buf)`
    /// into fresh pages.
    pub fn build(
        pool: &mut BufferPool,
        table: TableId,
        schema: Schema,
        rows: u64,
        mut gen: impl FnMut(u64, &mut [u8]),
    ) -> io::Result<Heap> {
        let mut heap = Heap {
            table,
            pages: Vec::new(),
            rows: 0,
            schema,
        };
        let mut row = vec![0u8; heap.schema.width.max(1)];
        let owner = table.index() as u16;
        let mut current: Option<u64> = None;
        for i in 0..rows {
            gen(i, &mut row);
            loop {
                let page_no = match current {
                    Some(p) => p,
                    None => {
                        let p = pool.alloc_page();
                        pool.with_page_mut(p, |buf| page::init(buf, PageKind::Heap, owner))?;
                        heap.pages.push(p);
                        current = Some(p);
                        p
                    }
                };
                let inserted = pool.with_page_mut(page_no, |buf| page::insert(buf, &row))?;
                match inserted {
                    Some(_) => break,
                    None => current = None, // page full: open a fresh one
                }
            }
            heap.rows += 1;
        }
        Ok(heap)
    }

    /// Calls `f(rid, row_bytes)` for every stored row, in rid order.
    pub fn for_each_row(
        &self,
        pool: &mut BufferPool,
        mut f: impl FnMut(u64, &[u8]),
    ) -> io::Result<()> {
        for (pi, &page_no) in self.pages.iter().enumerate() {
            pool.with_page(page_no, |buf| {
                for slot in 0..page::count(buf) {
                    f(rid(pi as u64, slot), page::get(buf, slot));
                }
            })?;
        }
        Ok(())
    }

    /// Fetches one row by rid (random access through the pool — the misses
    /// this produces are what makes index scans pay for scattered heap
    /// lookups).
    pub fn fetch(&self, pool: &mut BufferPool, rid: u64) -> io::Result<Vec<u8>> {
        let page_no = self.pages[(rid >> SLOT_BITS) as usize];
        let slot = (rid & ((1 << SLOT_BITS) - 1)) as u16;
        pool.with_page(page_no, |buf| page::get(buf, slot).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lt_store_heap_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn small_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("t", 1000)
            .primary_key("t_key", 8)
            .column("t_val", 4, 100.0)
            .column("t_pad", 20, 10.0)
            .finish();
        c
    }

    #[test]
    fn value_codec_respects_narrow_widths() {
        let mut slot = [0u8; 4];
        write_value(&mut slot, 0x1_0000_0001); // truncated to 4 bytes
        assert_eq!(read_value(&slot), 1);
        let mut wide = [0u8; 20];
        write_value(&mut wide, 0xDEAD_BEEF);
        assert_eq!(read_value(&wide), 0xDEAD_BEEF);
        assert!(wide[8..].iter().all(|&b| b == 0));
    }

    #[test]
    fn build_scan_fetch_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut pool =
            BufferPool::open(&dir.join("data.pages"), &dir.join("redo.wal"), 16).unwrap();
        let catalog = small_catalog();
        let table = catalog.table_by_name("t").unwrap();
        let schema = Schema::of_table(&catalog, table);
        assert_eq!(schema.width, 32);
        let heap = Heap::build(&mut pool, table, schema.clone(), 1000, |i, row| {
            write_value(&mut row[0..8], i);
            write_value(&mut row[8..12], i * 3);
        })
        .unwrap();
        assert_eq!(heap.rows, 1000);
        // 8192-16 header = 8176; 32+4 per row → 227 rows/page → 5 pages.
        assert_eq!(heap.pages.len(), 5);

        let key = schema.find(catalog.table(table).columns[0]).unwrap();
        let val = schema.find(catalog.table(table).columns[1]).unwrap();
        let mut seen = 0u64;
        let mut rids = Vec::new();
        heap.for_each_row(&mut pool, |rid, row| {
            assert_eq!(schema.value(row, key), seen);
            assert_eq!(schema.value(row, val), seen * 3);
            rids.push(rid);
            seen += 1;
        })
        .unwrap();
        assert_eq!(seen, 1000);

        // Random fetch by rid matches the scan.
        let row = heap.fetch(&mut pool, rids[777]).unwrap();
        assert_eq!(schema.value(&row, key), 777);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
