//! Clock-eviction buffer pool over a single page file.
//!
//! All page access goes through [`BufferPool::with_page`] /
//! [`BufferPool::with_page_mut`]: the pool serves the frame on a hit,
//! otherwise it reads the page from the data file (verifying its checksum),
//! evicting a victim chosen by the clock (second-chance) sweep when full.
//! Evicting a *dirty* frame first appends the page's after-image to the
//! redo log — the write-ahead rule — then seals and writes it back.
//!
//! The capacity is derived from the active `shared_buffers`-style knob (see
//! [`crate::db::StoreDb::apply_knobs`]); shrinking evicts immediately, so a
//! re-configuration has the same cold-cache effect a restart would.
//! Hit/miss/eviction counters are the store's observable response to pool
//! sizing — the signal the cost-model calibration fits against.

use crate::page::{self, PAGE_SIZE};
use crate::redo::RedoLog;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Floor on the pool size: fewer frames than this and the clock degenerates
/// into thrashing on a single hot page chain.
pub const MIN_FRAMES: usize = 8;

/// Buffer-pool counters (cumulative for the pool's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read the data file.
    pub misses: u64,
    /// Frames evicted to make room (or by a pool shrink).
    pub evictions: u64,
    /// Dirty-page write-backs to the data file.
    pub writes: u64,
}

impl BpStats {
    /// Hit fraction over all page requests (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page_no: u64,
    buf: Vec<u8>,
    dirty: bool,
    refbit: bool,
}

/// The buffer pool. Owns the data file and the redo log so the
/// write-ahead ordering cannot be bypassed.
pub struct BufferPool {
    file: File,
    frames: Vec<Frame>,
    map: HashMap<u64, usize>,
    hand: usize,
    capacity: usize,
    npages: u64,
    redo: RedoLog,
    /// Cumulative counters; see [`BpStats`].
    pub stats: BpStats,
}

impl BufferPool {
    /// Opens the pool over `data` with `capacity` frames, logging dirty
    /// write-backs to `redo`.
    pub fn open(data: &Path, redo: &Path, capacity: usize) -> io::Result<BufferPool> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(data)?;
        let len = file.metadata()?.len();
        Ok(BufferPool {
            file,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            capacity: capacity.max(MIN_FRAMES),
            npages: len / PAGE_SIZE as u64,
            redo: RedoLog::open(redo)?,
            stats: BpStats::default(),
        })
    }

    /// Number of allocated pages.
    pub fn npages(&self) -> u64 {
        self.npages
    }

    /// Current frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Page images appended to the redo log so far.
    pub fn wal_appends(&self) -> u64 {
        self.redo.appends()
    }

    /// Allocates a fresh zeroed page and returns its number. The page is
    /// materialized lazily — it joins the pool dirty on first write.
    pub fn alloc_page(&mut self) -> u64 {
        let page_no = self.npages;
        self.npages += 1;
        page_no
    }

    /// Resizes the pool to `capacity` frames, evicting immediately when
    /// shrinking (a smaller `shared_buffers` after restart keeps nothing).
    pub fn resize(&mut self, capacity: usize) -> io::Result<()> {
        self.capacity = capacity.max(MIN_FRAMES);
        while self.frames.len() > self.capacity {
            self.evict_one()?;
        }
        Ok(())
    }

    /// Runs `f` over the page's bytes (read-only intent: the frame is not
    /// marked dirty).
    pub fn with_page<R>(&mut self, page_no: u64, f: impl FnOnce(&[u8]) -> R) -> io::Result<R> {
        let idx = self.fetch(page_no)?;
        let frame = &mut self.frames[idx];
        frame.refbit = true;
        Ok(f(&frame.buf))
    }

    /// Runs `f` over the page's bytes and marks the frame dirty.
    pub fn with_page_mut<R>(
        &mut self,
        page_no: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> io::Result<R> {
        let idx = self.fetch(page_no)?;
        let frame = &mut self.frames[idx];
        frame.refbit = true;
        frame.dirty = true;
        Ok(f(&mut frame.buf))
    }

    /// Writes every dirty frame back (after logging) and truncates the redo
    /// log: the data file becomes the checkpoint.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                self.write_back(i)?;
            }
        }
        self.file.flush()?;
        self.redo.checkpoint()
    }

    /// Flushes dirty frames without truncating the log (crash-consistent
    /// point without declaring a checkpoint).
    pub fn flush(&mut self) -> io::Result<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                self.write_back(i)?;
            }
        }
        self.redo.sync()?;
        self.file.flush()
    }

    // ---- internals ----

    fn fetch(&mut self, page_no: u64) -> io::Result<usize> {
        assert!(page_no < self.npages, "page {page_no} not allocated");
        if let Some(&idx) = self.map.get(&page_no) {
            self.stats.hits += 1;
            return Ok(idx);
        }
        self.stats.misses += 1;
        let buf = self.read_from_file(page_no)?;
        let idx = if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page_no,
                buf,
                dirty: false,
                refbit: true,
            });
            self.frames.len() - 1
        } else {
            let victim = self.evict_one()?;
            self.frames[victim] = Frame {
                page_no,
                buf,
                dirty: false,
                refbit: true,
            };
            victim
        };
        self.map.insert(page_no, idx);
        Ok(idx)
    }

    fn read_from_file(&mut self, page_no: u64) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; PAGE_SIZE];
        let offset = page_no * PAGE_SIZE as u64;
        let len = self.file.metadata()?.len();
        if offset + PAGE_SIZE as u64 <= len {
            self.file.seek(SeekFrom::Start(offset))?;
            self.file.read_exact(&mut buf)?;
            // A freshly allocated page region is all zeroes until first
            // sealed; only verify pages that have been written.
            if buf.iter().any(|&b| b != 0) && !page::verify(&buf) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("checksum mismatch on page {page_no}"),
                ));
            }
        }
        Ok(buf)
    }

    /// Picks a clock victim, writes it back if dirty, removes it from the
    /// map, and returns its (now reusable) frame index.
    fn evict_one(&mut self) -> io::Result<usize> {
        assert!(!self.frames.is_empty(), "evict from empty pool");
        loop {
            if self.hand >= self.frames.len() {
                self.hand = 0;
            }
            let i = self.hand;
            self.hand += 1;
            if self.frames[i].refbit {
                self.frames[i].refbit = false;
                continue;
            }
            if self.frames[i].dirty {
                self.write_back(i)?;
            }
            self.map.remove(&self.frames[i].page_no);
            self.stats.evictions += 1;
            // When shrinking, physically drop the frame; the caller that
            // needs a slot re-checks `frames.len()`.
            if self.frames.len() > self.capacity {
                let last = self.frames.len() - 1;
                if i != last {
                    self.frames.swap(i, last);
                    let moved = self.frames[i].page_no;
                    self.map.insert(moved, i);
                }
                self.frames.pop();
                return Ok(self.frames.len()); // slot no longer exists
            }
            return Ok(i);
        }
    }

    /// Logs the page image (write-ahead), seals the checksum, writes the
    /// page to the data file, and clears the dirty bit.
    fn write_back(&mut self, idx: usize) -> io::Result<()> {
        let page_no = self.frames[idx].page_no;
        page::seal(&mut self.frames[idx].buf);
        self.redo.log_page(page_no, &self.frames[idx].buf)?;
        self.file
            .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        self.file.write_all(&self.frames[idx].buf)?;
        self.stats.writes += 1;
        self.frames[idx].dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lt_store_bp_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn pool_in(dir: &Path, cap: usize) -> BufferPool {
        BufferPool::open(&dir.join("data.pages"), &dir.join("redo.wal"), cap).unwrap()
    }

    fn fill_pages(pool: &mut BufferPool, n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| {
                let p = pool.alloc_page();
                pool.with_page_mut(p, |buf| {
                    page::init(buf, page::PageKind::Heap, i as u16);
                    page::insert(buf, format!("page {i}").as_bytes()).unwrap();
                })
                .unwrap();
                p
            })
            .collect()
    }

    #[test]
    fn pages_survive_eviction_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut pool = pool_in(&dir, MIN_FRAMES);
        let pages = fill_pages(&mut pool, 40);
        // 40 pages through 8 frames: everything cycles through disk.
        for (i, &p) in pages.iter().enumerate() {
            let owner = pool.with_page(p, page::owner).unwrap();
            assert_eq!(owner, i as u16);
            let rec = pool.with_page(p, |buf| page::get(buf, 0).to_vec()).unwrap();
            assert_eq!(rec, format!("page {i}").as_bytes());
        }
        assert!(pool.stats.evictions > 0);
        assert!(pool.wal_appends() > 0, "dirty evictions must log images");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bigger_pool_hits_more() {
        let run = |cap: usize| {
            let dir = tmpdir(&format!("hitrate{cap}"));
            let mut pool = pool_in(&dir, cap);
            let pages = fill_pages(&mut pool, 64);
            pool.checkpoint().unwrap();
            let before = pool.stats;
            for _ in 0..3 {
                for &p in &pages {
                    pool.with_page(p, |_| ()).unwrap();
                }
            }
            let hits = pool.stats.hits - before.hits;
            let misses = pool.stats.misses - before.misses;
            let _ = std::fs::remove_dir_all(&dir);
            hits as f64 / (hits + misses) as f64
        };
        let small = run(MIN_FRAMES);
        let large = run(128);
        assert!(
            large > small,
            "hit rate must grow with capacity: small={small} large={large}"
        );
        assert_eq!(large, 1.0, "64 pages fit fully in 128 frames");
    }

    #[test]
    fn shrink_evicts_down_to_capacity() {
        let dir = tmpdir("shrink");
        let mut pool = pool_in(&dir, 64);
        fill_pages(&mut pool, 50);
        assert!(pool.frames.len() > MIN_FRAMES);
        pool.resize(MIN_FRAMES).unwrap();
        assert!(pool.frames.len() <= MIN_FRAMES);
        // Contents still correct after forced write-backs.
        let rec = pool.with_page(0, |buf| page::get(buf, 0).to_vec()).unwrap();
        assert_eq!(rec, b"page 0");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_then_reopen_reads_clean_pages() {
        let dir = tmpdir("ckpt");
        {
            let mut pool = pool_in(&dir, 16);
            fill_pages(&mut pool, 20);
            pool.checkpoint().unwrap();
        }
        let mut pool = pool_in(&dir, 16);
        // npages derives from the file length on reopen.
        assert_eq!(pool.npages(), 20);
        for i in 0..20u64 {
            let ok = pool.with_page(i, page::verify).unwrap();
            assert!(ok, "page {i} fails checksum after reopen");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
