//! [`StoreDb`]: the storage engine behind the [`TuningTarget`] trait.
//!
//! # Planning at full scale, executing on a replica
//!
//! `StoreDb` *plans* exactly like [`lt_dbms::SimDb`]: same full-scale
//! catalog, same optimizer, same statistics seed (`derive_seed(seed, 1)`),
//! same plan/predicate caches (including the process-wide shared plan
//! tier). Prompts, snippet extraction and fleet-cache keys are therefore
//! identical across backends — only the *cost* of executing a plan
//! changes, from modelled to measured.
//!
//! Physical execution runs against a scaled-down replica
//! (`LT_STORE_SCALE`, default 1/500) loaded with deterministic synthetic
//! data matching the catalog's statistics ([`crate::datagen`]). Memory
//! knobs are applied proportionally: the buffer pool holds
//! `shared_buffers × scale` bytes of frames and operators spill beyond
//! `work_mem × scale`. Because data and memory shrink by the same factor,
//! cache-fit and spill *behaviour* mirror the full-scale deployment, and
//! measured times are reported multiplied back by `1/scale`.
//!
//! # Determinism
//!
//! Query time charged to the clock is **proxy time** — a fixed linear
//! combination of real, deterministic counters (buffer-pool hits/misses,
//! spill pages, tuples, descents; see [`crate::exec::proxy_seconds`]) —
//! not the wall clock. Timeouts cut on the same proxy. Two runs of the
//! same workload produce byte-identical results at any thread count,
//! which is what lets `BENCH_store.smoke.json` sit in the determinism CI
//! gate next to the simulator's files.
//!
//! # Environment
//!
//! * `LT_BACKEND` — `sim` (default) or `store`; read by the CLI/server.
//! * `LT_STORE_SCALE` — replica scale factor (default `0.002`).
//! * `LT_STORE_DIR` — store directory (default: fresh temp dir per
//!   instance, removed on drop).
//! * `LT_STORE_KEEP` — set to `1` to keep the store directory on drop.
//! * `LT_WAL_SYNC` / `LT_WAL_CRASH_AT` — see [`lt_common::wal`]; the redo
//!   log honours both (fsync defaults *off* for the replica).

use crate::buffer::{BufferPool, MIN_FRAMES};
use crate::datagen;
use crate::exec::{proxy_seconds, ExecError, ExecStats, Executor, StoredIndex};
use crate::heap::{write_value, Heap, Schema};
use crate::page::PAGE_SIZE;
use lt_common::{derive_seed, obs, secs, IndexId, Secs, TableId, VirtualClock};
use lt_dbms::db::query_tag;
use lt_dbms::global_cache::{self, GlobalPlanKey};
use lt_dbms::plan::Plan;
use lt_dbms::stats::{extract, Estimator, QueryPredicates};
use lt_dbms::{
    CacheStats, Catalog, Configuration, Dbms, ExecutionModel, Hardware, IndexCatalog, IndexSpec,
    KnobSet, Optimizer, PlanCache, PlanKey, TuningTarget,
};
use lt_sql::ast::Query;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default replica scale: 1/500 of the catalog's row counts.
const DEFAULT_SCALE: f64 = 0.002;

static INSTANCE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A persistent storage engine instance serving as a tuning target.
pub struct StoreDb {
    dbms: Dbms,
    catalog: Catalog,
    hardware: Hardware,
    knobs: KnobSet,
    indexes: IndexCatalog,
    clock: VirtualClock,
    /// Shared-formula model: reconfigure times and what-if index-build
    /// estimates come from the same formulas as the simulator's.
    model: ExecutionModel,
    queries_executed: u64,
    queries_completed: u64,
    plan_cache: PlanCache,
    planner_fp: lt_common::Fingerprint,
    catalog_fp: lt_common::Fingerprint,
    // ---- physical state ----
    scale: f64,
    dir: PathBuf,
    owns_dir: bool,
    pool: BufferPool,
    heaps: BTreeMap<TableId, Heap>,
    stored: BTreeMap<IndexId, StoredIndex>,
    work_mem_eff: u64,
    totals: ExecStats,
}

impl StoreDb {
    /// Creates a store over `catalog`, loading the scaled replica. `seed`
    /// fixes the misestimation pattern (planner parity with `SimDb`) and
    /// the synthetic data.
    ///
    /// Panics on I/O failure: the store is a benchmark fixture, and a disk
    /// that cannot hold the replica is fatal to the run.
    pub fn new(dbms: Dbms, catalog: Catalog, hardware: Hardware, seed: u64) -> Self {
        let knobs = KnobSet::defaults(dbms);
        let planner_fp = knobs.planner_fingerprint();
        let catalog_fp = catalog.fingerprint();
        let scale = scale_from_env();
        let (dir, owns_dir) = store_dir();
        std::fs::create_dir_all(&dir).expect("create store dir");
        let capacity = frames_for(knobs.buffer_pool_bytes(), scale);
        let mut pool = BufferPool::open(&dir.join("data.pages"), &dir.join("redo.wal"), capacity)
            .expect("open store files");
        let data_seed = derive_seed(seed, 3);
        let mut heaps = BTreeMap::new();
        for t in catalog.tables() {
            let heap = load_table(&mut pool, &catalog, t.id, scale, data_seed);
            heaps.insert(t.id, heap);
        }
        // The data file is the checkpoint now; recovery starts clean.
        pool.checkpoint().expect("checkpoint after load");
        flush_pool_counters(&pool, 0, 0);
        let work_mem_eff = scaled_mem(knobs.work_mem_bytes(), scale);
        StoreDb {
            dbms,
            catalog,
            hardware,
            knobs,
            indexes: IndexCatalog::new(),
            clock: VirtualClock::new(),
            model: ExecutionModel::new(derive_seed(seed, 1), derive_seed(seed, 2)),
            queries_executed: 0,
            queries_completed: 0,
            plan_cache: PlanCache::new(),
            planner_fp,
            catalog_fp,
            scale,
            dir,
            owns_dir,
            pool,
            heaps,
            stored: BTreeMap::new(),
            work_mem_eff,
            totals: ExecStats::default(),
        }
    }

    /// Replica scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Buffer-pool statistics (cumulative since construction).
    pub fn pool_stats(&self) -> crate::buffer::BpStats {
        self.pool.stats
    }

    /// Executor counters (rows, descents, spills, spill pages) accumulated
    /// over every query executed so far.
    pub fn exec_totals(&self) -> ExecStats {
        self.totals
    }

    /// Total redo-log appends so far.
    pub fn wal_appends(&self) -> u64 {
        self.pool.wal_appends()
    }

    /// Store directory (data file, redo log, spill temp files).
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn refresh_resources(&mut self) {
        let capacity = frames_for(self.knobs.buffer_pool_bytes(), self.scale);
        self.pool.resize(capacity).expect("pool resize");
        self.work_mem_eff = scaled_mem(self.knobs.work_mem_bytes(), self.scale);
        self.planner_fp = self.knobs.planner_fingerprint();
    }

    fn predicates_cached(&self, tag: u64, query: &Query) -> Arc<QueryPredicates> {
        self.plan_cache
            .predicates_or_insert(tag, || extract(query, &self.catalog))
    }

    /// Identical cache discipline to `SimDb::plan_cached`, including the
    /// process-wide shared tier: both backends plan on the same catalog and
    /// stats seed, so they *share* global plan entries.
    fn plan_cached(&self, tag: u64, preds: &QueryPredicates) -> Arc<Plan> {
        let key = PlanKey {
            query: tag,
            knobs: self.planner_fp,
            indexes: self.indexes.fingerprint_for_tables(&preds.tables),
        };
        let global_key = GlobalPlanKey {
            catalog: self.catalog_fp,
            stats_seed: self.model.stats_seed,
            key,
        };
        self.plan_cache.plan_or_insert(key, || {
            if let Some(shared) = global_cache::lookup(&global_key) {
                return (*shared).clone();
            }
            let plan = Optimizer::new(
                &self.catalog,
                &self.knobs,
                &self.indexes,
                self.model.stats_seed,
            )
            .plan_extracted(preds);
            global_cache::publish(global_key, Arc::new(plan.clone()));
            plan
        })
    }

    /// Runs the plan physically; returns (completed, proxy seconds).
    fn run_plan(&mut self, plan: &Plan, preds: &QueryPredicates, timeout: Secs) -> (bool, f64) {
        let est = Estimator::new(&self.catalog, self.model.stats_seed);
        let budget = if timeout.is_finite() {
            Some(timeout.as_f64() * self.scale)
        } else {
            None
        };
        let before = self.pool.stats;
        let mut ex = Executor::new(
            &mut self.pool,
            &self.heaps,
            &self.stored,
            &est,
            preds,
            self.work_mem_eff,
            &self.dir,
            budget,
        );
        let result = ex.run(&plan.root);
        let proxy = ex.elapsed_proxy();
        let stats = ex.stats();
        let completed = match result {
            Ok(_) => true,
            Err(ExecError::Timeout) => false,
            Err(ExecError::Io(e)) => panic!("store execution failed: {e}"),
        };
        self.totals.rows += stats.rows;
        self.totals.descents += stats.descents;
        self.totals.spills += stats.spills;
        self.totals.spill_pages += stats.spill_pages;
        flush_pool_counters(&self.pool, before.hits, before.evictions);
        (completed, proxy)
    }
}

impl TuningTarget for StoreDb {
    fn dbms(&self) -> Dbms {
        self.dbms
    }
    fn catalog(&self) -> &Catalog {
        &self.catalog
    }
    fn hardware(&self) -> Hardware {
        self.hardware
    }
    fn knobs(&self) -> &KnobSet {
        &self.knobs
    }
    fn indexes(&self) -> &IndexCatalog {
        &self.indexes
    }
    fn catalog_fingerprint(&self) -> lt_common::Fingerprint {
        self.catalog_fp
    }
    fn now(&self) -> Secs {
        self.clock.now()
    }
    fn clock_advance(&self, d: Secs) {
        self.clock.advance(d);
    }
    fn queries_executed(&self) -> u64 {
        self.queries_executed
    }
    fn queries_completed(&self) -> u64 {
        self.queries_completed
    }

    fn apply_knobs(&mut self, config: &Configuration) {
        self.knobs = KnobSet::defaults(self.dbms);
        let mut changed = 0;
        for (name, value) in config.knob_changes() {
            if self.knobs.set(name, value).is_ok() {
                changed += 1;
            }
        }
        self.clock.advance(self.model.reconfigure_time(changed));
        obs::counter("dbms.reconfigure", 1);
        self.refresh_resources();
    }

    fn reset_knobs(&mut self) {
        self.knobs = KnobSet::defaults(self.dbms);
        self.clock.advance(self.model.reconfigure_time(0));
        obs::counter("dbms.reconfigure", 1);
        self.refresh_resources();
    }

    fn create_index(&mut self, spec: &IndexSpec) -> (IndexId, Secs) {
        if let Some(existing) = self.indexes.find(spec.table, &spec.columns) {
            let t = secs(0.01);
            self.clock.advance(t);
            return (existing, t);
        }
        let mut span = obs::span_vt("dbms.index_build", self.clock.now());
        let id = self
            .indexes
            .add(spec.table, spec.columns.clone(), spec.name.clone());
        // Physically build over the leading key column (the executor's
        // probes and prefix scans only ever drive the leading column).
        let column = spec.columns[0];
        let heap = self.heaps.get(&spec.table).expect("heap for indexed table");
        let before = self.pool.stats;
        let mut tree = crate::btree::BTree::create(&mut self.pool).expect("btree root");
        let schema = heap.schema.clone();
        let col = schema.find(column).expect("indexed column in schema");
        let mut entries: Vec<(u64, u64)> = Vec::with_capacity(heap.rows as usize);
        heap.clone()
            .for_each_row(&mut self.pool, |rid, row| {
                entries.push((schema.value(row, col), rid));
            })
            .expect("index build scan");
        for (k, rid) in &entries {
            tree.insert(&mut self.pool, *k, *rid).expect("index insert");
        }
        let stats = ExecStats {
            rows: heap.rows,
            descents: heap.rows,
            ..ExecStats::default()
        };
        let proxy = proxy_seconds(
            self.pool.stats.hits - before.hits,
            self.pool.stats.misses - before.misses,
            &stats,
        );
        self.stored.insert(
            id,
            StoredIndex {
                table: spec.table,
                column,
                tree,
            },
        );
        let t = secs((proxy / self.scale).max(0.05));
        self.clock.advance(t);
        span.vt_end(self.clock.now());
        obs::counter("dbms.index_builds", 1);
        flush_pool_counters(&self.pool, before.hits, before.evictions);
        (id, t)
    }

    fn estimate_index_build(&self, spec: &IndexSpec) -> Secs {
        let probe = lt_dbms::Index {
            id: IndexId(u32::MAX),
            table: spec.table,
            columns: spec.columns.clone(),
            name: String::new(),
        };
        let ctx = lt_dbms::executor::ExecutionContext {
            catalog: &self.catalog,
            knobs: &self.knobs,
            indexes: &self.indexes,
            hardware: &self.hardware,
        };
        self.model.index_build_time(&probe, &ctx)
    }

    fn drop_index(&mut self, id: IndexId) -> bool {
        let existed = self.indexes.remove(id);
        if existed {
            // Tree pages stay allocated in the data file (no free list);
            // the planner stops referencing them, which is what matters.
            self.stored.remove(&id);
            self.clock.advance(self.model.index_drop_time());
        }
        existed
    }

    fn drop_all_indexes(&mut self) {
        let n = self.indexes.len() as f64;
        self.indexes.clear();
        self.stored.clear();
        self.clock
            .advance(secs(n * self.model.index_drop_time().as_f64()));
    }

    fn execute(&mut self, query: &Query, timeout: Secs) -> QueryOutcome {
        let tag = query_tag(query);
        let preds = self.predicates_cached(tag, query);
        let plan = self.plan_cached(tag, &preds);
        let (completed, proxy) = self.run_plan(&plan, &preds, timeout);
        self.queries_executed += 1;
        obs::counter("dbms.query_exec", 1);
        let time = secs(proxy / self.scale);
        if completed && time <= timeout {
            self.clock.advance(time);
            self.queries_completed += 1;
            QueryOutcome {
                completed: true,
                time,
            }
        } else {
            self.clock.advance(timeout.min(time));
            obs::counter("dbms.query_timeout", 1);
            QueryOutcome {
                completed: false,
                time: timeout.min(time),
            }
        }
    }

    fn explain(&self, query: &Query) -> Plan {
        let tag = query_tag(query);
        let preds = self.predicates_cached(tag, query);
        (*self.plan_cached(tag, &preds)).clone()
    }

    fn explain_with_indexes(&self, query: &Query, hypothetical: &IndexCatalog) -> Plan {
        let tag = query_tag(query);
        let preds = self.predicates_cached(tag, query);
        let key = PlanKey {
            query: tag,
            knobs: self.planner_fp,
            indexes: hypothetical.fingerprint_for_tables(&preds.tables),
        };
        let plan = self.plan_cache.plan_or_insert(key, || {
            Optimizer::new(
                &self.catalog,
                &self.knobs,
                hypothetical,
                self.model.stats_seed,
            )
            .plan_extracted(&preds)
        });
        (*plan).clone()
    }

    fn explain_with_knobs(&self, query: &Query, knobs: &KnobSet) -> Plan {
        let tag = query_tag(query);
        let preds = self.predicates_cached(tag, query);
        let key = PlanKey {
            query: tag,
            knobs: knobs.planner_fingerprint(),
            indexes: self.indexes.fingerprint_for_tables(&preds.tables),
        };
        let plan = self.plan_cache.plan_or_insert(key, || {
            Optimizer::new(&self.catalog, knobs, &self.indexes, self.model.stats_seed)
                .plan_extracted(&preds)
        });
        (*plan).clone()
    }

    fn explain_analyze(&mut self, query: &Query) -> (String, QueryOutcome) {
        let plan = self.explain(query);
        let before = self.pool.stats;
        let outcome = self.execute(query, Secs::INFINITY);
        let after = self.pool.stats;
        let mut text = plan.explain();
        text.push_str(&format!(
            "Buffers: hits={} misses={} evictions={}\n",
            after.hits - before.hits,
            after.misses - before.misses,
            after.evictions - before.evictions,
        ));
        text.push_str(&format!("Execution Time: {:.3}\n", outcome.time));
        (text, outcome)
    }

    fn predicates(&self, query: &Query) -> Arc<QueryPredicates> {
        self.predicates_cached(query_tag(query), query)
    }

    fn cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    fn cache_window_stats(&self) -> CacheStats {
        self.plan_cache.window_stats()
    }

    fn take_cache_window(&self) -> CacheStats {
        self.plan_cache.take_window()
    }
}

impl Drop for StoreDb {
    fn drop(&mut self) {
        let _ = self.pool.checkpoint();
        if self.owns_dir && std::env::var("LT_STORE_KEEP").map_or(true, |v| v != "1") {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

impl std::fmt::Debug for StoreDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreDb")
            .field("dbms", &self.dbms)
            .field("scale", &self.scale)
            .field("dir", &self.dir)
            .field("pool", &self.pool.stats)
            .field("tables", &self.heaps.len())
            .field("indexes", &self.stored.len())
            .finish()
    }
}

/// Emits the `store.*` counter deltas accumulated since `prev_*`.
fn flush_pool_counters(pool: &BufferPool, prev_hits: u64, prev_evictions: u64) {
    let dh = pool.stats.hits - prev_hits;
    if dh > 0 {
        obs::counter("store.bp_hits", dh);
    }
    let de = pool.stats.evictions - prev_evictions;
    if de > 0 {
        obs::counter("store.bp_evictions", de);
    }
}

fn scale_from_env() -> f64 {
    std::env::var("LT_STORE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v.clamp(1e-5, 1.0))
        .unwrap_or(DEFAULT_SCALE)
}

fn store_dir() -> (PathBuf, bool) {
    match std::env::var("LT_STORE_DIR") {
        Ok(d) if !d.is_empty() => (PathBuf::from(d), false),
        _ => {
            let n = INSTANCE_SEQ.fetch_add(1, Ordering::Relaxed);
            (
                std::env::temp_dir().join(format!("lt_store_{}_{n}", std::process::id())),
                true,
            )
        }
    }
}

/// Frames the pool gets for a full-scale `shared_buffers` of `bytes`.
fn frames_for(bytes: u64, scale: f64) -> usize {
    (((bytes as f64 * scale) / PAGE_SIZE as f64).round() as usize).max(MIN_FRAMES)
}

/// Effective (scaled) memory budget, floored at one page.
fn scaled_mem(bytes: u64, scale: f64) -> u64 {
    ((bytes as f64 * scale).round() as u64).max(PAGE_SIZE as u64)
}

/// Bulk-loads one table's scaled replica.
fn load_table(
    pool: &mut BufferPool,
    catalog: &Catalog,
    table: TableId,
    scale: f64,
    seed: u64,
) -> Heap {
    let meta = catalog.table(table);
    let rows = datagen::scaled_rows(meta.rows, scale);
    let schema = Schema::of_table(catalog, table);
    let cols: Vec<_> = meta
        .columns
        .iter()
        .map(|&c| catalog.column(c).clone())
        .collect();
    Heap::build(pool, table, schema.clone(), rows, |i, row| {
        for (ci, col) in cols.iter().enumerate() {
            let off = schema.cols[ci].offset;
            let w = schema.cols[ci].width;
            let v = datagen::column_value(seed, col, scale, i);
            write_value(&mut row[off..off + w], v);
        }
    })
    .expect("heap bulk load")
}

// Re-exported for the trait methods above.
use lt_dbms::QueryOutcome;

#[cfg(test)]
mod tests {
    use super::*;
    use lt_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("lineitem", 6_000_000)
            .primary_key("l_orderkey", 8)
            .column("l_shipdate", 4, 2_500.0)
            .column("l_quantity", 8, 50.0)
            .column("l_pad", 100, 100.0)
            .finish();
        c.add_table("orders", 150_000)
            .primary_key("o_orderkey", 8)
            .column("o_pad", 60, 100.0)
            .finish();
        c
    }

    fn store() -> StoreDb {
        StoreDb::new(Dbms::Postgres, catalog(), Hardware::p3_2xlarge(), 99)
    }

    #[test]
    fn plans_match_the_simulator_exactly() {
        let sim = lt_dbms::SimDb::new(Dbms::Postgres, catalog(), Hardware::p3_2xlarge(), 99);
        let st = store();
        for sql in [
            "select count(*) from orders",
            "select * from lineitem, orders where l_orderkey = o_orderkey",
            "select * from lineitem where l_quantity = 5",
        ] {
            let q = parse_query(sql).unwrap();
            assert_eq!(
                TuningTarget::explain(&st, &q),
                sim.explain(&q),
                "plan divergence on {sql}"
            );
        }
    }

    #[test]
    fn execute_is_deterministic_and_advances_the_clock() {
        let mut a = store();
        let mut b = store();
        let q =
            parse_query("select * from lineitem, orders where l_orderkey = o_orderkey").unwrap();
        let oa = a.execute(&q, Secs::INFINITY);
        let ob = b.execute(&q, Secs::INFINITY);
        assert!(oa.completed);
        assert_eq!(oa.time, ob.time, "proxy time must be deterministic");
        assert!(a.now() >= oa.time);
    }

    #[test]
    fn bigger_shared_buffers_raises_hit_rate() {
        let q = parse_query("select count(*) from lineitem").unwrap();
        let run = |knob: &str| {
            let mut db = store();
            let cfg = Configuration::parse(
                &format!("ALTER SYSTEM SET shared_buffers = '{knob}';"),
                Dbms::Postgres,
                db.catalog(),
            );
            db.apply_knobs(&cfg);
            let before = db.pool_stats();
            // Two passes: the second exposes whether the pool retained pages.
            db.execute(&q, Secs::INFINITY);
            db.execute(&q, Secs::INFINITY);
            let after = db.pool_stats();
            (after.hits - before.hits) as f64
                / ((after.hits - before.hits) + (after.misses - before.misses)).max(1) as f64
        };
        let small = run("128MB");
        let big = run("15GB");
        assert!(
            big > small,
            "hit rate must grow with shared_buffers: small={small:.3} big={big:.3}"
        );
    }

    #[test]
    fn work_mem_removes_spills_and_speeds_up_the_join() {
        let q =
            parse_query("select * from lineitem, orders where l_orderkey = o_orderkey").unwrap();
        let mut db = store();
        let t_default = db.execute(&q, Secs::INFINITY).time;
        let cfg = Configuration::parse(
            "ALTER SYSTEM SET work_mem = '4GB';\nALTER SYSTEM SET shared_buffers = '15GB';",
            Dbms::Postgres,
            db.catalog(),
        );
        db.apply_knobs(&cfg);
        let t_tuned = db.execute(&q, Secs::INFINITY).time;
        assert!(
            t_tuned < t_default,
            "tuned {t_tuned} should beat default {t_default}"
        );
    }

    #[test]
    fn index_probe_path_works_end_to_end() {
        let mut db = store();
        let spec = IndexSpec {
            table: db.catalog().table_by_name("orders").unwrap(),
            columns: vec![db.catalog().resolve_column(None, "o_orderkey").unwrap()],
            name: None,
        };
        let (id, t) = db.create_index(&spec);
        assert!(t >= secs(0.05));
        assert!(db.stored.contains_key(&id));
        let (id2, t2) = db.create_index(&spec);
        assert_eq!(id, id2);
        assert!(t2 <= secs(0.01));
        assert!(db.drop_index(id));
        assert!(db.stored.is_empty());
    }

    #[test]
    fn timeouts_cut_deterministically() {
        let mut db = store();
        let q =
            parse_query("select * from lineitem, orders where l_orderkey = o_orderkey").unwrap();
        let out = db.execute(&q, secs(1e-6));
        assert!(!out.completed);
        assert!(out.time <= secs(1e-6));
    }
}
