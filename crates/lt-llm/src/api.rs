//! The language-model interface and usage metering.

use crate::tokenizer::count_tokens;
use lt_common::{obs, Result};
use std::sync::Mutex;

/// A text-completion model.
///
/// Implementations must be deterministic given `(prompt, temperature,
/// seed)`: λ-Tune samples k configurations by calling `complete` with k
/// different seeds, and the whole evaluation must be reproducible.
pub trait LanguageModel {
    /// Completes `prompt`. Higher `temperature` means more variance across
    /// seeds; `temperature = 0` should make the output seed-independent.
    fn complete(&self, prompt: &str, temperature: f64, seed: u64) -> Result<String>;

    /// Completes the same prompt under several seeds in one request — the
    /// fleet batching path. The default implementation loops
    /// [`LanguageModel::complete`], so results are identical to unbatched
    /// sampling *by construction*; backends with a native batch endpoint
    /// may override for throughput but must preserve per-seed determinism.
    fn complete_batch(&self, prompt: &str, temperature: f64, seeds: &[u64]) -> Result<Vec<String>> {
        seeds
            .iter()
            .map(|&seed| self.complete(prompt, temperature, seed))
            .collect()
    }

    /// Model name (for logs and reports).
    fn name(&self) -> &str;

    /// Maximum prompt size in tokens.
    fn context_window(&self) -> usize {
        128_000
    }
}

/// Accumulated usage across calls (the paper's "monetary fees" concern).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LlmUsage {
    /// Number of completion calls.
    pub calls: u64,
    /// Total prompt tokens sent.
    pub prompt_tokens: u64,
    /// Total completion tokens received.
    pub completion_tokens: u64,
}

impl LlmUsage {
    /// Estimated cost in USD under GPT-4-era pricing ($30 / 1M prompt
    /// tokens, $60 / 1M completion tokens).
    pub fn cost_usd(&self) -> f64 {
        self.prompt_tokens as f64 * 30e-6 + self.completion_tokens as f64 * 60e-6
    }
}

/// Simulated per-call API latency in milliseconds (`LT_LLM_LATENCY_MS`,
/// default 0 = off). Read once per process.
///
/// The simulated model answers instantly, which is the one way it is
/// *unrealistically fast*: a real LLM API call costs tens of milliseconds
/// to seconds of network round trip, and that latency — not local compute
/// — is what a tuning service spends most of its wall clock on (the
/// paper's eval-vs-API-cost tradeoff). Serving benchmarks set this knob
/// to measure the system in that regime; it only ever adds wall time, so
/// results stay byte-identical at any setting.
fn simulated_latency() -> std::time::Duration {
    use std::sync::OnceLock;
    static LATENCY: OnceLock<std::time::Duration> = OnceLock::new();
    *LATENCY.get_or_init(|| {
        let ms = std::env::var("LT_LLM_LATENCY_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        std::time::Duration::from_millis(ms)
    })
}

/// Sleeps for the configured simulated API latency (no-op by default).
fn simulate_api_latency() {
    let latency = simulated_latency();
    if !latency.is_zero() {
        std::thread::sleep(latency);
    }
}

/// Wraps a [`LanguageModel`] and meters token usage per call.
pub struct LlmClient<M> {
    model: M,
    usage: Mutex<LlmUsage>,
}

impl<M: LanguageModel> LlmClient<M> {
    /// Wraps a model.
    pub fn new(model: M) -> Self {
        LlmClient {
            model,
            usage: Mutex::new(LlmUsage::default()),
        }
    }

    /// Completes a prompt, recording usage.
    pub fn complete(&self, prompt: &str, temperature: f64, seed: u64) -> Result<String> {
        let _span = obs::span("llm.call");
        simulate_api_latency();
        let response = self.model.complete(prompt, temperature, seed)?;
        let prompt_tokens = count_tokens(prompt) as u64;
        let completion_tokens = count_tokens(&response) as u64;
        let mut usage = self.usage.lock().unwrap();
        usage.calls += 1;
        usage.prompt_tokens += prompt_tokens;
        usage.completion_tokens += completion_tokens;
        drop(usage);
        obs::counter("llm.calls", 1);
        obs::counter("llm.prompt_tokens", prompt_tokens);
        obs::counter("llm.completion_tokens", completion_tokens);
        Ok(response)
    }

    /// Completes one prompt under many seeds as a single metered call.
    ///
    /// This is where batching saves money: the prompt is transmitted (and
    /// therefore charged) **once** for the whole batch instead of once per
    /// sample, and the batch counts as one API call. Completion tokens are
    /// still charged per sample. An empty seed list is a no-op that costs
    /// nothing.
    pub fn complete_batch(
        &self,
        prompt: &str,
        temperature: f64,
        seeds: &[u64],
    ) -> Result<Vec<String>> {
        if seeds.is_empty() {
            return Ok(Vec::new());
        }
        let _span = obs::span("llm.call");
        // One API round trip for the whole batch: the latency, like the
        // prompt tokens, is paid once — that is the batching win.
        simulate_api_latency();
        let responses = self.model.complete_batch(prompt, temperature, seeds)?;
        debug_assert_eq!(responses.len(), seeds.len());
        let prompt_tokens = count_tokens(prompt) as u64;
        let completion_tokens: u64 = responses.iter().map(|r| count_tokens(r) as u64).sum();
        let mut usage = self.usage.lock().unwrap();
        usage.calls += 1;
        usage.prompt_tokens += prompt_tokens;
        usage.completion_tokens += completion_tokens;
        drop(usage);
        obs::counter("llm.calls", 1);
        obs::counter("llm.batch_calls", 1);
        obs::counter("llm.batch_samples", seeds.len() as u64);
        obs::counter("llm.prompt_tokens", prompt_tokens);
        obs::counter("llm.completion_tokens", completion_tokens);
        Ok(responses)
    }

    /// Usage so far.
    pub fn usage(&self) -> LlmUsage {
        *self.usage.lock().unwrap()
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl LanguageModel for Echo {
        fn complete(&self, prompt: &str, _t: f64, _s: u64) -> Result<String> {
            Ok(prompt.to_string())
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn client_meters_usage() {
        let client = LlmClient::new(Echo);
        client.complete("four words in here", 0.0, 1).unwrap();
        client.complete("two more", 0.0, 2).unwrap();
        let u = client.usage();
        assert_eq!(u.calls, 2);
        // "four words in here" = 1+2+1+1 tokens, "two more" = 2.
        assert_eq!(u.prompt_tokens, 7);
        assert_eq!(u.completion_tokens, 7);
        assert!(u.cost_usd() > 0.0);
    }

    #[test]
    fn default_usage_is_zero_cost() {
        assert_eq!(LlmUsage::default().cost_usd(), 0.0);
    }

    struct Seeded;
    impl LanguageModel for Seeded {
        fn complete(&self, _p: &str, _t: f64, seed: u64) -> Result<String> {
            Ok(format!("sample {seed}"))
        }
        fn name(&self) -> &str {
            "seeded"
        }
    }

    #[test]
    fn batch_matches_unbatched_and_charges_prompt_once() {
        let unbatched = LlmClient::new(Seeded);
        let loose: Vec<String> = (0..4)
            .map(|s| unbatched.complete("a prompt here", 0.7, s).unwrap())
            .collect();
        let batched = LlmClient::new(Seeded);
        let batch = batched
            .complete_batch("a prompt here", 0.7, &[0, 1, 2, 3])
            .unwrap();
        assert_eq!(loose, batch);
        let (u, b) = (unbatched.usage(), batched.usage());
        assert_eq!(u.calls, 4);
        assert_eq!(b.calls, 1);
        assert_eq!(u.prompt_tokens, 4 * b.prompt_tokens);
        assert_eq!(u.completion_tokens, b.completion_tokens);
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let client = LlmClient::new(Seeded);
        assert!(client.complete_batch("p", 0.0, &[]).unwrap().is_empty());
        assert_eq!(client.usage(), LlmUsage::default());
    }
}
