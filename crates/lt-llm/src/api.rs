//! The language-model interface and usage metering.

use crate::tokenizer::count_tokens;
use lt_common::{obs, Result};
use std::sync::Mutex;

/// A text-completion model.
///
/// Implementations must be deterministic given `(prompt, temperature,
/// seed)`: λ-Tune samples k configurations by calling `complete` with k
/// different seeds, and the whole evaluation must be reproducible.
pub trait LanguageModel {
    /// Completes `prompt`. Higher `temperature` means more variance across
    /// seeds; `temperature = 0` should make the output seed-independent.
    fn complete(&self, prompt: &str, temperature: f64, seed: u64) -> Result<String>;

    /// Model name (for logs and reports).
    fn name(&self) -> &str;

    /// Maximum prompt size in tokens.
    fn context_window(&self) -> usize {
        128_000
    }
}

/// Accumulated usage across calls (the paper's "monetary fees" concern).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LlmUsage {
    /// Number of completion calls.
    pub calls: u64,
    /// Total prompt tokens sent.
    pub prompt_tokens: u64,
    /// Total completion tokens received.
    pub completion_tokens: u64,
}

impl LlmUsage {
    /// Estimated cost in USD under GPT-4-era pricing ($30 / 1M prompt
    /// tokens, $60 / 1M completion tokens).
    pub fn cost_usd(&self) -> f64 {
        self.prompt_tokens as f64 * 30e-6 + self.completion_tokens as f64 * 60e-6
    }
}

/// Wraps a [`LanguageModel`] and meters token usage per call.
pub struct LlmClient<M> {
    model: M,
    usage: Mutex<LlmUsage>,
}

impl<M: LanguageModel> LlmClient<M> {
    /// Wraps a model.
    pub fn new(model: M) -> Self {
        LlmClient {
            model,
            usage: Mutex::new(LlmUsage::default()),
        }
    }

    /// Completes a prompt, recording usage.
    pub fn complete(&self, prompt: &str, temperature: f64, seed: u64) -> Result<String> {
        let _span = obs::span("llm.call");
        let response = self.model.complete(prompt, temperature, seed)?;
        let prompt_tokens = count_tokens(prompt) as u64;
        let completion_tokens = count_tokens(&response) as u64;
        let mut usage = self.usage.lock().unwrap();
        usage.calls += 1;
        usage.prompt_tokens += prompt_tokens;
        usage.completion_tokens += completion_tokens;
        drop(usage);
        obs::counter("llm.calls", 1);
        obs::counter("llm.prompt_tokens", prompt_tokens);
        obs::counter("llm.completion_tokens", completion_tokens);
        Ok(response)
    }

    /// Usage so far.
    pub fn usage(&self) -> LlmUsage {
        *self.usage.lock().unwrap()
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl LanguageModel for Echo {
        fn complete(&self, prompt: &str, _t: f64, _s: u64) -> Result<String> {
            Ok(prompt.to_string())
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn client_meters_usage() {
        let client = LlmClient::new(Echo);
        client.complete("four words in here", 0.0, 1).unwrap();
        client.complete("two more", 0.0, 2).unwrap();
        let u = client.usage();
        assert_eq!(u.calls, 2);
        // "four words in here" = 1+2+1+1 tokens, "two more" = 2.
        assert_eq!(u.prompt_tokens, 7);
        assert_eq!(u.completion_tokens, 7);
        assert!(u.cost_usd() > 0.0);
    }

    #[test]
    fn default_usage_is_zero_cost() {
        assert_eq!(LlmUsage::default().cost_usd(), 0.0);
    }
}
