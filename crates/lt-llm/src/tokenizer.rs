//! Approximate GPT-style token counting.
//!
//! λ-Tune's compression objective is denominated in tokens: provider fees
//! are proportional to prompt length, and the ILP budget bounds the number
//! of workload-description tokens. We approximate a byte-pair-encoding
//! tokenizer with a rule that tracks real tokenizers closely on SQL-ish
//! text: each run of alphanumeric characters costs `ceil(len / 4)` tokens
//! (BPE merges average ~4 characters per token on English/identifier
//! text), each punctuation character costs one token, and whitespace is
//! absorbed by the following token (free).

/// Counts the approximate number of tokens in `text`.
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0usize;
    let mut run_len = 0usize;
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            run_len += 1;
        } else {
            tokens += token_cost(run_len);
            run_len = 0;
            if !c.is_whitespace() {
                tokens += 1;
            }
        }
    }
    tokens + token_cost(run_len)
}

fn token_cost(run_len: usize) -> usize {
    run_len.div_ceil(4)
}

/// Truncates `text` to at most `budget` tokens, cutting at a whitespace
/// boundary where possible. Returns the prefix.
pub fn truncate_to_tokens(text: &str, budget: usize) -> &str {
    if count_tokens(text) <= budget {
        return text;
    }
    // Binary search over char boundaries for the longest prefix in budget.
    let indices: Vec<usize> = text
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(text.len()))
        .collect();
    let mut lo = 0usize;
    let mut hi = indices.len() - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if count_tokens(&text[..indices[mid]]) <= budget {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    &text[..indices[lo]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_whitespace_are_free() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   \n\t "), 0);
    }

    #[test]
    fn short_words_cost_one() {
        assert_eq!(count_tokens("the"), 1);
        assert_eq!(count_tokens("the cat sat"), 3);
    }

    #[test]
    fn long_identifiers_cost_more() {
        // 22 chars → ceil(22/4) = 6 tokens.
        assert_eq!(count_tokens("l_extendedprice_detail"), 6);
    }

    #[test]
    fn punctuation_costs_one_each() {
        assert_eq!(count_tokens("a, b"), 3); // a + , + b
        assert_eq!(count_tokens("t.c1: t.c2"), 7); // t . c1 : t . c2
    }

    #[test]
    fn sql_line_token_count_is_reasonable() {
        let sql = "select l_orderkey from lineitem where l_shipdate <= date '1998-09-02'";
        let n = count_tokens(sql);
        // A real BPE tokenizer puts this around 20-25 tokens.
        assert!((12..=32).contains(&n), "got {n}");
    }

    #[test]
    fn truncate_respects_budget() {
        let text = "one two three four five six seven eight nine ten";
        let cut = truncate_to_tokens(text, 4);
        assert!(count_tokens(cut) <= 4);
        assert!(text.starts_with(cut));
        // And it keeps as much as possible: adding one more char run would
        // exceed the budget.
        assert!(count_tokens(cut) >= 3);
    }

    #[test]
    fn truncate_noop_within_budget() {
        assert_eq!(truncate_to_tokens("short", 100), "short");
    }

    #[test]
    fn count_is_monotone_in_prefix_length() {
        let text = "select a, b from t where a = 1 and b like '%x%'";
        let mut last = 0;
        for (i, _) in text.char_indices() {
            let n = count_tokens(&text[..i]);
            assert!(n + 1 >= last, "non-monotone at {i}");
            last = n;
        }
    }
}
