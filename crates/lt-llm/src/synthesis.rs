//! The simulated workload-synthesis LLM.
//!
//! SQLBarber-style workload synthesis asks a language model to *write*
//! SQL from a declarative task description. [`SynthesisLlm`] is the
//! GPT-4 stand-in for that role and, like [`crate::SimulatedLlm`], it is
//! **prompt-blind in the same way a real API call is**: everything it
//! knows about the schema — which tables exist, which join predicates
//! connect them, which filter predicates hit which selectivity bucket —
//! it parses back out of the prompt text. It holds no catalog reference,
//! so a table the prompt never lists can only appear in its output as a
//! hallucination.
//!
//! The prompt contract (written by `lt-synth`'s engine, parsed here):
//!
//! * `filter <table> bucket=<b>: <predicate sql>` — one menu line per
//!   achievable selectivity bucket per table,
//! * one `task:` line of `key=value` tokens (`shape=`, `agg=`,
//!   `tables=a,b,c`, `joins=a.x=b.y;c.u=d.v`, `filter_table=`,
//!   `filter_bucket=`) describing the single query to write, and
//! * zero or more `invalid: …` feedback lines appended by the caller's
//!   validation loop after a rejected attempt.
//!
//! Like its real counterpart the model is imperfect: a seeded fraction
//! of first attempts corrupt an identifier (a table or join column that
//! was never in the prompt). The corruption rate decays with each
//! `invalid:` feedback line — the model follows corrections — reaching
//! zero from the second retry on, so the caller's retry loop always
//! converges within its cap.

use crate::api::LanguageModel;
use lt_common::{derive_seed, Result, Rng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Tuning parameters of the synthesis model.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisLlmOptions {
    /// Probability that a *first* attempt corrupts an identifier. Each
    /// `invalid:` feedback line quarters the rate; two or more lines
    /// silence it entirely.
    pub hallucination_rate: f64,
}

impl Default for SynthesisLlmOptions {
    fn default() -> Self {
        SynthesisLlmOptions {
            hallucination_rate: 0.12,
        }
    }
}

/// Prompt-blind SQL-writing model. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct SynthesisLlm {
    options: SynthesisLlmOptions,
}

impl SynthesisLlm {
    /// Model with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model with explicit options (property tests force the
    /// hallucination rate up to exercise the retry loop).
    pub fn with_options(options: SynthesisLlmOptions) -> Self {
        SynthesisLlm { options }
    }
}

impl LanguageModel for SynthesisLlm {
    fn complete(&self, prompt: &str, temperature: f64, seed: u64) -> Result<String> {
        let task = SynthTask::parse(prompt);
        // Seeded by the prompt's semantic content, not its surface text:
        // the same task renders the same SQL for the same seed.
        let mut hasher = DefaultHasher::new();
        task.tables.hash(&mut hasher);
        task.joins.hash(&mut hasher);
        task.agg.hash(&mut hasher);
        task.filter.hash(&mut hasher);
        task.feedback_lines.hash(&mut hasher);
        let mut rng = lt_common::seeded_rng(derive_seed(hasher.finish(), seed));
        Ok(render(&task, temperature, &mut rng, self.options))
    }

    fn name(&self) -> &str {
        "simulated-synthesis-gpt4"
    }
}

/// What the model recovers from the prompt text.
#[derive(Debug, Clone, Default)]
struct SynthTask {
    tables: Vec<String>,
    /// Join conditions as `(left, right)` qualified column pairs.
    joins: Vec<(String, String)>,
    /// `count` or `min:<qualified column>`.
    agg: String,
    /// Filter predicate looked up from the menu lines.
    filter: Option<String>,
    /// Number of `invalid:` feedback lines (prior rejected attempts).
    feedback_lines: usize,
}

impl SynthTask {
    fn parse(prompt: &str) -> SynthTask {
        let mut task = SynthTask::default();
        let mut filter_table = String::new();
        let mut filter_bucket = String::new();
        // `(table, bucket) -> predicate` menu mined from the prompt.
        let mut menu: Vec<(String, String, String)> = Vec::new();
        for line in prompt.lines() {
            let trimmed = line.trim();
            if let Some(rest) = trimmed.strip_prefix("filter ") {
                if let Some((head, pred)) = rest.split_once(':') {
                    let mut parts = head.split_whitespace();
                    if let (Some(table), Some(bucket)) = (parts.next(), parts.next()) {
                        if let Some(b) = bucket.strip_prefix("bucket=") {
                            menu.push((table.to_string(), b.to_string(), pred.trim().to_string()));
                        }
                    }
                }
                continue;
            }
            if trimmed.starts_with("invalid:") {
                task.feedback_lines += 1;
                continue;
            }
            let Some(rest) = trimmed.strip_prefix("task:") else {
                continue;
            };
            for token in rest.split_whitespace() {
                let Some((key, value)) = token.split_once('=') else {
                    continue;
                };
                match key {
                    "tables" => {
                        task.tables = value.split(',').map(str::to_string).collect();
                    }
                    "joins" => {
                        for j in value.split(';').filter(|j| !j.is_empty()) {
                            if let Some((l, r)) = j.split_once('=') {
                                task.joins.push((l.to_string(), r.to_string()));
                            }
                        }
                    }
                    "agg" => task.agg = value.to_string(),
                    "filter_table" => filter_table = value.to_string(),
                    "filter_bucket" => filter_bucket = value.to_string(),
                    _ => {}
                }
            }
        }
        if !filter_table.is_empty() {
            task.filter = menu
                .iter()
                .find(|(t, b, _)| *t == filter_table && *b == filter_bucket)
                .map(|(_, _, pred)| pred.clone());
        }
        task
    }
}

fn render(
    task: &SynthTask,
    temperature: f64,
    rng: &mut Rng,
    options: SynthesisLlmOptions,
) -> String {
    let mut tables = task.tables.clone();
    let mut joins = task.joins.clone();
    if tables.is_empty() {
        // Nothing to write a query against; emit something parseable and
        // let the caller's validation reject it.
        return "select 1".to_string();
    }

    // Imperfection: corrupt one identifier on a seeded fraction of early
    // attempts. Feedback lines quarter the rate; ≥ 2 silence it.
    let heat = temperature.clamp(0.0, 2.0);
    let rate = match task.feedback_lines {
        0 => options.hallucination_rate,
        1 => options.hallucination_rate * 0.25,
        _ => 0.0,
    };
    if rng.gen_bool((rate * (heat / 0.7).min(1.0)).clamp(0.0, 1.0)) {
        if !joins.is_empty() && rng.gen_bool(0.5) {
            let i = rng.gen_range(0..joins.len());
            joins[i].0.push_str("_x");
        } else {
            let i = rng.gen_range(0..tables.len());
            tables[i].push_str("_x");
        }
    }

    let select = match task.agg.split_once(':') {
        Some(("min", col)) => format!("min({col})"),
        _ => "count(*)".to_string(),
    };
    let mut sql = format!("select {select} from {}", tables.join(", "));
    let mut conjuncts: Vec<String> = joins.iter().map(|(l, r)| format!("{l} = {r}")).collect();
    if let Some(pred) = &task.filter {
        conjuncts.push(pred.clone());
    }
    if !conjuncts.is_empty() {
        sql.push_str(" where ");
        sql.push_str(&conjuncts.join(" and "));
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROMPT: &str = "Write one SQL query for the task below.\n\
         filter lineitem bucket=4: lineitem.l_quantity in (1, 2, 3)\n\
         filter orders bucket=2: orders.o_orderstatus = 'F'\n\
         task: shape=chain agg=count tables=lineitem,orders \
         joins=lineitem.l_orderkey=orders.o_orderkey \
         filter_table=lineitem filter_bucket=4\n";

    fn reliable() -> SynthesisLlm {
        SynthesisLlm::with_options(SynthesisLlmOptions {
            hallucination_rate: 0.0,
        })
    }

    #[test]
    fn renders_the_assigned_structure() {
        let sql = reliable().complete(PROMPT, 0.0, 1).unwrap();
        assert_eq!(
            sql,
            "select count(*) from lineitem, orders \
             where lineitem.l_orderkey = orders.o_orderkey \
             and lineitem.l_quantity in (1, 2, 3)"
        );
    }

    #[test]
    fn same_seed_same_output() {
        let llm = SynthesisLlm::new();
        assert_eq!(
            llm.complete(PROMPT, 1.0, 7).unwrap(),
            llm.complete(PROMPT, 1.0, 7).unwrap()
        );
    }

    #[test]
    fn hallucinations_vanish_after_two_feedback_lines() {
        let llm = SynthesisLlm::with_options(SynthesisLlmOptions {
            hallucination_rate: 1.0,
        });
        let corrupted = llm.complete(PROMPT, 1.0, 3).unwrap();
        assert!(corrupted.contains("_x"), "{corrupted}");
        let retried = format!("{PROMPT}invalid: unknown table\ninvalid: unknown table\n");
        let clean = llm.complete(&retried, 1.0, 3).unwrap();
        assert!(!clean.contains("_x"), "{clean}");
    }

    #[test]
    fn min_aggregate_and_missing_filter_menu() {
        let p = "task: shape=scan agg=min:part.p_retailprice tables=part \
                 filter_table=part filter_bucket=9\n";
        let sql = reliable().complete(p, 0.0, 0).unwrap();
        // No menu line for (part, 9): the model omits the filter rather
        // than inventing a predicate.
        assert_eq!(sql, "select min(part.p_retailprice) from part");
    }
}
