//! Language-model substrate.
//!
//! The paper uses OpenAI's GPT-4 to map a tuning prompt to complete
//! configuration scripts. This crate provides the from-scratch substitute:
//!
//! * an approximate **tokenizer** with GPT-like token counts (λ-Tune's
//!   budget constraint and monetary-fee accounting are denominated in
//!   tokens),
//! * the [`LanguageModel`] trait plus a usage-metering [`LlmClient`]
//!   wrapper, and
//! * [`SimulatedLlm`] — a deterministic-given-seed generator of tuning
//!   configurations. Crucially, it reads **only the prompt text**: its
//!   knowledge of the workload is limited to what the prompt conveys, so
//!   shrinking the token budget genuinely degrades the information it acts
//!   on (Figure 7's ablation), and obfuscated identifiers deprive it of any
//!   benchmark-recognition shortcut (§6.4.3).
//!
//! Temperature controls output variance; a configurable outlier rate
//! reproduces the paper's observation that roughly 1 in 7 GPT-4 samples is
//! a configuration up to ~5× slower than the best (§6.3).

pub mod api;
pub mod robust;
pub mod simulated;
pub mod synthesis;
pub mod tokenizer;

pub use api::{LanguageModel, LlmClient, LlmUsage};
pub use robust::{RobustCompletion, RobustOptions, RobustSampler};
pub use simulated::{SimulatedLlm, SimulatedLlmOptions};
pub use synthesis::{SynthesisLlm, SynthesisLlmOptions};
pub use tokenizer::{count_tokens, truncate_to_tokens};
