//! Robust sampling: retry-with-reseed around a [`LanguageModel`].
//!
//! Production LLM pipelines must tolerate malformed completions — empty
//! output, truncated scripts, responses the downstream parser rejects.
//! [`RobustSampler`] wraps a model and re-samples with derived seeds until
//! a caller-supplied validator accepts the completion (or the attempt
//! budget is exhausted), reporting how many attempts were consumed so the
//! cost accounting stays honest.

use crate::api::LanguageModel;
use lt_common::{derive_seed, LtError, Result};

/// A completion accepted by the validator, plus sampling metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustCompletion {
    /// The accepted completion text.
    pub text: String,
    /// Number of completions sampled (1 = first try succeeded).
    pub attempts: u32,
}

/// Retry policy.
#[derive(Debug, Clone, Copy)]
pub struct RobustOptions {
    /// Maximum completions to sample before giving up.
    pub max_attempts: u32,
    /// Temperature bump per retry (more diversity when stuck).
    pub temperature_step: f64,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            max_attempts: 3,
            temperature_step: 0.15,
        }
    }
}

/// Wraps a model with validation + retry.
pub struct RobustSampler<M> {
    model: M,
    options: RobustOptions,
}

impl<M: LanguageModel> RobustSampler<M> {
    /// Wraps `model` with the default retry policy.
    pub fn new(model: M) -> Self {
        Self::with_options(model, RobustOptions::default())
    }

    /// Wraps `model` with an explicit policy.
    pub fn with_options(model: M, options: RobustOptions) -> Self {
        RobustSampler { model, options }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Samples until `accept` returns true. Retries derive fresh seeds from
    /// `seed` and raise the temperature slightly each attempt, so a
    /// degenerate deterministic completion cannot repeat forever.
    pub fn complete_validated(
        &self,
        prompt: &str,
        temperature: f64,
        seed: u64,
        mut accept: impl FnMut(&str) -> bool,
    ) -> Result<RobustCompletion> {
        let mut last_error: Option<LtError> = None;
        for attempt in 0..self.options.max_attempts {
            let t = temperature + self.options.temperature_step * attempt as f64;
            let retry_seed = derive_seed(seed, 0x5eed_0000 + attempt as u64);
            match self.model.complete(prompt, t, retry_seed) {
                Ok(text) if accept(&text) => {
                    return Ok(RobustCompletion {
                        text,
                        attempts: attempt + 1,
                    })
                }
                Ok(_) => {}
                Err(e) => last_error = Some(e),
            }
        }
        Err(last_error.unwrap_or_else(|| {
            LtError::Llm(format!(
                "no acceptable completion in {} attempts",
                self.options.max_attempts
            ))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A model that emits empty output for the first `bad` calls.
    struct Flaky {
        bad: u32,
        calls: AtomicU32,
    }

    impl LanguageModel for Flaky {
        fn complete(&self, _p: &str, _t: f64, seed: u64) -> Result<String> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.bad {
                Ok(String::new())
            } else {
                Ok(format!("ALTER SYSTEM SET work_mem = '1GB'; -- seed {seed}"))
            }
        }
        fn name(&self) -> &str {
            "flaky"
        }
    }

    #[test]
    fn first_try_success_counts_one_attempt() {
        let sampler = RobustSampler::new(Flaky {
            bad: 0,
            calls: AtomicU32::new(0),
        });
        let out = sampler
            .complete_validated("p", 0.5, 1, |t| !t.is_empty())
            .unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.text.contains("work_mem"));
    }

    #[test]
    fn retries_until_valid() {
        let sampler = RobustSampler::new(Flaky {
            bad: 2,
            calls: AtomicU32::new(0),
        });
        let out = sampler
            .complete_validated("p", 0.5, 1, |t| !t.is_empty())
            .unwrap();
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn gives_up_after_budget() {
        let sampler = RobustSampler::with_options(
            Flaky {
                bad: 100,
                calls: AtomicU32::new(0),
            },
            RobustOptions {
                max_attempts: 4,
                temperature_step: 0.1,
            },
        );
        let err = sampler
            .complete_validated("p", 0.5, 1, |t| !t.is_empty())
            .unwrap_err();
        assert_eq!(err.category(), "llm");
        assert!(err.message().contains("4 attempts"));
    }

    #[test]
    fn retry_seeds_differ() {
        // With the simulated LLM, retries must explore different samples.
        let sampler = RobustSampler::new(crate::SimulatedLlm::new());
        let prompt = "Recommend some configuration parameters for PostgreSQL.\n\
                      a.x: b.y\nmemory: 61GB\ncores: 8\n";
        let mut seen = Vec::new();
        let _ = sampler.complete_validated(prompt, 1.0, 7, |t| {
            seen.push(t.to_string());
            seen.len() >= 3 // force 3 attempts
        });
        assert_eq!(seen.len(), 3);
        assert!(
            seen[0] != seen[1] || seen[1] != seen[2],
            "retries never varied"
        );
    }
}
