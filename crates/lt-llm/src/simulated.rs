//! The simulated tuning LLM.
//!
//! [`SimulatedLlm`] stands in for GPT-4. It is **prompt-blind in the same
//! way a real API call is**: it receives only the prompt string, recovers
//! the target DBMS, the hardware description and the workload description
//! (compressed join-structure lines, or raw SQL in the no-compressor
//! ablation), and samples a complete configuration script. It holds no
//! reference to the workload, the catalog or the simulator — if the prompt
//! omits an expensive join, the model cannot index it.
//!
//! Sampling reproduces the empirical properties the paper reports for
//! GPT-4 (§6.3):
//!
//! * recommendations cluster around DBA folklore (buffer pool ≈ 25% of
//!   RAM, `effective_cache_size` ≈ 75%, `random_page_cost` ≈ 1.1 with
//!   indexes, parallel workers ≈ cores),
//! * temperature adds variance to every choice, and
//! * a configurable fraction of samples are **outliers** — configurations
//!   up to ~5× slower (tiny work memory, default buffer pool, no indexes).

use crate::api::LanguageModel;
use lt_common::{derive_seed, Result, Rng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Tuning parameters of the simulated model.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedLlmOptions {
    /// Probability (at temperature ≥ 0.7) that a sample is an outlier
    /// configuration. The paper observes outliers in roughly 1 of 7 GPT-4
    /// samples for TPC-H.
    pub outlier_rate: f64,
    /// Maximum number of index recommendations per configuration.
    pub max_indexes: usize,
}

impl Default for SimulatedLlmOptions {
    fn default() -> Self {
        SimulatedLlmOptions {
            outlier_rate: 0.15,
            max_indexes: 20,
        }
    }
}

/// GPT-4 stand-in. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct SimulatedLlm {
    options: SimulatedLlmOptions,
}

impl SimulatedLlm {
    /// Model with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model with explicit options.
    pub fn with_options(options: SimulatedLlmOptions) -> Self {
        SimulatedLlm { options }
    }
}

impl LanguageModel for SimulatedLlm {
    fn complete(&self, prompt: &str, temperature: f64, seed: u64) -> Result<String> {
        let parsed = PromptFacts::parse(prompt);
        // Sampling is seeded by the prompt's *semantic content* (system,
        // hardware, workload structure), not its surface text: renaming
        // identifiers does not change the output distribution, matching the
        // paper's observation that obfuscation leaves performance
        // unchanged (§6.4.3).
        let mut hasher = DefaultHasher::new();
        parsed.mysql.hash(&mut hasher);
        parsed.memory_bytes.hash(&mut hasher);
        parsed.cores.hash(&mut hasher);
        parsed.params_only.hash(&mut hasher);
        parsed.join_columns.len().hash(&mut hasher);
        let mut rng = lt_common::seeded_rng(derive_seed(hasher.finish(), seed));
        Ok(generate(&parsed, temperature, &mut rng, self.options))
    }

    fn name(&self) -> &str {
        "simulated-gpt4"
    }
}

/// What the model recovers from the prompt text.
#[derive(Debug, Clone, Default, PartialEq)]
struct PromptFacts {
    mysql: bool,
    memory_bytes: u64,
    cores: u32,
    /// Join columns as `table.column` (or bare / obfuscated identifiers),
    /// in prompt order — most valuable first by compressor construction.
    join_columns: Vec<String>,
    /// True when the prompt forbids index recommendations (parameter-only
    /// tuning scenario).
    params_only: bool,
    /// Knob recommendations mined from documentation passages embedded in
    /// the prompt ("set <knob> to <value>"), applied as overrides — the
    /// model follows documentation it is shown (RAG extension).
    doc_overrides: Vec<(String, String)>,
}

impl PromptFacts {
    fn parse(prompt: &str) -> PromptFacts {
        let lower = prompt.to_ascii_lowercase();
        let mut facts = PromptFacts {
            mysql: lower.contains("mysql"),
            memory_bytes: 8 * (1 << 30),
            cores: 4,
            join_columns: Vec::new(),
            params_only: lower.contains("do not recommend index")
                || lower.contains("only system parameters"),
            doc_overrides: Vec::new(),
        };
        for line in prompt.lines() {
            let trimmed = line.trim();
            let tl = trimmed.to_ascii_lowercase();
            if let Some(rest) = tl.strip_prefix("memory:") {
                if let Some(b) = parse_mem(rest.trim()) {
                    facts.memory_bytes = b;
                }
                continue;
            }
            if let Some(rest) = tl.strip_prefix("cores:") {
                if let Ok(c) = rest.trim().parse::<u32>() {
                    facts.cores = c;
                }
                continue;
            }
            if let Some(cols) = parse_join_line(trimmed) {
                facts.join_columns.extend(cols);
                continue;
            }
            if let Some(hint) = parse_doc_hint(trimmed) {
                facts.doc_overrides.push(hint);
            }
        }
        // No compressed lines? The prompt may carry raw SQL instead.
        if facts.join_columns.is_empty() && lower.contains("select") {
            facts.join_columns = join_columns_from_sql(prompt);
        }
        dedup_preserving_order(&mut facts.join_columns);
        facts
    }
}

fn parse_mem(text: &str) -> Option<u64> {
    let digits: String = text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    let value: f64 = digits.parse().ok()?;
    let unit = text[digits.len()..].trim().to_ascii_lowercase();
    let mult: f64 = match unit.as_str() {
        "" | "gb" | "gib" => (1u64 << 30) as f64,
        "mb" | "mib" => (1u64 << 20) as f64,
        "tb" | "tib" => (1u64 << 40) as f64,
        _ => return None,
    };
    Some((value * mult) as u64)
}

/// Recognizes a compressed-workload line: `A: B, C, D` where every element
/// is an identifier, optionally `table.column`-qualified.
fn parse_join_line(line: &str) -> Option<Vec<String>> {
    let (lhs, rhs) = line.split_once(':')?;
    let lhs = lhs.trim();
    if !is_identifier(lhs) {
        return None;
    }
    let mut cols = vec![lhs.to_string()];
    for part in rhs.split(',') {
        let p = part.trim();
        if p.is_empty() {
            continue;
        }
        if !is_identifier(p) {
            return None;
        }
        cols.push(p.to_string());
    }
    if cols.len() < 2 {
        return None;
    }
    Some(cols)
}

fn is_identifier(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
}

/// Extracts join columns from raw SQL in the prompt (the no-compressor
/// ablation sends full queries). Alias qualifiers are resolved by the SQL
/// analyzer; bare TPC-H-style columns are attributed to their table via
/// the benchmark's well-known prefix convention — knowledge a pre-trained
/// model genuinely has (obfuscated workloads never take this path since
/// obfuscation applies to extracted snippets).
fn join_columns_from_sql(prompt: &str) -> Vec<String> {
    let mut columns = Vec::new();
    for stmt in lt_sql::split_statements(prompt) {
        let Some(pos) = stmt.to_ascii_lowercase().find("select") else {
            continue;
        };
        let Ok(query) = lt_sql::parse_query(stmt[pos..].trim()) else {
            continue;
        };
        let analysis = lt_sql::analysis::analyze(&query);
        for pair in analysis.unique_join_pairs() {
            for col in [&pair.left, &pair.right] {
                let qualified = match &col.qualifier {
                    Some(q) => format!("{q}.{}", col.column),
                    None => match tpch_table_for(&col.column) {
                        Some(t) => format!("{t}.{}", col.column),
                        None => continue,
                    },
                };
                columns.push(qualified);
            }
        }
    }
    columns
}

fn tpch_table_for(column: &str) -> Option<&'static str> {
    let prefixes: &[(&str, &str)] = &[
        ("ps_", "partsupp"),
        ("l_", "lineitem"),
        ("o_", "orders"),
        ("p_", "part"),
        ("c_", "customer"),
        ("s_", "supplier"),
        ("n_", "nation"),
        ("r_", "region"),
    ];
    prefixes
        .iter()
        .find(|(p, _)| column.starts_with(p))
        .map(|(_, t)| *t)
}

/// Mines "set <knob> to <value>" recommendations from documentation lines
/// in the prompt. Only underscore-bearing identifiers are treated as knob
/// names, so prose never matches by accident.
fn parse_doc_hint(line: &str) -> Option<(String, String)> {
    let lower = line.to_ascii_lowercase();
    let words: Vec<&str> = lower
        .split(|c: char| c.is_whitespace() || c == ',' || c == ';')
        .filter(|w| !w.is_empty())
        .collect();
    for (i, w) in words.iter().enumerate() {
        if (*w == "set" || *w == "setting") && i + 3 < words.len() + 1 {
            let knob = words.get(i + 1)?;
            if !knob.contains('_') || !is_identifier(knob) {
                continue;
            }
            if words.get(i + 2).copied() != Some("to") {
                continue;
            }
            let value = words
                .get(i + 3)?
                .trim_matches(|c: char| c == '.' || c == ',' || c == ';');
            if value.is_empty() {
                continue;
            }
            return Some((knob.to_string(), value.to_string()));
        }
    }
    None
}

fn dedup_preserving_order(v: &mut Vec<String>) {
    let mut seen = std::collections::HashSet::new();
    v.retain(|s| seen.insert(s.clone()));
}

// ---- configuration generation ----

fn generate(
    facts: &PromptFacts,
    temperature: f64,
    rng: &mut Rng,
    options: SimulatedLlmOptions,
) -> String {
    let heat = temperature.clamp(0.0, 2.0);
    let outlier_p = options.outlier_rate * (heat / 0.7).min(1.0);
    if rng.gen_bool(outlier_p.clamp(0.0, 1.0)) {
        return generate_outlier(facts, rng);
    }
    if facts.mysql {
        generate_mysql(facts, heat, rng, options)
    } else {
        generate_postgres(facts, heat, rng, options)
    }
}

fn gib(bytes: u64) -> u64 {
    bytes >> 30
}

fn pick<T: Copy>(rng: &mut Rng, heat: f64, default: T, alternatives: &[T]) -> T {
    if heat <= 1e-9 || alternatives.is_empty() || !rng.gen_bool((0.5 * heat).clamp(0.0, 1.0)) {
        default
    } else {
        *rng.choose(alternatives).expect("non-empty")
    }
}

fn generate_postgres(
    facts: &PromptFacts,
    heat: f64,
    rng: &mut Rng,
    options: SimulatedLlmOptions,
) -> String {
    let mem_gb = gib(facts.memory_bytes).max(1);
    let shared_pct = pick(rng, heat, 25, &[20, 30, 35, 40]);
    let shared = (mem_gb * shared_pct / 100).max(1);
    let cache_pct = pick(rng, heat, 75, &[50, 60, 70]);
    let cache = (mem_gb * cache_pct / 100).max(1);
    let work_mem_gb = pick(rng, heat, 1, &[1, 2]);
    let maintenance_gb = pick(rng, heat, 2, &[1, 2, 4]);
    let rpc = pick(rng, heat, 1.1, &[1.0, 1.2, 2.0]);
    let workers = pick(
        rng,
        heat,
        (facts.cores / 2).max(1),
        &[facts.cores.max(1), 2],
    );

    let mut out = String::from("-- Recommended configuration\n");
    out.push_str(&format!(
        "ALTER SYSTEM SET shared_buffers = '{shared}GB';\n"
    ));
    out.push_str(&format!("ALTER SYSTEM SET work_mem = '{work_mem_gb}GB';\n"));
    out.push_str(&format!(
        "ALTER SYSTEM SET effective_cache_size = '{cache}GB';\n"
    ));
    out.push_str(&format!(
        "ALTER SYSTEM SET maintenance_work_mem = '{maintenance_gb}GB';\n"
    ));
    out.push_str("ALTER SYSTEM SET checkpoint_completion_target = 0.9;\n");
    out.push_str("ALTER SYSTEM SET wal_buffers = '16MB';\n");
    out.push_str("ALTER SYSTEM SET default_statistics_target = 100;\n");
    if !rng.gen_bool((0.15 * heat).clamp(0.0, 1.0)) {
        out.push_str(&format!("ALTER SYSTEM SET random_page_cost = {rpc};\n"));
    }
    out.push_str("ALTER SYSTEM SET effective_io_concurrency = 200;\n");
    if !rng.gen_bool((0.15 * heat).clamp(0.0, 1.0)) {
        out.push_str(&format!(
            "ALTER SYSTEM SET max_parallel_workers_per_gather = {workers};\n"
        ));
        out.push_str(&format!(
            "ALTER SYSTEM SET max_parallel_workers = {};\n",
            facts.cores.max(1)
        ));
    }
    push_indexes(&mut out, facts, heat, rng, options);
    push_doc_overrides(&mut out, facts);
    out
}

fn generate_mysql(
    facts: &PromptFacts,
    heat: f64,
    rng: &mut Rng,
    options: SimulatedLlmOptions,
) -> String {
    let mem_gb = gib(facts.memory_bytes).max(1);
    let pool_pct = pick(rng, heat, 65, &[50, 60, 70, 75]);
    let pool = (mem_gb * pool_pct / 100).max(1);
    let sort_mb = pick(rng, heat, 256, &[64, 128, 512]);
    let join_mb = pick(rng, heat, 256, &[64, 128, 512]);
    let tmp_gb = pick(rng, heat, 1, &[1, 2]);

    let mut out = String::from("-- Recommended configuration\n");
    out.push_str(&format!(
        "SET GLOBAL innodb_buffer_pool_size = '{pool}GB';\n"
    ));
    out.push_str(&format!("SET GLOBAL sort_buffer_size = '{sort_mb}MB';\n"));
    out.push_str(&format!("SET GLOBAL join_buffer_size = '{join_mb}MB';\n"));
    out.push_str(&format!("SET GLOBAL tmp_table_size = '{tmp_gb}GB';\n"));
    out.push_str(&format!("SET GLOBAL max_heap_table_size = '{tmp_gb}GB';\n"));
    out.push_str("SET GLOBAL innodb_log_file_size = '1GB';\n");
    out.push_str("SET GLOBAL innodb_flush_log_at_trx_commit = 2;\n");
    out.push_str("SET GLOBAL innodb_io_capacity = 2000;\n");
    out.push_str(&format!(
        "SET GLOBAL innodb_read_io_threads = {};\n",
        facts.cores.max(1)
    ));
    out.push_str(&format!(
        "SET GLOBAL innodb_parallel_read_threads = {};\n",
        facts.cores.max(1)
    ));
    push_indexes(&mut out, facts, heat, rng, options);
    push_doc_overrides(&mut out, facts);
    out
}

/// Appends documentation-derived knob overrides; configurations apply
/// assignments in order, so these take precedence over the folklore
/// values (the model trusts documentation it was shown).
fn push_doc_overrides(out: &mut String, facts: &PromptFacts) {
    for (knob, value) in &facts.doc_overrides {
        if facts.mysql {
            out.push_str(&format!("SET GLOBAL {knob} = '{value}';\n"));
        } else {
            out.push_str(&format!("ALTER SYSTEM SET {knob} = '{value}';\n"));
        }
    }
}

fn push_indexes(
    out: &mut String,
    facts: &PromptFacts,
    heat: f64,
    rng: &mut Rng,
    options: SimulatedLlmOptions,
) {
    if facts.params_only || facts.join_columns.is_empty() {
        return;
    }
    // Occasionally a sample omits indexes entirely (mild under-performer).
    if rng.gen_bool((0.08 * heat).clamp(0.0, 1.0)) {
        return;
    }
    let max = options.max_indexes.min(facts.join_columns.len());
    let min = max.min(8);
    let count = if max > min {
        rng.gen_range(min..=max)
    } else {
        max
    };
    for col in facts.join_columns.iter().take(count) {
        // Small chance to skip one column (sampling noise).
        if rng.gen_bool((0.05 * heat).clamp(0.0, 1.0)) {
            continue;
        }
        match col.split_once('.') {
            Some((table, column)) => {
                out.push_str(&format!("CREATE INDEX ON {table} ({column});\n"));
            }
            None => {
                // Bare identifier (obfuscated or unqualified): still emit;
                // the caller's deobfuscation layer resolves the table.
                out.push_str(&format!("CREATE INDEX ON {col} ({col});\n"));
            }
        }
    }
}

fn generate_outlier(facts: &PromptFacts, rng: &mut Rng) -> String {
    // The failure modes real LLM samples exhibit: way too little work
    // memory, default-sized buffer pool, pessimistic planner costs, and no
    // physical-design help.
    let flavor = rng.gen_range(0..3u8);
    if facts.mysql {
        let mut out = String::from("-- Conservative configuration\n");
        out.push_str("SET GLOBAL innodb_buffer_pool_size = '256MB';\n");
        out.push_str("SET GLOBAL sort_buffer_size = '256kB';\n");
        out.push_str("SET GLOBAL join_buffer_size = '256kB';\n");
        if flavor == 1 {
            out.push_str("SET GLOBAL innodb_flush_log_at_trx_commit = 1;\n");
        }
        out
    } else {
        let mut out = String::from("-- Conservative configuration\n");
        out.push_str("ALTER SYSTEM SET shared_buffers = '128MB';\n");
        out.push_str("ALTER SYSTEM SET work_mem = '256kB';\n");
        match flavor {
            0 => out.push_str("ALTER SYSTEM SET random_page_cost = 8.0;\n"),
            1 => out.push_str("ALTER SYSTEM SET max_parallel_workers_per_gather = 0;\n"),
            _ => out.push_str("ALTER SYSTEM SET effective_cache_size = '512MB';\n"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt(dbms: &str, lines: &str) -> String {
        format!(
            "Recommend some configuration parameters for {dbms} to optimize the \
             system's performance. Parameters might include system-level \
             configurations, like memory, query optimizer or physical design \
             configurations, like index recommendations.\n\
             Each row in the following list has the following format:\n\
             {{a join key A}}:{{all the joins with A in the workload}}\n\
             {lines}\n\
             The workload runs on a system with the following specs:\n\
             memory: 61GB\ncores: 8\n"
        )
    }

    #[test]
    fn parses_dbms_memory_cores() {
        let p = prompt("PostgreSQL", "lineitem.l_orderkey: orders.o_orderkey");
        let f = PromptFacts::parse(&p);
        assert!(!f.mysql);
        assert_eq!(f.memory_bytes, 61 * (1u64 << 30));
        assert_eq!(f.cores, 8);
        assert_eq!(f.join_columns.len(), 2);

        let p = prompt("MySQL", "a.x: b.y");
        assert!(PromptFacts::parse(&p).mysql);
    }

    #[test]
    fn instruction_braces_line_is_not_a_join_line() {
        let p = prompt("PostgreSQL", "t1.c1: t2.c2, t3.c3");
        let f = PromptFacts::parse(&p);
        assert_eq!(f.join_columns, vec!["t1.c1", "t2.c2", "t3.c3"]);
    }

    #[test]
    fn zero_temperature_is_deterministic_across_seeds() {
        let llm = SimulatedLlm::new();
        let p = prompt("PostgreSQL", "lineitem.l_orderkey: orders.o_orderkey");
        let a = llm.complete(&p, 0.0, 1).unwrap();
        let b = llm.complete(&p, 0.0, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_seed_same_output_high_temperature() {
        let llm = SimulatedLlm::new();
        let p = prompt("PostgreSQL", "lineitem.l_orderkey: orders.o_orderkey");
        assert_eq!(
            llm.complete(&p, 1.0, 7).unwrap(),
            llm.complete(&p, 1.0, 7).unwrap()
        );
    }

    #[test]
    fn temperature_produces_variety() {
        let llm = SimulatedLlm::new();
        let p = prompt("PostgreSQL", "lineitem.l_orderkey: orders.o_orderkey");
        let outputs: std::collections::HashSet<String> =
            (0..20).map(|s| llm.complete(&p, 1.0, s).unwrap()).collect();
        assert!(outputs.len() > 3, "only {} distinct outputs", outputs.len());
    }

    #[test]
    fn recommends_25_percent_shared_buffers_at_zero_temp() {
        let llm = SimulatedLlm::new();
        let p = prompt("PostgreSQL", "lineitem.l_orderkey: orders.o_orderkey");
        let out = llm.complete(&p, 0.0, 0).unwrap();
        // 61GB * 25% = 15GB, the paper's Table 5 value.
        assert!(out.contains("shared_buffers = '15GB'"), "{out}");
        assert!(out.contains("random_page_cost = 1.1"), "{out}");
        assert!(out.contains("effective_io_concurrency = 200"), "{out}");
    }

    #[test]
    fn indexes_follow_the_prompt_columns() {
        let llm = SimulatedLlm::new();
        let p = prompt(
            "PostgreSQL",
            "lineitem.l_orderkey: orders.o_orderkey\nlineitem.l_partkey: part.p_partkey",
        );
        let out = llm.complete(&p, 0.0, 0).unwrap();
        assert!(
            out.contains("CREATE INDEX ON lineitem (l_orderkey)"),
            "{out}"
        );
        assert!(out.contains("CREATE INDEX ON part (p_partkey)"), "{out}");
    }

    #[test]
    fn no_indexes_for_columns_absent_from_prompt() {
        let llm = SimulatedLlm::new();
        let p = prompt("PostgreSQL", "lineitem.l_orderkey: orders.o_orderkey");
        let out = llm.complete(&p, 0.0, 0).unwrap();
        assert!(!out.contains("l_partkey"), "{out}");
    }

    #[test]
    fn params_only_mode_skips_indexes() {
        let llm = SimulatedLlm::new();
        let p = prompt("PostgreSQL", "lineitem.l_orderkey: orders.o_orderkey")
            + "\nDo not recommend indexes; only system parameters.\n";
        let out = llm.complete(&p, 0.0, 0).unwrap();
        assert!(!out.contains("CREATE INDEX"), "{out}");
    }

    #[test]
    fn mysql_gets_mysql_knobs() {
        let llm = SimulatedLlm::new();
        let p = prompt("MySQL", "lineitem.l_orderkey: orders.o_orderkey");
        let out = llm.complete(&p, 0.0, 0).unwrap();
        assert!(out.contains("innodb_buffer_pool_size"), "{out}");
        assert!(!out.contains("shared_buffers"), "{out}");
    }

    #[test]
    fn outliers_appear_at_the_configured_rate() {
        let llm = SimulatedLlm::with_options(SimulatedLlmOptions {
            outlier_rate: 0.5,
            max_indexes: 14,
        });
        let p = prompt("PostgreSQL", "lineitem.l_orderkey: orders.o_orderkey");
        let outliers = (0..100)
            .filter(|&s| {
                llm.complete(&p, 1.0, s)
                    .unwrap()
                    .contains("work_mem = '256kB'")
            })
            .count();
        assert!((25..=75).contains(&outliers), "outliers={outliers}");
    }

    #[test]
    fn raw_sql_prompts_yield_indexes_via_parsing() {
        let llm = SimulatedLlm::new();
        let p = "Recommend some configuration parameters for PostgreSQL.\n\
                 Here are the workload queries:\n\
                 select count(*) from lineitem, orders where l_orderkey = o_orderkey;\n\
                 memory: 61GB\ncores: 8\n";
        let out = llm.complete(p, 0.0, 0).unwrap();
        assert!(
            out.contains("CREATE INDEX ON lineitem (l_orderkey)"),
            "{out}"
        );
        assert!(out.contains("CREATE INDEX ON orders (o_orderkey)"), "{out}");
    }

    #[test]
    fn documentation_hints_override_folklore() {
        let llm = SimulatedLlm::new();
        let p = prompt("PostgreSQL", "lineitem.l_orderkey: orders.o_orderkey")
            + "\nThe following documentation may be relevant:\n\
               - On SSD storage, set effective_io_concurrency to 400.\n";
        let out = llm.complete(&p, 0.0, 0).unwrap();
        // The override is appended after the folklore value, so it wins
        // when the configuration is applied in order.
        let last = out
            .lines()
            .rfind(|l| l.contains("effective_io_concurrency"))
            .unwrap();
        assert!(last.contains("400"), "{out}");
    }

    #[test]
    fn prose_without_knob_names_mines_nothing() {
        let facts = PromptFacts::parse(
            "Set the table for dinner. Setting sail to the west.\nmemory: 8GB\n",
        );
        assert!(facts.doc_overrides.is_empty(), "{:?}", facts.doc_overrides);
    }

    #[test]
    fn obfuscated_identifiers_are_used_verbatim() {
        let llm = SimulatedLlm::new();
        let p = prompt("PostgreSQL", "T0.C3: T1.C7");
        let out = llm.complete(&p, 0.0, 0).unwrap();
        assert!(out.contains("CREATE INDEX ON T0 (C3)"), "{out}");
    }
}
