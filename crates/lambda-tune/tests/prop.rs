//! Property-based tests for λ-Tune's scheduler and cost model
//! (Theorems 5.2–5.3) and the clustering invariants (§5.4).

use lambda_tune::{cluster_queries, expected_index_cost, find_optimal_order};
use proptest::prelude::*;

fn items_and_costs() -> impl Strategy<Value = (Vec<Vec<usize>>, Vec<f64>)> {
    (1usize..=6, 1usize..=5).prop_flat_map(|(n_items, n_slots)| {
        let items = proptest::collection::vec(
            proptest::collection::vec(0..n_slots, 0..=n_slots),
            n_items,
        );
        let costs = proptest::collection::vec(0.1f64..20.0, n_slots);
        (items, costs)
    })
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for pos in 0..=p.len() {
            let mut q = p.clone();
            q.insert(pos, n - 1);
            out.push(q);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 5.3: the DP order achieves the brute-force optimum of the
    /// expected-cost model (Eq. 1).
    #[test]
    fn dp_matches_brute_force((items, costs) in items_and_costs()) {
        let order = find_optimal_order(&items, &costs);
        let dp = expected_index_cost(&order, &items, &costs);
        let best = permutations(items.len())
            .into_iter()
            .map(|p| expected_index_cost(&p, &items, &costs))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((dp - best).abs() < 1e-9, "dp {dp} vs brute {best}");
    }

    /// The expected cost of any order is bounded below by the weighted
    /// first-item cost and above by the full index cost.
    #[test]
    fn expected_cost_bounds((items, costs) in items_and_costs()) {
        let order: Vec<usize> = (0..items.len()).collect();
        let cost = expected_index_cost(&order, &items, &costs);
        // Upper bound: creating every distinct index once.
        let mut distinct: Vec<usize> = items.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let full: f64 = distinct.iter().map(|&s| costs[s]).sum();
        prop_assert!(cost <= full + 1e-9, "{cost} > {full}");
        prop_assert!(cost >= 0.0);
    }

    /// Prefix-monotonicity behind Theorem 5.2: improving the order of the
    /// first k items never worsens the total expected cost when the rest
    /// of the order is kept.
    #[test]
    fn principle_of_optimality_holds((items, costs) in items_and_costs()) {
        let n = items.len();
        if n < 3 {
            return Ok(());
        }
        // Compare two orders that differ only in their first two items.
        let mut a: Vec<usize> = (0..n).collect();
        let mut b = a.clone();
        b.swap(0, 1);
        let ca = expected_index_cost(&a, &items, &costs);
        let cb = expected_index_cost(&b, &items, &costs);
        // Whichever prefix is cheaper on its own must not be worse overall:
        // evaluate the two-item subproblems.
        let sub_items = vec![items[0].clone(), items[1].clone()];
        let pa = expected_index_cost(&[0, 1], &sub_items, &costs);
        let pb = expected_index_cost(&[1, 0], &sub_items, &costs);
        if pa < pb - 1e-9 {
            prop_assert!(ca <= cb + 1e-9, "prefix better but total worse");
        } else if pb < pa - 1e-9 {
            prop_assert!(cb <= ca + 1e-9, "prefix better but total worse");
        }
        a.swap(0, 1); // silence unused-mut lint paths
        let _ = a;
    }

    /// Clustering is a partition: every item in exactly one cluster, at
    /// most k clusters.
    #[test]
    fn clustering_is_a_partition(
        (items, costs) in items_and_costs(),
        k in 1usize..=5,
        seed in 0u64..100,
    ) {
        let clusters = cluster_queries(&items, costs.len(), k, seed);
        prop_assert!(clusters.len() <= k);
        let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..items.len()).collect();
        prop_assert_eq!(seen, expected);
    }

    /// Items with identical dependency sets always share a cluster.
    #[test]
    fn identical_items_cluster_together(
        base in proptest::collection::vec(0usize..4, 0..4),
        copies in 2usize..5,
        k in 1usize..=3,
        seed in 0u64..50,
    ) {
        let items: Vec<Vec<usize>> = (0..copies).map(|_| base.clone()).collect();
        let clusters = cluster_queries(&items, 4, k, seed);
        // All copies are identical, so exactly one non-empty cluster.
        prop_assert_eq!(clusters.len(), 1);
        prop_assert_eq!(clusters[0].len(), copies);
    }
}
