//! Randomized property tests for λ-Tune's scheduler and cost model
//! (Theorems 5.2–5.3) and the clustering invariants (§5.4), driven by a
//! seeded `lt_common::Rng`.

use lambda_tune::{cluster_queries, expected_index_cost, find_optimal_order};
use lt_common::{seeded_rng, Rng};

const CASES: usize = 64;

fn items_and_costs(rng: &mut Rng) -> (Vec<Vec<usize>>, Vec<f64>) {
    let n_items = rng.gen_range(1..=6usize);
    let n_slots = rng.gen_range(1..=5usize);
    let items: Vec<Vec<usize>> = (0..n_items)
        .map(|_| {
            (0..rng.gen_range(0..=n_slots))
                .map(|_| rng.gen_range(0..n_slots))
                .collect()
        })
        .collect();
    let costs: Vec<f64> = (0..n_slots).map(|_| rng.gen_range(0.1..20.0)).collect();
    (items, costs)
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for pos in 0..=p.len() {
            let mut q = p.clone();
            q.insert(pos, n - 1);
            out.push(q);
        }
    }
    out
}

/// Theorem 5.3: the DP order achieves the brute-force optimum of the
/// expected-cost model (Eq. 1).
#[test]
fn dp_matches_brute_force() {
    let mut rng = seeded_rng(0xA1);
    for _ in 0..CASES {
        let (items, costs) = items_and_costs(&mut rng);
        let order = find_optimal_order(&items, &costs);
        let dp = expected_index_cost(&order, &items, &costs);
        let best = permutations(items.len())
            .into_iter()
            .map(|p| expected_index_cost(&p, &items, &costs))
            .fold(f64::INFINITY, f64::min);
        assert!((dp - best).abs() < 1e-9, "dp {dp} vs brute {best}");
    }
}

/// The expected cost of any order is bounded below by the weighted
/// first-item cost and above by the full index cost.
#[test]
fn expected_cost_bounds() {
    let mut rng = seeded_rng(0xA2);
    for _ in 0..CASES {
        let (items, costs) = items_and_costs(&mut rng);
        let order: Vec<usize> = (0..items.len()).collect();
        let cost = expected_index_cost(&order, &items, &costs);
        // Upper bound: creating every distinct index once.
        let mut distinct: Vec<usize> = items.iter().flatten().copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        let full: f64 = distinct.iter().map(|&s| costs[s]).sum();
        assert!(cost <= full + 1e-9, "{cost} > {full}");
        assert!(cost >= 0.0);
    }
}

/// Prefix-monotonicity behind Theorem 5.2: improving the order of the
/// first k items never worsens the total expected cost when the rest
/// of the order is kept.
#[test]
fn principle_of_optimality_holds() {
    let mut rng = seeded_rng(0xA3);
    for _ in 0..CASES {
        let (items, costs) = items_and_costs(&mut rng);
        let n = items.len();
        if n < 3 {
            continue;
        }
        // Compare two orders that differ only in their first two items.
        let a: Vec<usize> = (0..n).collect();
        let mut b = a.clone();
        b.swap(0, 1);
        let ca = expected_index_cost(&a, &items, &costs);
        let cb = expected_index_cost(&b, &items, &costs);
        // Whichever prefix is cheaper on its own must not be worse overall:
        // evaluate the two-item subproblems.
        let sub_items = vec![items[0].clone(), items[1].clone()];
        let pa = expected_index_cost(&[0, 1], &sub_items, &costs);
        let pb = expected_index_cost(&[1, 0], &sub_items, &costs);
        if pa < pb - 1e-9 {
            assert!(ca <= cb + 1e-9, "prefix better but total worse");
        } else if pb < pa - 1e-9 {
            assert!(cb <= ca + 1e-9, "prefix better but total worse");
        }
    }
}

/// Clustering is a partition: every item in exactly one cluster, at
/// most k clusters.
#[test]
fn clustering_is_a_partition() {
    let mut rng = seeded_rng(0xA4);
    for _ in 0..CASES {
        let (items, costs) = items_and_costs(&mut rng);
        let k = rng.gen_range(1..=5usize);
        let seed = rng.gen_range(0..100u64);
        let clusters = cluster_queries(&items, costs.len(), k, seed);
        assert!(clusters.len() <= k);
        let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..items.len()).collect();
        assert_eq!(seen, expected);
    }
}

/// Items with identical dependency sets always share a cluster.
#[test]
fn identical_items_cluster_together() {
    let mut rng = seeded_rng(0xA5);
    for _ in 0..CASES {
        let base: Vec<usize> = (0..rng.gen_range(0..4usize))
            .map(|_| rng.gen_range(0..4usize))
            .collect();
        let copies = rng.gen_range(2..5usize);
        let k = rng.gen_range(1..=3usize);
        let seed = rng.gen_range(0..50u64);
        let items: Vec<Vec<usize>> = (0..copies).map(|_| base.clone()).collect();
        let clusters = cluster_queries(&items, 4, k, seed);
        // All copies are identical, so exactly one non-empty cluster.
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), copies);
    }
}
