//! Prompt generation (paper §3.1, Listing 1).
//!
//! The template starts with generic tuning instructions naming the target
//! DBMS, explains the compressed-workload line format, embeds the workload
//! description, and closes with the hardware specification. Two extensions
//! beyond Listing 1 are flagged explicitly: a parameter-only instruction
//! (for the paper's Scenario 1, where physical design is out of scope) and
//! a raw-SQL mode (for the no-compressor ablation, §6.4.4).

use crate::compressor::CompressedWorkload;
use lt_dbms::{Dbms, Hardware};
use lt_llm::{count_tokens, truncate_to_tokens};
use lt_workloads::Workload;

/// Builds prompts for a tuning problem instance.
#[derive(Debug, Clone)]
pub struct PromptBuilder {
    dbms: Dbms,
    hardware: Hardware,
    params_only: bool,
}

impl PromptBuilder {
    /// New builder for a target system and machine.
    pub fn new(dbms: Dbms, hardware: Hardware) -> Self {
        PromptBuilder {
            dbms,
            hardware,
            params_only: false,
        }
    }

    /// Restricts recommendations to system parameters (no index DDL).
    pub fn params_only(mut self, yes: bool) -> Self {
        self.params_only = yes;
        self
    }

    fn header(&self) -> String {
        let mut s = format!(
            "Recommend some configuration parameters for {} to optimize the \
             system's performance. Parameters might include system-level \
             configurations, like memory, query optimizer or physical design \
             configurations, like index recommendations.\n",
            self.dbms.name()
        );
        if self.params_only {
            s.push_str("Do not recommend indexes; recommend only system parameters.\n");
        }
        s
    }

    fn footer(&self) -> String {
        format!(
            "The workload runs on a system with the following specs:\n\
             memory: {}GB\ncores: {}\n",
            self.hardware.memory_gib(),
            self.hardware.cores
        )
    }

    /// The paper's prompt: compressed workload description.
    pub fn build(&self, compressed: &CompressedWorkload) -> String {
        let mut prompt = self.header();
        prompt.push_str(
            "Each row in the following list has the following format:\n\
             {a join key A}:{all the joins with A in the workload}\n",
        );
        prompt.push_str(&compressed.text());
        prompt.push('\n');
        prompt.push_str(&self.footer());
        prompt
    }

    /// The no-compressor ablation: as many full SQL queries as fit within
    /// `budget` tokens (paper §6.4.4 fits 26 JOB queries into the intrinsic
    /// limit). Returns the prompt and the number of queries included.
    pub fn build_with_full_sql(&self, workload: &Workload, budget: usize) -> (String, usize) {
        let mut prompt = self.header();
        prompt.push_str("The workload consists of the following SQL queries:\n");
        let fixed = count_tokens(&prompt) + count_tokens(&self.footer());
        let mut used = fixed;
        let mut included = 0usize;
        for wq in &workload.queries {
            let stmt = format!("{};\n", wq.sql.trim().trim_end_matches(';'));
            let cost = count_tokens(&stmt);
            if used + cost > budget {
                break;
            }
            prompt.push_str(&stmt);
            used += cost;
            included += 1;
        }
        prompt.push_str(&self.footer());
        // Guard against a fixed part already exceeding the budget.
        let final_prompt = if count_tokens(&prompt) > budget {
            truncate_to_tokens(&prompt, budget).to_string()
        } else {
            prompt
        };
        (final_prompt, included)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::Compressor;
    use crate::snippets::extract_snippets;
    use lt_dbms::SimDb;
    use lt_workloads::Benchmark;

    fn compressed(budget: usize) -> (lt_workloads::Workload, CompressedWorkload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 1);
        let snippets = extract_snippets(&db, &w);
        let c = Compressor::new(&w.catalog)
            .compress(&snippets, budget)
            .unwrap();
        (w, c)
    }

    #[test]
    fn prompt_contains_all_template_blocks() {
        let (_, c) = compressed(300);
        let p = PromptBuilder::new(Dbms::Postgres, Hardware::p3_2xlarge()).build(&c);
        assert!(p.contains("PostgreSQL"), "{p}");
        assert!(p.contains("{a join key A}:{all the joins with A in the workload}"));
        assert!(p.contains("memory: 61GB"));
        assert!(p.contains("cores: 8"));
        assert!(p.contains("lineitem."), "{p}");
    }

    #[test]
    fn mysql_prompt_names_mysql() {
        let (_, c) = compressed(300);
        let p = PromptBuilder::new(Dbms::Mysql, Hardware::p3_2xlarge()).build(&c);
        assert!(p.contains("MySQL"));
    }

    #[test]
    fn params_only_adds_the_restriction() {
        let (_, c) = compressed(300);
        let p = PromptBuilder::new(Dbms::Postgres, Hardware::p3_2xlarge())
            .params_only(true)
            .build(&c);
        assert!(p.contains("Do not recommend indexes"));
    }

    #[test]
    fn full_sql_mode_fits_queries_to_budget() {
        let w = Benchmark::Job.load();
        let builder = PromptBuilder::new(Dbms::Postgres, Hardware::p3_2xlarge());
        let (p, n) = builder.build_with_full_sql(&w, 4000);
        assert!(n > 0 && n < w.len(), "included {n} of {}", w.len());
        assert!(count_tokens(&p) <= 4000);
        let (p_big, n_big) = builder.build_with_full_sql(&w, 1_000_000);
        assert_eq!(n_big, w.len());
        assert!(p_big.contains("select"));
    }

    #[test]
    fn prompt_is_deterministic() {
        let (_, c) = compressed(200);
        let b = PromptBuilder::new(Dbms::Postgres, Hardware::p3_2xlarge());
        assert_eq!(b.build(&c), b.build(&c));
    }
}
