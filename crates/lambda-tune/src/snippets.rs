//! Query snippet extraction (paper §3.2).
//!
//! λ-Tune decomposes the workload into *query snippets* — binary join
//! relationships between columns — and values each snippet by the total
//! estimated cost of the join operators that evaluate it, obtained from
//! the optimizer via EXPLAIN (`V(p) = Σ_{j ∈ J(p)} EC_j`). Snippets with
//! higher value convey more potential for cost reduction to the LLM.

use lt_common::ColumnId;
use lt_dbms::TuningTarget;
use lt_workloads::Workload;
use std::collections::HashMap;

/// One join snippet: an (unordered) column pair and its accumulated value.
#[derive(Debug, Clone, PartialEq)]
pub struct Snippet {
    /// One join column (the pair is stored normalized, `left ≤ right`).
    pub left: ColumnId,
    /// The other join column.
    pub right: ColumnId,
    /// Total estimated cost of join operators evaluating this condition
    /// across the workload (planner units).
    pub value: f64,
}

/// Extracts the valued join snippets of a workload by explaining every
/// query under the database's current configuration.
pub fn extract_snippets<D: TuningTarget + ?Sized>(db: &D, workload: &Workload) -> Vec<Snippet> {
    let mut values: HashMap<(ColumnId, ColumnId), f64> = HashMap::new();
    for wq in &workload.queries {
        let plan = db.explain(&wq.parsed);
        for (left, right, cost) in plan.join_costs {
            let key = if left <= right {
                (left, right)
            } else {
                (right, left)
            };
            *values.entry(key).or_insert(0.0) += cost;
        }
    }
    let mut snippets: Vec<Snippet> = values
        .into_iter()
        .map(|((left, right), value)| Snippet { left, right, value })
        .collect();
    // Deterministic order: by value descending, ties by ids.
    snippets.sort_by(|a, b| {
        b.value
            .partial_cmp(&a.value)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.left, a.right).cmp(&(b.left, b.right)))
    });
    snippets
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    #[test]
    fn tpch_snippets_cover_the_famous_joins() {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 1);
        let snippets = extract_snippets(&db, &w);
        assert!(!snippets.is_empty());
        // The lineitem ⋈ orders join must be among the most valuable.
        let l = w.catalog.resolve_column(None, "l_orderkey").unwrap();
        let o = w.catalog.resolve_column(None, "o_orderkey").unwrap();
        let pos = snippets
            .iter()
            .position(|s| (s.left == l && s.right == o) || (s.left == o && s.right == l))
            .expect("lineitem-orders join snippet missing");
        assert!(pos < 5, "lineitem⋈orders ranked {pos}");
        // Sorted by value descending.
        for pair in snippets.windows(2) {
            assert!(pair[0].value >= pair[1].value);
        }
    }

    #[test]
    fn snippet_values_are_positive_and_finite() {
        let w = Benchmark::TpcdsSf1.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 1);
        for s in extract_snippets(&db, &w) {
            assert!(s.value.is_finite() && s.value >= 0.0);
            assert!(s.left <= s.right, "snippets are normalized");
        }
    }

    #[test]
    fn snippets_are_deterministic() {
        let w = Benchmark::Job.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 1);
        assert_eq!(extract_snippets(&db, &w), extract_snippets(&db, &w));
    }
}
