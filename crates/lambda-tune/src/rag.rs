//! Retrieval-augmented prompt generation.
//!
//! The paper notes (§2) that λ-Tune "could easily be augmented via
//! retrieval augmented generation, enabling the LLM to parse additional
//! information from the Web". This module implements that extension: a
//! [`DocumentStore`] holds tuning documentation split into passages, and
//! [`DocumentStore::retrieve`] returns the passages most relevant to a
//! tuning context (scored by weighted term overlap, rare terms counting
//! more — a compact TF-IDF). The λ-Tune pipeline appends the retrieved
//! passages to the prompt when [`crate::LambdaTuneOptions::rag`] is set.

use lt_llm::count_tokens;
use std::collections::{HashMap, HashSet};

/// One retrievable passage.
#[derive(Debug, Clone, PartialEq)]
pub struct Passage {
    /// Source document label (e.g. `"postgres-manual"`).
    pub source: String,
    /// Passage text (one or a few sentences).
    pub text: String,
}

/// A passage store with term-overlap retrieval.
#[derive(Debug, Clone, Default)]
pub struct DocumentStore {
    passages: Vec<Passage>,
    /// Document frequency per term, for inverse-frequency weighting.
    doc_freq: HashMap<String, u32>,
}

fn terms(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter(|t| t.len() > 2)
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

impl DocumentStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document, splitting it into sentence-level passages.
    pub fn add_document(&mut self, source: &str, text: &str) {
        for sentence in split_sentences(text) {
            let trimmed = sentence.trim();
            if trimmed.is_empty() {
                continue;
            }
            let unique: HashSet<String> = terms(trimmed).into_iter().collect();
            for t in unique {
                *self.doc_freq.entry(t).or_insert(0) += 1;
            }
            self.passages.push(Passage {
                source: source.to_string(),
                text: trimmed.to_string(),
            });
        }
    }

    /// Number of stored passages.
    pub fn len(&self) -> usize {
        self.passages.len()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.passages.is_empty()
    }

    /// Retrieves up to `k` passages most relevant to `query`, most relevant
    /// first. Passages with no term overlap are never returned.
    pub fn retrieve(&self, query: &str, k: usize) -> Vec<&Passage> {
        let query_terms: HashSet<String> = terms(query).into_iter().collect();
        let n = self.passages.len().max(1) as f64;
        let mut scored: Vec<(f64, usize)> = self
            .passages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let score: f64 = terms(&p.text)
                    .into_iter()
                    .collect::<HashSet<_>>()
                    .iter()
                    .filter(|t| query_terms.contains(*t))
                    .map(|t| {
                        let df = *self.doc_freq.get(t).unwrap_or(&1) as f64;
                        (n / df).ln_1p()
                    })
                    .sum();
                (score > 0.0).then_some((score, i))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored
            .into_iter()
            .take(k)
            .map(|(_, i)| &self.passages[i])
            .collect()
    }

    /// Renders a retrieval result as a prompt block, bounded by a token
    /// budget (passages that would exceed it are dropped).
    pub fn render_block(&self, query: &str, k: usize, token_budget: usize) -> String {
        let hits = self.retrieve(query, k);
        if hits.is_empty() {
            return String::new();
        }
        let mut block = String::from("The following documentation may be relevant:\n");
        let mut used = count_tokens(&block);
        for p in hits {
            let line = format!("- {}\n", p.text);
            let cost = count_tokens(&line);
            if used + cost > token_budget {
                break;
            }
            block.push_str(&line);
            used += cost;
        }
        block
    }
}

fn split_sentences(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '.' {
            match chars.peek() {
                Some(n) if n.is_whitespace() => out.push(std::mem::take(&mut cur)),
                None => {}
                _ => cur.push(c),
            }
        } else {
            cur.push(c);
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DocumentStore {
        let mut s = DocumentStore::new();
        s.add_document(
            "postgres-manual",
            "On SSD storage, set effective_io_concurrency to 400 for best \
             prefetching. \
             For replication, configure wal_level appropriately. \
             Index-heavy analytical workloads benefit from setting \
             random_page_cost to 1.1. \
             Vacuum regularly to avoid bloat.",
        );
        s.add_document(
            "blog",
            "Joins spill to disk when work_mem is too small; raise work_mem \
             for analytical queries.",
        );
        s
    }

    #[test]
    fn retrieval_ranks_by_term_overlap() {
        let s = store();
        let hits = s.retrieve("index random_page_cost analytical joins", 2);
        assert!(!hits.is_empty());
        assert!(
            hits[0].text.contains("random_page_cost"),
            "{}",
            hits[0].text
        );
    }

    #[test]
    fn irrelevant_passages_are_never_returned() {
        let s = store();
        let hits = s.retrieve("completely unrelated zebra talk", 5);
        assert!(hits.is_empty());
    }

    #[test]
    fn k_limits_results() {
        let s = store();
        let hits = s.retrieve("set workload analytical work_mem io", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn render_block_respects_token_budget() {
        let s = store();
        let block = s.render_block("analytical joins work_mem index", 10, 30);
        assert!(count_tokens(&block) <= 30, "{block}");
        let unbounded = s.render_block("analytical joins work_mem index", 10, 10_000);
        assert!(unbounded.len() >= block.len());
        assert!(unbounded.starts_with("The following documentation"));
    }

    #[test]
    fn empty_store_renders_nothing() {
        let s = DocumentStore::new();
        assert!(s.is_empty());
        assert_eq!(s.render_block("anything", 3, 100), "");
    }

    #[test]
    fn sentences_with_decimals_stay_whole() {
        let mut s = DocumentStore::new();
        s.add_document("d", "Set random_page_cost to 1.1 on SSDs.");
        assert_eq!(s.len(), 1);
        assert!(s.passages[0].text.contains("1.1"));
    }
}
