//! Live progress reporting and cooperative cancellation for the pipeline.
//!
//! The batch pipeline returns its trajectory only at the end of the run,
//! which is fine for the benchmark binaries but useless for a serving
//! layer that wants to stream "best configuration so far" to a client
//! while tuning is still in flight — and that must be able to abort a
//! session a client no longer wants. A [`TuneObserver`] hooks both needs
//! into [`crate::LambdaTune::tune`]: the selector and pipeline report
//! [`ProgressEvent`]s as they happen, and poll [`TuneObserver::cancelled`]
//! at every natural interruption point (between LLM samples, between
//! selector evaluations), reusing the same "stop between units of work"
//! discipline as the timeout-interrupt path.
//!
//! Observers run on the tuning thread, so implementations must be cheap
//! and non-blocking (push into a mutex-guarded sink, flip an atomic).

use crate::selector::TrajectoryPoint;
use lt_common::Secs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One milestone of a tuning run, reported as it happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgressEvent {
    /// The workload prompt is built (`tokens` spent on the description).
    PromptBuilt {
        /// Tokens spent on the workload description.
        tokens: usize,
    },
    /// One LLM sample came back (`index` in `0..num_configs`).
    ConfigSampled {
        /// Sample index.
        index: usize,
        /// Samples requested in total.
        total: usize,
    },
    /// The selector started an evaluation round with this per-config
    /// timeout.
    RoundStarted {
        /// 1-based round number.
        round: usize,
        /// Per-configuration timeout of the round.
        timeout: Secs,
    },
    /// A configuration completed the workload faster than any before it.
    Improvement {
        /// Index of the improving configuration.
        config_index: usize,
        /// The new trajectory point (optimization time, workload time).
        point: TrajectoryPoint,
    },
}

/// Receives [`ProgressEvent`]s and answers cancellation polls during a
/// tuning run. All methods have no-op defaults, so an observer can
/// implement only the side it cares about.
pub trait TuneObserver: Send + Sync {
    /// Called on every milestone, on the tuning thread.
    fn on_event(&self, _event: ProgressEvent) {}

    /// Polled between units of work; returning `true` makes the pipeline
    /// stop at the next interruption point and return the best
    /// configuration found so far (with [`crate::TuneResult::cancelled`]
    /// set).
    fn cancelled(&self) -> bool {
        false
    }
}

/// A shareable cancellation flag: the simplest useful [`TuneObserver`].
///
/// Clone it (cheap, `Arc` inside), hand one copy to the tuner and keep the
/// other; [`CancelToken::cancel`] from any thread stops the run at its next
/// interruption point.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

impl TuneObserver for CancelToken {
    fn cancelled(&self) -> bool {
        self.is_cancelled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_flips_once_and_is_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.cancelled());
        clone.cancel();
        assert!(token.cancelled());
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn observer_defaults_are_inert() {
        struct Silent;
        impl TuneObserver for Silent {}
        let s = Silent;
        s.on_event(ProgressEvent::PromptBuilt { tokens: 1 });
        assert!(!s.cancelled());
    }
}
