//! λ-Tune command-line interface.
//!
//! Tunes a simulated DBMS for one of the built-in benchmark workloads and
//! prints a tuning report:
//!
//! ```sh
//! cargo run --release -p lambda-tune --bin lambda-tune -- \
//!     --benchmark tpch --dbms postgres --samples 5 --seed 42
//! ```
//!
//! Options:
//!
//! * `--benchmark tpch|tpch10|tpcds|job` (default `tpch`)
//! * `--dbms postgres|mysql` (default `postgres`)
//! * `--backend sim|store` tuning target: the virtual-time simulator or the
//!   lt-store physical engine (default `sim`, or `LT_BACKEND` if set)
//! * `--samples <k>` LLM samples (default 5)
//! * `--temperature <t>` (default 0.7)
//! * `--token-budget <n>` workload-description budget (default: fit)
//! * `--params-only` / `--indexes-only` tuning scope
//! * `--obfuscate` hide identifiers from the LLM
//! * `--seed <n>` (default 42)

use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_dbms::{Catalog, Dbms, Hardware, SimDb, TuningTarget};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_store::StoreDb;
use lt_workloads::Benchmark;
use std::process::ExitCode;

/// Which engine executes the workload during tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// Virtual-time simulator (`SimDb`).
    Sim,
    /// lt-store physical storage engine (`StoreDb`).
    Store,
}

impl Backend {
    fn parse(s: &str) -> Result<Backend, String> {
        match s.to_ascii_lowercase().as_str() {
            "sim" | "simulator" => Ok(Backend::Sim),
            "store" | "lt-store" => Ok(Backend::Store),
            other => Err(format!("unknown backend {other} (sim|store)")),
        }
    }

    fn from_env() -> Result<Backend, String> {
        match std::env::var("LT_BACKEND") {
            Ok(v) if !v.is_empty() => Backend::parse(&v),
            _ => Ok(Backend::Sim),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Store => "store",
        }
    }

    /// Builds the tuning target. Both backends plan with the same optimizer
    /// and statistics seed, so prompts and plan trees are identical; they
    /// differ in how plan *execution* is costed (modelled vs measured).
    fn open(self, dbms: Dbms, catalog: Catalog, seed: u64) -> Box<dyn TuningTarget> {
        let hw = Hardware::p3_2xlarge();
        match self {
            Backend::Sim => Box::new(SimDb::new(dbms, catalog, hw, seed)),
            Backend::Store => Box::new(StoreDb::new(dbms, catalog, hw, seed)),
        }
    }
}

struct Args {
    benchmark: Benchmark,
    dbms: Dbms,
    backend: Backend,
    options: LambdaTuneOptions,
}

/// `LT_TRACE=1` session: root span for the run; prints the phase-summary
/// table to stderr on exit (also when tuning fails, via Drop).
struct TraceSession(Option<lt_common::obs::SpanGuard>);

impl TraceSession {
    fn start() -> Self {
        TraceSession(lt_common::obs::enabled().then(|| {
            lt_common::obs::reset();
            lt_common::obs::span("run")
        }))
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if let Some(root) = self.0.take() {
            drop(root);
            eprintln!("\n-- trace summary --");
            eprint!("{}", lt_common::obs::snapshot().summary_table());
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut benchmark = Benchmark::TpchSf1;
    let mut dbms = Dbms::Postgres;
    let mut backend = Backend::from_env()?;
    let mut options = LambdaTuneOptions {
        seed: 42,
        ..Default::default()
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--benchmark" => {
                benchmark = match value("--benchmark")?.as_str() {
                    "tpch" => Benchmark::TpchSf1,
                    "tpch10" => Benchmark::TpchSf10,
                    "tpcds" => Benchmark::TpcdsSf1,
                    "job" => Benchmark::Job,
                    other => return Err(format!("unknown benchmark {other}")),
                };
            }
            "--dbms" => {
                dbms = match value("--dbms")?.to_ascii_lowercase().as_str() {
                    "postgres" | "postgresql" | "pg" => Dbms::Postgres,
                    "mysql" | "ms" => Dbms::Mysql,
                    other => return Err(format!("unknown dbms {other}")),
                };
            }
            "--backend" => {
                backend = Backend::parse(&value("--backend")?)?;
            }
            "--samples" => {
                options.num_configs = value("--samples")?
                    .parse()
                    .map_err(|e| format!("--samples: {e}"))?;
            }
            "--temperature" => {
                options.temperature = value("--temperature")?
                    .parse()
                    .map_err(|e| format!("--temperature: {e}"))?;
            }
            "--token-budget" => {
                options.token_budget = Some(
                    value("--token-budget")?
                        .parse()
                        .map_err(|e| format!("--token-budget: {e}"))?,
                );
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--params-only" => options.params_only = true,
            "--indexes-only" => options.indexes_only = true,
            "--obfuscate" => options.obfuscate = true,
            "--no-compressor" => options.use_compressor = false,
            "--no-scheduler" => options.use_scheduler = false,
            "--help" | "-h" => {
                println!(
                    "usage: lambda-tune [--benchmark tpch|tpch10|tpcds|job] \
                     [--dbms postgres|mysql] [--backend sim|store] \
                     [--samples K] [--temperature T] \
                     [--token-budget N] [--seed N] [--params-only] \
                     [--indexes-only] [--obfuscate] [--no-compressor] \
                     [--no-scheduler]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other} (try --help)")),
        }
    }
    Ok(Args {
        benchmark,
        dbms,
        backend,
        options,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let _trace = TraceSession::start();
    let workload = args.benchmark.load();
    println!(
        "λ-Tune: tuning {} for {} ({} queries, seed {}, backend {})",
        args.dbms.name(),
        workload.name,
        workload.len(),
        args.options.seed,
        args.backend.name()
    );

    let mut db = args
        .backend
        .open(args.dbms, workload.catalog.clone(), args.options.seed);
    let llm = LlmClient::new(SimulatedLlm::new());
    let result = match LambdaTune::new(args.options).tune(db.as_mut(), &workload, &llm) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tuning failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("\n== tuning report ==");
    println!("tuning time       : {:.0}", result.tuning_time);
    println!("selector rounds   : {}", result.rounds);
    println!(
        "LLM usage         : {} calls, {} prompt + {} completion tokens (~${:.2})",
        result.llm_usage.calls,
        result.llm_usage.prompt_tokens,
        result.llm_usage.completion_tokens,
        result.llm_usage.cost_usd()
    );
    println!("workload tokens   : {}", result.workload_tokens);

    match (&result.best_config, result.best_index) {
        (Some(best), Some(i)) => {
            println!(
                "best configuration: sample #{i}, workload runs in {:.1}",
                result.best_time
            );
            println!("\n-- configuration script --");
            print!("{}", best.to_script(args.dbms, db.catalog()));
            println!("\n-- improvement trajectory --");
            for p in &result.trajectory {
                println!(
                    "  t={:>8.0}  best workload time {:.1}",
                    p.opt_time, p.best_workload_time
                );
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("no configuration completed the workload");
            ExitCode::FAILURE
        }
    }
}
