//! λ-Tune: LLM-driven automated database system tuning.
//!
//! Reproduction of *λ-Tune: Harnessing Large Language Models for Automated
//! Database System Tuning* (Giannakouris & Trummer, SIGMOD 2025). The
//! pipeline (paper Algorithm 1):
//!
//! 1. [`prompt`] + [`compressor`] — describe the tuning context to the LLM
//!    within a token budget; workload compression selects the most valuable
//!    join snippets by solving an ILP (paper §3).
//! 2. Sample k configurations from the LLM.
//! 3. [`selector`] — identify the best configuration with geometrically
//!    growing per-round timeouts, bounding total evaluation cost as a
//!    function of the optimum (paper §4, Theorem 4.3).
//! 4. [`evaluator`] + [`scheduler`] — evaluate each configuration with lazy
//!    index creation and a dynamic-programming query order minimizing
//!    expected reconfiguration cost (paper §5, Theorems 5.2–5.3).
//!
//! [`pipeline::LambdaTune`] wires the pieces together; every component is
//! individually reusable and ablatable (Figure 6's ablations are option
//! flags).

pub mod compressor;
pub mod evaluator;
pub mod pipeline;
pub mod progress;
pub mod prompt;
pub mod rag;
pub mod samples;
pub mod scheduler;
pub mod selector;
pub mod snippets;

pub use compressor::{CompressedWorkload, Compressor};
pub use evaluator::{ConfigMeta, Evaluator};
pub use pipeline::{LambdaTune, LambdaTuneOptions, TuneResult, WarmStart};
pub use progress::{CancelToken, ProgressEvent, TuneObserver};
pub use prompt::PromptBuilder;
pub use rag::{DocumentStore, Passage};
pub use samples::SampleCache;
pub use scheduler::{cluster_queries, expected_index_cost, find_optimal_order};
pub use selector::{ConfigSelector, SelectorOptions, TrajectoryPoint};
pub use snippets::{extract_snippets, Snippet};
