//! Query scheduling for minimal expected index-creation cost
//! (paper §5.2–§5.4).
//!
//! With lazy index creation, the order in which queries run determines how
//! much index-build work is wasted when a timeout interrupts evaluation.
//! Under the paper's model — an interruption after each query is equally
//! likely — the expected cost of order `i_1 … i_n` is
//!
//! ```text
//! 1/n · Σ_{k=1..n} Σ_{j=1..k} z_{i_j}({i_1 … i_{j-1}})        (Eq. 1)
//! ```
//!
//! where `z_i(Q)` is the cost of the indexes query `i` still needs after
//! the queries in `Q` created theirs. Rearranged, the marginal cost `m_j`
//! of the j-th item carries weight `(n − j + 1)/n`, so cheap-marginal items
//! should run first. [`find_optimal_order`] implements the paper's
//! Selinger-style dynamic program (Algorithm 4), exact because the
//! principle of optimality holds (Theorem 5.2); [`cluster_queries`] caps
//! the DP input at 13 items by k-means clustering queries on their binary
//! index-dependency vectors (§5.4).

use lt_common::seeded_rng;
use std::collections::HashMap;

/// Paper's cap on the DP input size (§5.4).
pub const MAX_DP_ITEMS: usize = 13;

/// Union of an item's index requirements as a bitmask over index slots.
fn mask_of(indexes: &[usize]) -> u128 {
    let mut m = 0u128;
    for &i in indexes {
        assert!(i < 128, "scheduler supports at most 128 distinct indexes");
        m |= 1 << i;
    }
    m
}

fn mask_cost(mask: u128, costs: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut m = mask;
    while m != 0 {
        let bit = m.trailing_zeros() as usize;
        total += costs[bit];
        m &= m - 1;
    }
    total
}

/// Expected index-creation cost (Eq. 1) of executing items in `order`.
///
/// `item_indexes[i]` lists the index slots item `i` needs; `costs[s]` is
/// the build cost of slot `s`.
pub fn expected_index_cost(order: &[usize], item_indexes: &[Vec<usize>], costs: &[f64]) -> f64 {
    let n = order.len();
    if n == 0 {
        return 0.0;
    }
    let mut created = 0u128;
    let mut total = 0.0;
    for (j, &item) in order.iter().enumerate() {
        let need = mask_of(&item_indexes[item]) & !created;
        let marginal = mask_cost(need, costs);
        let weight = (n - j) as f64 / n as f64;
        total += weight * marginal;
        created |= need;
    }
    total
}

/// Exact optimal order by dynamic programming over item subsets
/// (Algorithm 4). Panics when given more than [`MAX_DP_ITEMS`] items —
/// cluster first (see [`schedule`]).
pub fn find_optimal_order(item_indexes: &[Vec<usize>], costs: &[f64]) -> Vec<usize> {
    let n = item_indexes.len();
    assert!(
        n <= MAX_DP_ITEMS,
        "DP input capped at {MAX_DP_ITEMS} items (got {n}); cluster first"
    );
    if n == 0 {
        return Vec::new();
    }
    let masks: Vec<u128> = item_indexes.iter().map(|ix| mask_of(ix)).collect();
    // Union of index masks for every subset, built incrementally.
    let full = (1usize << n) - 1;
    let mut union = vec![0u128; full + 1];
    for subset in 1..=full {
        let low = subset.trailing_zeros() as usize;
        union[subset] = union[subset & (subset - 1)] | masks[low];
    }
    // dp[subset] = (best expected cost of the prefix covering `subset`,
    // last item of that prefix).
    let mut dp_cost = vec![f64::INFINITY; full + 1];
    let mut dp_last = vec![usize::MAX; full + 1];
    dp_cost[0] = 0.0;
    for subset in 1usize..=full {
        let k = subset.count_ones() as usize;
        let weight = (n - k + 1) as f64 / n as f64;
        let mut rest_iter = subset;
        while rest_iter != 0 {
            let last = rest_iter.trailing_zeros() as usize;
            rest_iter &= rest_iter - 1;
            let rest = subset & !(1 << last);
            if !dp_cost[rest].is_finite() {
                continue;
            }
            let marginal = mask_cost(masks[last] & !union[rest], costs);
            let cost = dp_cost[rest] + weight * marginal;
            if cost < dp_cost[subset] {
                dp_cost[subset] = cost;
                dp_last[subset] = last;
            }
        }
    }
    // Reconstruct.
    let mut order = Vec::with_capacity(n);
    let mut subset = full;
    while subset != 0 {
        let last = dp_last[subset];
        order.push(last);
        subset &= !(1 << last);
    }
    order.reverse();
    order
}

/// K-means clustering of queries by their binary index-dependency vectors
/// (Euclidean distance, §5.4). Returns at most `k` non-empty clusters of
/// item ids; deterministic for a given seed.
pub fn cluster_queries(
    item_indexes: &[Vec<usize>],
    num_slots: usize,
    k: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let n = item_indexes.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    // Items with identical dependency sets always share a cluster; cluster
    // the distinct vectors (the paper's `q1:A`, `q2:A` example).
    let mut groups: HashMap<u128, Vec<usize>> = HashMap::new();
    for (i, ix) in item_indexes.iter().enumerate() {
        groups.entry(mask_of(ix)).or_default().push(i);
    }
    let distinct: Vec<(u128, Vec<usize>)> = {
        let mut v: Vec<_> = groups.into_iter().collect();
        v.sort_by_key(|(m, _)| *m);
        v
    };
    if distinct.len() <= k {
        return distinct.into_iter().map(|(_, members)| members).collect();
    }

    let dims = num_slots.min(128);
    let vector = |mask: u128| -> Vec<f64> {
        (0..dims)
            .map(|b| if mask & (1 << b) != 0 { 1.0 } else { 0.0 })
            .collect()
    };
    let points: Vec<Vec<f64>> = distinct.iter().map(|(m, _)| vector(*m)).collect();
    let dist2 =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };

    let mut rng = seeded_rng(seed);
    // k-means++-style init: first centroid random, then farthest-point.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let far = points
            .iter()
            .max_by(|a, b| {
                let da: f64 = centroids
                    .iter()
                    .map(|c| dist2(a, c))
                    .fold(f64::INFINITY, f64::min);
                let db: f64 = centroids
                    .iter()
                    .map(|c| dist2(b, c))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("points non-empty");
        centroids.push(far.clone());
    }

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..20 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    dist2(p, &centroids[a])
                        .partial_cmp(&dist2(p, &centroids[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("k ≥ 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        for (ci, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f64>> = points
                .iter()
                .enumerate()
                .filter(|(i, _)| assignment[*i] == ci)
                .map(|(_, p)| p)
                .collect();
            if members.is_empty() {
                continue;
            }
            for d in 0..dims {
                centroid[d] = members.iter().map(|p| p[d]).sum::<f64>() / members.len() as f64;
            }
        }
    }

    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pi, &ci) in assignment.iter().enumerate() {
        clusters[ci].extend(distinct[pi].1.iter().copied());
    }
    clusters.retain(|c| !c.is_empty());
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters
}

/// Full scheduling pipeline: cluster to at most [`MAX_DP_ITEMS`] groups,
/// order the groups by exact DP, and expand groups back to item order.
pub fn schedule(item_indexes: &[Vec<usize>], costs: &[f64], seed: u64) -> Vec<usize> {
    let n = item_indexes.len();
    if n <= MAX_DP_ITEMS {
        return find_optimal_order(item_indexes, costs);
    }
    let num_slots = costs.len();
    let clusters = cluster_queries(item_indexes, num_slots, MAX_DP_ITEMS, seed);
    // Each cluster's dependency set is the union of its members'.
    let cluster_indexes: Vec<Vec<usize>> = clusters
        .iter()
        .map(|members| {
            let mut union: Vec<usize> = members
                .iter()
                .flat_map(|&m| item_indexes[m].iter().copied())
                .collect();
            union.sort_unstable();
            union.dedup();
            union
        })
        .collect();
    let cluster_order = find_optimal_order(&cluster_indexes, costs);
    cluster_order
        .into_iter()
        .flat_map(|ci| clusters[ci].to_vec())
        .collect()
}

/// Random order baseline (for ablation comparisons): deterministic shuffle.
pub fn arbitrary_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    seeded_rng(seed).shuffle(&mut order);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimum for small instances.
    fn brute_force(item_indexes: &[Vec<usize>], costs: &[f64]) -> f64 {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![Vec::new()];
            }
            let mut out = Vec::new();
            for p in permutations(n - 1) {
                for pos in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(pos, n - 1);
                    out.push(q);
                }
            }
            out
        }
        permutations(item_indexes.len())
            .into_iter()
            .map(|p| expected_index_cost(&p, item_indexes, costs))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn paper_example_5_1() {
        // q1 needs an index of cost 1, q2 an index of cost 5; n = 2 so
        // weights are 1 and 1/2: order (q1, q2) costs 1 + 2.5 = 3.5, order
        // (q2, q1) costs 5 + 0.5 = 5.5 — matching the paper's Example 5.1.
        let items = vec![vec![0], vec![1]];
        let costs = vec![1.0, 5.0];
        assert!((expected_index_cost(&[0, 1], &items, &costs) - 3.5).abs() < 1e-9);
        assert!((expected_index_cost(&[1, 0], &items, &costs) - 5.5).abs() < 1e-9);
        assert_eq!(find_optimal_order(&items, &costs), vec![0, 1]);
    }

    #[test]
    fn shared_indexes_are_paid_once() {
        let items = vec![vec![0], vec![0], vec![1]];
        let costs = vec![2.0, 3.0];
        // Order (0,1,2): m = [2,0,3], weights 3/3,2/3,1/3 → 2 + 0 + 1 = 3.
        let c = expected_index_cost(&[0, 1, 2], &items, &costs);
        assert!((c - 3.0).abs() < 1e-9, "{c}");
    }

    #[test]
    fn dp_matches_brute_force() {
        let cases: Vec<(Vec<Vec<usize>>, Vec<f64>)> = vec![
            (vec![vec![0], vec![1], vec![0, 1]], vec![4.0, 1.0]),
            (
                vec![vec![0, 1], vec![2], vec![1, 2], vec![3], vec![0, 3]],
                vec![5.0, 2.0, 8.0, 1.0],
            ),
            (
                vec![vec![], vec![0], vec![1], vec![2], vec![0, 1, 2], vec![3]],
                vec![3.0, 3.0, 3.0, 10.0],
            ),
        ];
        for (items, costs) in cases {
            let order = find_optimal_order(&items, &costs);
            let dp = expected_index_cost(&order, &items, &costs);
            let bf = brute_force(&items, &costs);
            assert!((dp - bf).abs() < 1e-9, "dp {dp} vs brute force {bf}");
            // Order is a permutation.
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..items.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn dp_rejects_oversized_inputs() {
        let items: Vec<Vec<usize>> = (0..14).map(|i| vec![i % 4]).collect();
        let costs = vec![1.0; 4];
        let result = std::panic::catch_unwind(|| find_optimal_order(&items, &costs));
        assert!(result.is_err());
    }

    #[test]
    fn clustering_groups_identical_dependencies() {
        // Two queries needing only index A end up in one cluster (§5.4's
        // q1:A, q2:A example).
        let items = vec![vec![0], vec![0], vec![1], vec![1], vec![2]];
        let clusters = cluster_queries(&items, 3, 3, 7);
        assert!(clusters.len() <= 3);
        let find_cluster = |i: usize| clusters.iter().position(|c| c.contains(&i)).unwrap();
        assert_eq!(find_cluster(0), find_cluster(1));
        assert_eq!(find_cluster(2), find_cluster(3));
    }

    #[test]
    fn clustering_respects_k() {
        let items: Vec<Vec<usize>> = (0..40).map(|i| vec![i % 20]).collect();
        let clusters = cluster_queries(&items, 20, 13, 42);
        assert!(clusters.len() <= 13, "{}", clusters.len());
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 40, "every item assigned exactly once");
    }

    #[test]
    fn schedule_handles_large_workloads() {
        let items: Vec<Vec<usize>> = (0..100).map(|i| vec![i % 10, (i + 3) % 10]).collect();
        let costs: Vec<f64> = (0..10).map(|i| 1.0 + i as f64).collect();
        let order = schedule(&items, &costs, 1);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_beats_arbitrary_order_on_skewed_costs() {
        // A few very expensive indexes needed by few queries: the scheduler
        // should defer them.
        let mut items: Vec<Vec<usize>> = (0..12).map(|_| vec![0]).collect();
        items.push(vec![1]); // expensive
        items.push(vec![2]); // expensive
        let costs = vec![1.0, 100.0, 100.0];
        let good = schedule(&items, &costs, 1);
        let good_cost = expected_index_cost(&good, &items, &costs);
        let bad = vec![13, 12, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
        let bad_cost = expected_index_cost(&bad, &items, &costs);
        assert!(good_cost < bad_cost, "{good_cost} !< {bad_cost}");
    }

    #[test]
    fn empty_inputs() {
        assert!(find_optimal_order(&[], &[]).is_empty());
        assert_eq!(expected_index_cost(&[], &[], &[]), 0.0);
        assert!(cluster_queries(&[], 0, 5, 1).is_empty());
    }

    #[test]
    fn arbitrary_order_is_a_permutation() {
        let o = arbitrary_order(10, 3);
        let mut s = o.clone();
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
        assert_eq!(arbitrary_order(10, 3), o);
    }
}
