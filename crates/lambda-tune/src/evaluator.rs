//! Configuration evaluation with lazy index creation (paper §5.1,
//! Algorithm 3).
//!
//! Evaluating a configuration means: apply its knobs, then run the
//! not-yet-completed queries under a timeout, creating each index *only*
//! right before the first query that might use it. Index relevance is
//! decided by column overlap with the query's predicates. All indexes are
//! dropped when evaluation ends, so the next configuration starts clean.

use crate::scheduler;
use lt_common::{obs, QueryId, Secs};
use lt_dbms::{Configuration, IndexSpec, TuningTarget};
use lt_workloads::Workload;
use std::collections::{HashMap, HashSet};

/// Per-configuration bookkeeping (paper Table 2).
#[derive(Debug, Clone, Default)]
pub struct ConfigMeta {
    /// Total execution time of *completed* queries.
    pub time: Secs,
    /// True when every workload query has completed under this config.
    pub is_complete: bool,
    /// Accumulated index-creation time.
    pub index_time: Secs,
    /// Queries that have fully executed under this config.
    pub completed: HashSet<QueryId>,
    /// All virtual time attributed to this configuration (reconfiguration,
    /// index builds, execution, interrupts) — the denominator of the
    /// selector's throughput ordering.
    pub spent: Secs,
}

impl ConfigMeta {
    /// Queries completed per second of attributed time (0 before any work).
    pub fn throughput(&self) -> f64 {
        if self.spent <= Secs::ZERO {
            0.0
        } else {
            self.completed.len() as f64 / self.spent.as_f64()
        }
    }
}

/// The configuration evaluator.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator {
    /// Use the DP query scheduler (§5.3); false = workload order (the
    /// Figure 6 "no scheduler" ablation).
    pub use_scheduler: bool,
    /// Seed for clustering determinism.
    pub seed: u64,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator {
            use_scheduler: true,
            seed: 0,
        }
    }
}

impl Evaluator {
    /// Maps each query to the configuration indexes that could serve it:
    /// indexes whose leading column appears among the query's predicate
    /// columns.
    pub fn query_index_map<D: TuningTarget + ?Sized>(
        db: &D,
        workload: &Workload,
        config: &Configuration,
    ) -> HashMap<QueryId, Vec<IndexSpec>> {
        let specs: Vec<IndexSpec> = config.index_specs().into_iter().cloned().collect();
        let mut map = HashMap::new();
        for wq in &workload.queries {
            // Served from the SimDb predicate cache after the first call, so
            // re-evaluating a configuration across selector rounds does not
            // re-walk every query AST.
            let preds = db.predicates(&wq.parsed);
            let mut pred_columns: HashSet<lt_common::ColumnId> = HashSet::new();
            for terms in preds.filters.values() {
                pred_columns.extend(terms.iter().map(|t| t.column));
            }
            for edge in &preds.joins {
                pred_columns.insert(edge.left);
                pred_columns.insert(edge.right);
            }
            let relevant: Vec<IndexSpec> = specs
                .iter()
                .filter(|s| pred_columns.contains(&s.columns[0]))
                .cloned()
                .collect();
            map.insert(wq.id, relevant);
        }
        map
    }

    /// Runs Algorithm 3: evaluates `config` on the `remaining` queries of
    /// `workload` with query-evaluation timeout `timeout`, updating `meta`.
    ///
    /// Applies the configuration's knobs, creates indexes lazily in the
    /// scheduler's order, executes until a query is interrupted, and drops
    /// all indexes before returning.
    pub fn evaluate<D: TuningTarget + ?Sized>(
        &self,
        db: &mut D,
        workload: &Workload,
        config: &Configuration,
        remaining: &[QueryId],
        timeout: Secs,
        meta: &mut ConfigMeta,
    ) {
        let started = db.now();
        let mut eval_span = obs::span_vt("eval.config", started);
        db.apply_knobs(config);
        meta.is_complete = true;
        if remaining.is_empty() {
            meta.spent += db.now() - started;
            eval_span.vt_end(db.now());
            return;
        }

        let index_map = Self::query_index_map(db, workload, config);

        // Scheduling: items are the remaining queries; slots are the
        // distinct index specs of the configuration.
        let specs: Vec<IndexSpec> = config.index_specs().into_iter().cloned().collect();
        let slot_of: HashMap<&IndexSpec, usize> =
            specs.iter().enumerate().map(|(i, s)| (s, i)).collect();
        let costs: Vec<f64> = specs
            .iter()
            .map(|s| db.estimate_index_build(s).as_f64())
            .collect();
        let item_indexes: Vec<Vec<usize>> = remaining
            .iter()
            .map(|qid| {
                index_map
                    .get(qid)
                    .map(|specs_for_q| {
                        specs_for_q
                            .iter()
                            .filter_map(|s| slot_of.get(s).copied())
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        let order: Vec<usize> = if self.use_scheduler {
            scheduler::schedule(&item_indexes, &costs, self.seed)
        } else {
            (0..remaining.len()).collect()
        };

        let mut remaining_time = timeout;
        let mut created: HashSet<usize> = HashSet::new();
        let mut built_ids: Vec<lt_common::IndexId> = Vec::new();
        for &item in &order {
            let qid = remaining[item];
            // Create the indexes this query might use (minus existing).
            for &slot in &item_indexes[item] {
                if created.insert(slot) {
                    let spec = &specs[slot];
                    // Pre-existing indexes (e.g. the scenario's default
                    // PK/FK indexes) are used but never dropped.
                    if db.indexes().find(spec.table, &spec.columns).is_some() {
                        continue;
                    }
                    let (id, build_time) = db.create_index(spec);
                    built_ids.push(id);
                    meta.index_time += build_time;
                }
            }
            let query = &workload.queries[qid.index()].parsed;
            let outcome = db.execute(query, remaining_time.clamp_non_negative());
            if !outcome.completed {
                meta.is_complete = false;
                obs::counter("eval.interrupts", 1);
                break;
            }
            remaining_time -= outcome.time;
            meta.time += outcome.time;
            meta.completed.insert(qid);
        }
        // Indexes created by this evaluation are implicitly dropped when it
        // ends (paper §5.1); pre-existing indexes stay.
        for id in built_ids {
            db.drop_index(id);
        }
        meta.spent += db.now() - started;
        eval_span.vt_end(db.now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 5);
        (db, w)
    }

    fn tuned_config(db: &SimDb) -> Configuration {
        Configuration::parse(
            "ALTER SYSTEM SET shared_buffers = '15GB';\n\
             ALTER SYSTEM SET work_mem = '1GB';\n\
             ALTER SYSTEM SET random_page_cost = 1.1;\n\
             ALTER SYSTEM SET effective_cache_size = '45GB';\n\
             CREATE INDEX ON lineitem (l_orderkey);\n\
             CREATE INDEX ON orders (o_orderkey);\n\
             CREATE INDEX ON customer (c_custkey);",
            Dbms::Postgres,
            db.catalog(),
        )
    }

    #[test]
    fn full_evaluation_completes_all_queries() {
        let (mut db, w) = setup();
        let config = tuned_config(&db);
        let all: Vec<QueryId> = w.queries.iter().map(|q| q.id).collect();
        let mut meta = ConfigMeta::default();
        Evaluator::default().evaluate(&mut db, &w, &config, &all, Secs::INFINITY, &mut meta);
        assert!(meta.is_complete);
        assert_eq!(meta.completed.len(), w.len());
        assert!(meta.time > Secs::ZERO);
        assert!(meta.index_time > Secs::ZERO);
        assert!(meta.spent >= meta.time + meta.index_time);
        // Clean exit: no indexes left behind.
        assert!(db.indexes().is_empty());
    }

    #[test]
    fn timeout_interrupts_and_preserves_partial_progress() {
        let (mut db, w) = setup();
        let config = tuned_config(&db);
        let all: Vec<QueryId> = w.queries.iter().map(|q| q.id).collect();
        let mut meta = ConfigMeta::default();
        Evaluator::default().evaluate(&mut db, &w, &config, &all, lt_common::secs(2.0), &mut meta);
        assert!(!meta.is_complete);
        assert!(meta.completed.len() < w.len());
        // Resume on remaining queries only.
        let remaining: Vec<QueryId> = w
            .queries
            .iter()
            .map(|q| q.id)
            .filter(|id| !meta.completed.contains(id))
            .collect();
        let before = meta.completed.len();
        Evaluator::default().evaluate(&mut db, &w, &config, &remaining, Secs::INFINITY, &mut meta);
        assert!(meta.is_complete);
        assert_eq!(meta.completed.len(), w.len());
        assert!(meta.completed.len() > before);
    }

    #[test]
    fn lazy_creation_skips_indexes_of_unreached_queries() {
        let (mut db, w) = setup();
        // An index no TPC-H query can use plus one every join uses; with a
        // tiny timeout only the first query's indexes get built.
        let config = tuned_config(&db);
        let all: Vec<QueryId> = w.queries.iter().map(|q| q.id).collect();
        let mut meta = ConfigMeta::default();
        Evaluator::default().evaluate(&mut db, &w, &config, &all, lt_common::secs(1e-6), &mut meta);
        // At most the first scheduled query's relevant indexes were built;
        // q1 (lineitem scan, no joins) needs none of the three.
        let full_build: f64 = config
            .index_specs()
            .iter()
            .map(|s| db.estimate_index_build(s).as_f64())
            .sum();
        assert!(
            meta.index_time.as_f64() < full_build,
            "lazy creation must not build everything: {} vs {}",
            meta.index_time,
            full_build
        );
    }

    #[test]
    fn query_index_map_respects_column_overlap() {
        let (db, w) = setup();
        let config = tuned_config(&db);
        let map = Evaluator::query_index_map(&db, &w, &config);
        // q1 touches only lineitem with a shipdate filter: no relevant
        // index among (l_orderkey, o_orderkey, c_custkey).
        let q1 = w.by_label("q1").unwrap().id;
        assert!(map[&q1].is_empty(), "{:?}", map[&q1]);
        // q3 joins customer⋈orders⋈lineitem: all three indexes relevant.
        let q3 = w.by_label("q3").unwrap().id;
        assert_eq!(map[&q3].len(), 3);
    }

    #[test]
    fn knob_only_config_builds_no_indexes() {
        let (mut db, w) = setup();
        let config = Configuration::parse(
            "ALTER SYSTEM SET work_mem = '1GB';",
            Dbms::Postgres,
            db.catalog(),
        );
        let all: Vec<QueryId> = w.queries.iter().map(|q| q.id).collect();
        let mut meta = ConfigMeta::default();
        Evaluator::default().evaluate(&mut db, &w, &config, &all, Secs::INFINITY, &mut meta);
        assert!(meta.is_complete);
        assert_eq!(meta.index_time, Secs::ZERO);
    }

    #[test]
    fn throughput_orders_by_progress_per_time() {
        let mut a = ConfigMeta::default();
        a.completed.insert(QueryId(0));
        a.completed.insert(QueryId(1));
        a.spent = lt_common::secs(10.0);
        let mut b = ConfigMeta::default();
        b.completed.insert(QueryId(0));
        b.spent = lt_common::secs(10.0);
        assert!(a.throughput() > b.throughput());
        assert_eq!(ConfigMeta::default().throughput(), 0.0);
    }
}
