//! Configuration selection with bounded evaluation cost (paper §4,
//! Algorithm 2).
//!
//! The LLM's k candidate configurations vary widely in quality. Evaluating
//! them sequentially would let one terrible configuration monopolize the
//! tuning budget, so the selector proceeds in rounds with a per-round,
//! per-configuration timeout that grows geometrically (factor α ≥ 2).
//! Completed queries are never re-executed; once a first configuration
//! finishes the whole workload, every other configuration gets exactly one
//! chance under the tighter bound `best.time − meta[c].time` (any
//! configuration exceeding it is provably worse). Theorem 4.3: the total
//! query-evaluation time is O(k·α·C_best).
//!
//! Reconfiguration overheads (index builds) are folded into the timeout
//! schedule: the next round's base timeout is at least the largest index
//! time observed so far (the "Adaptive Timeout" ablation toggles this).

use crate::evaluator::{ConfigMeta, Evaluator};
use crate::progress::{ProgressEvent, TuneObserver};
use lt_common::{obs, secs, QueryId, Secs};
use lt_dbms::{Configuration, TuningTarget};
use lt_workloads::Workload;

/// Selector parameters.
#[derive(Debug, Clone, Copy)]
pub struct SelectorOptions {
    /// First-round per-configuration timeout (paper §6.1: 10 s).
    pub initial_timeout: Secs,
    /// Geometric growth factor α (paper §6.1: 10; Theorem 4.3 needs ≥ 2).
    pub alpha: f64,
    /// Raise round timeouts to at least the observed index-creation time
    /// (§4 "Reconfiguration Overheads"; the §6.4.1 ablation disables it).
    pub adaptive_timeout: bool,
    /// Hard cap on rounds (safety net; never reached in practice because
    /// timeouts grow geometrically past any finite workload time).
    pub max_rounds: usize,
}

impl Default for SelectorOptions {
    fn default() -> Self {
        SelectorOptions {
            initial_timeout: secs(10.0),
            alpha: 10.0,
            adaptive_timeout: true,
            max_rounds: 64,
        }
    }
}

/// One point of the tuning trajectory: at optimization time `opt_time`,
/// the best fully-evaluated configuration ran the workload in
/// `best_workload_time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Virtual optimization time when the improvement was found.
    pub opt_time: Secs,
    /// Workload execution time of the best configuration known then.
    pub best_workload_time: Secs,
}

/// Outcome of configuration selection.
#[derive(Debug)]
pub struct SelectionResult {
    /// Index of the winning configuration in the input slice, if any
    /// configuration completed the workload.
    pub best: Option<usize>,
    /// Workload execution time of the winner.
    pub best_time: Secs,
    /// Per-configuration bookkeeping after selection.
    pub metas: Vec<ConfigMeta>,
    /// Improvement events, in optimization-time order.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Number of evaluation rounds run.
    pub rounds: usize,
    /// True when an observer cancelled the run before selection finished;
    /// `best` then reflects the incumbent at the moment of cancellation.
    pub cancelled: bool,
}

/// The configuration selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConfigSelector {
    /// Selector parameters.
    pub options: SelectorOptions,
    /// Evaluator (scheduler flag, seed).
    pub evaluator: Evaluator,
}

impl ConfigSelector {
    /// New selector with the given options.
    pub fn new(options: SelectorOptions, evaluator: Evaluator) -> Self {
        ConfigSelector { options, evaluator }
    }

    /// Runs Algorithm 2 over `configs`, executing against `db`.
    pub fn select<D: TuningTarget + ?Sized>(
        &self,
        db: &mut D,
        workload: &Workload,
        configs: &[Configuration],
    ) -> SelectionResult {
        self.select_observed(db, workload, configs, None)
    }

    /// [`ConfigSelector::select`] with live progress reporting and
    /// cooperative cancellation: `observer` (if any) receives a
    /// [`ProgressEvent`] per round and per improvement, and is polled for
    /// cancellation before every configuration evaluation — the same
    /// granularity at which the timeout-interrupt path stops work.
    pub fn select_observed<D: TuningTarget + ?Sized>(
        &self,
        db: &mut D,
        workload: &Workload,
        configs: &[Configuration],
        observer: Option<&dyn TuneObserver>,
    ) -> SelectionResult {
        let all_queries: Vec<QueryId> = workload.queries.iter().map(|q| q.id).collect();
        let mut metas: Vec<ConfigMeta> = configs.iter().map(|_| ConfigMeta::default()).collect();
        let mut best: Option<usize> = None;
        let mut best_time = Secs::INFINITY;
        let mut trajectory = Vec::new();
        let mut t = self.options.initial_timeout;
        let mut rounds = 0usize;
        let mut candidates: Vec<usize> = Vec::new();
        let mut cancelled = false;
        let is_cancelled = |flag: &mut bool| {
            *flag = *flag || observer.is_some_and(|o| o.cancelled());
            *flag
        };

        'rounds: while best.is_none() && rounds < self.options.max_rounds {
            if is_cancelled(&mut cancelled) {
                break;
            }
            rounds += 1;
            obs::counter("selector.rounds", 1);
            if let Some(o) = observer {
                o.on_event(ProgressEvent::RoundStarted {
                    round: rounds,
                    timeout: t,
                });
            }
            for c in self.throughput_order(&metas) {
                if is_cancelled(&mut cancelled) {
                    break 'rounds;
                }
                self.update(
                    db,
                    workload,
                    configs,
                    c,
                    &all_queries,
                    t,
                    &mut metas,
                    &mut best,
                    &mut best_time,
                    &mut trajectory,
                    observer,
                );
                if metas[c].is_complete && best.is_some() {
                    candidates = (0..configs.len()).filter(|&i| i != c).collect();
                    break 'rounds;
                }
            }
            // Consider re-configuration overheads (Algorithm 2, line 14).
            if self.options.adaptive_timeout {
                let max_index_time = metas
                    .iter()
                    .map(|m| m.index_time)
                    .max()
                    .unwrap_or(Secs::ZERO);
                t = t.max(max_index_time);
            }
            t = t * self.options.alpha;
        }

        // Give the remaining configurations one chance under the
        // best-derived timeout.
        let remaining = self.throughput_order_of(&metas, &candidates);
        for c in remaining {
            if is_cancelled(&mut cancelled) {
                break;
            }
            self.update(
                db,
                workload,
                configs,
                c,
                &all_queries,
                t,
                &mut metas,
                &mut best,
                &mut best_time,
                &mut trajectory,
                observer,
            );
        }

        SelectionResult {
            best,
            best_time,
            metas,
            trajectory,
            rounds,
            cancelled,
        }
    }

    /// Algorithm 2's `Update` procedure.
    #[allow(clippy::too_many_arguments)]
    fn update<D: TuningTarget + ?Sized>(
        &self,
        db: &mut D,
        workload: &Workload,
        configs: &[Configuration],
        c: usize,
        all_queries: &[QueryId],
        round_timeout: Secs,
        metas: &mut [ConfigMeta],
        best: &mut Option<usize>,
        best_time: &mut Secs,
        trajectory: &mut Vec<TrajectoryPoint>,
        observer: Option<&dyn TuneObserver>,
    ) {
        if metas[c].is_complete && metas[c].completed.len() == all_queries.len() {
            return; // fully evaluated already
        }
        let timeout = if best.is_some() {
            // A configuration exceeding best.time − meta.time is provably
            // worse than the incumbent.
            (*best_time - metas[c].time).clamp_non_negative()
        } else {
            round_timeout
        };
        let remaining: Vec<QueryId> = all_queries
            .iter()
            .copied()
            .filter(|q| !metas[c].completed.contains(q))
            .collect();
        self.evaluator.evaluate(
            db,
            workload,
            &configs[c],
            &remaining,
            timeout,
            &mut metas[c],
        );
        if metas[c].is_complete && metas[c].time < *best_time {
            *best_time = metas[c].time;
            *best = Some(c);
            obs::counter("selector.improvements", 1);
            let point = TrajectoryPoint {
                opt_time: db.now(),
                best_workload_time: *best_time,
            };
            trajectory.push(point);
            if let Some(o) = observer {
                o.on_event(ProgressEvent::Improvement {
                    config_index: c,
                    point,
                });
            }
        }
    }

    fn throughput_order(&self, metas: &[ConfigMeta]) -> Vec<usize> {
        self.throughput_order_of(metas, &(0..metas.len()).collect::<Vec<_>>())
    }

    /// Decreasing-throughput order (stable: ties keep input order).
    fn throughput_order_of(&self, metas: &[ConfigMeta], of: &[usize]) -> Vec<usize> {
        let mut order = of.to_vec();
        order.sort_by(|&a, &b| {
            metas[b]
                .throughput()
                .partial_cmp(&metas[a].throughput())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn db_and_workload() -> (SimDb, Workload) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 5);
        (db, w)
    }

    fn config(db: &SimDb, script: &str) -> Configuration {
        Configuration::parse(script, Dbms::Postgres, db.catalog())
    }

    fn good(db: &SimDb) -> Configuration {
        config(
            db,
            "ALTER SYSTEM SET shared_buffers = '15GB';\n\
             ALTER SYSTEM SET work_mem = '1GB';\n\
             ALTER SYSTEM SET effective_cache_size = '45GB';\n\
             ALTER SYSTEM SET random_page_cost = 1.1;\n\
             ALTER SYSTEM SET max_parallel_workers_per_gather = 4;\n\
             CREATE INDEX ON lineitem (l_orderkey);\n\
             CREATE INDEX ON orders (o_orderkey);",
        )
    }

    fn bad(db: &SimDb) -> Configuration {
        config(
            db,
            "ALTER SYSTEM SET work_mem = '256kB';\n\
             ALTER SYSTEM SET shared_buffers = '128MB';\n\
             ALTER SYSTEM SET max_parallel_workers_per_gather = 0;",
        )
    }

    #[test]
    fn selects_the_fast_configuration() {
        let (mut db, w) = db_and_workload();
        let configs = vec![bad(&db), good(&db)];
        let selector = ConfigSelector::default();
        let result = selector.select(&mut db, &w, &configs);
        assert_eq!(result.best, Some(1), "good config must win");
        assert!(result.best_time.is_finite());
        assert_eq!(result.metas[1].completed.len(), w.len());
    }

    #[test]
    fn trajectory_is_monotone_improving() {
        let (mut db, w) = db_and_workload();
        let configs = vec![bad(&db), good(&db), config(&db, "")];
        let result = ConfigSelector::default().select(&mut db, &w, &configs);
        assert!(!result.trajectory.is_empty());
        for pair in result.trajectory.windows(2) {
            assert!(pair[0].opt_time <= pair[1].opt_time);
            assert!(pair[0].best_workload_time >= pair[1].best_workload_time);
        }
    }

    #[test]
    fn bad_configs_cannot_monopolize_time() {
        // Theorem 4.3: total tuning time is O(k·α·C_best) — check a
        // concrete constant. We compare total selector time against
        // k·α·C_best plus reconfiguration overheads.
        let (mut db, w) = db_and_workload();
        let configs = vec![bad(&db), bad(&db), bad(&db), good(&db)];
        let options = SelectorOptions {
            alpha: 2.0,
            ..Default::default()
        };
        let start = db.now();
        let result =
            ConfigSelector::new(options, Evaluator::default()).select(&mut db, &w, &configs);
        let total = db.now() - start;
        let c_best = result.best_time;
        let k = configs.len() as f64;
        let overheads: Secs = result.metas.iter().map(|m| m.index_time).sum();
        // Geometric-progression argument: last round ≤ k·α·C_best and all
        // prior rounds sum to at most the last round → factor 2·k·α, plus
        // slack for per-round reconfiguration and the final pass.
        let bound = c_best * (2.0 * k * options.alpha + 4.0) + overheads + secs(60.0);
        assert!(
            total <= bound,
            "selector spent {total}, bound {bound} (C_best {c_best})"
        );
    }

    #[test]
    fn completed_queries_are_not_reexecuted() {
        let (mut db, w) = db_and_workload();
        let configs = vec![good(&db)];
        let result = ConfigSelector::default().select(&mut db, &w, &configs);
        assert_eq!(result.best, Some(0));
        // Executions ≤ queries + interrupted attempts (one per round).
        let executed = db.queries_executed();
        assert!(
            executed <= (w.len() + result.rounds + 1) as u64,
            "executed {executed} for {} queries in {} rounds",
            w.len(),
            result.rounds
        );
    }

    #[test]
    fn first_to_finish_is_not_necessarily_the_winner() {
        // Paper Example 4.1: a config that finishes first may lose to one
        // that completes later with a lower total. We approximate it with a
        // mediocre-but-steady config vs a clearly better one evaluated
        // second; the selector must keep the better one.
        let (mut db, w) = db_and_workload();
        let mediocre = config(
            &db,
            "ALTER SYSTEM SET work_mem = '64MB';\nALTER SYSTEM SET shared_buffers = '1GB';",
        );
        let configs = vec![mediocre, good(&db)];
        let result = ConfigSelector::default().select(&mut db, &w, &configs);
        assert_eq!(result.best, Some(1));
        // Both configurations were fully evaluated (the second got its
        // chance under the adjusted timeout... or finished first).
        assert!(result.metas[1].is_complete);
    }

    #[test]
    fn single_config_selection_terminates() {
        let (mut db, w) = db_and_workload();
        let configs = vec![config(&db, "")]; // defaults
        let result = ConfigSelector::default().select(&mut db, &w, &configs);
        assert_eq!(result.best, Some(0));
        assert!(result.rounds >= 1);
    }

    #[test]
    fn timeouts_grow_geometrically_until_first_completion() {
        // With a microscopic initial timeout, several rounds elapse before
        // any configuration can finish; the round count must stay
        // logarithmic in the workload time (geometric growth).
        let (mut db, w) = db_and_workload();
        let configs = vec![good(&db)];
        let options = SelectorOptions {
            initial_timeout: lt_common::secs(1e-3),
            alpha: 10.0,
            ..Default::default()
        };
        let result =
            ConfigSelector::new(options, Evaluator::default()).select(&mut db, &w, &configs);
        assert_eq!(result.best, Some(0));
        // Workload time is well under 10^8 ms, so ≤ 12 decades of growth.
        assert!(
            (2..=12).contains(&result.rounds),
            "rounds = {} not consistent with geometric growth",
            result.rounds
        );
    }

    #[test]
    fn empty_config_list_returns_none() {
        let (mut db, w) = db_and_workload();
        let result = ConfigSelector::default().select(&mut db, &w, &[]);
        assert!(result.best.is_none());
        assert_eq!(
            result.rounds,
            SelectorOptions::default().max_rounds.min(result.rounds)
        );
    }
}
