//! The end-to-end λ-Tune pipeline (paper Algorithm 1).

use crate::compressor::Compressor;
use crate::evaluator::Evaluator;
use crate::prompt::PromptBuilder;
use crate::selector::{ConfigSelector, SelectorOptions, TrajectoryPoint};
use crate::snippets::extract_snippets;
use lt_common::{derive_seed, obs, secs, Result, Secs};
use lt_dbms::{ConfigCommand, Configuration, SimDb};
use lt_llm::{LanguageModel, LlmClient, LlmUsage};
use lt_workloads::{Obfuscator, Workload};

/// λ-Tune options. The defaults match the paper's experimental setup
/// (§6.1): 5 LLM samples, 10 s initial timeout, α = 10.
#[derive(Debug, Clone, Copy)]
pub struct LambdaTuneOptions {
    /// Number of configurations sampled from the LLM (k).
    pub num_configs: usize,
    /// LLM sampling temperature.
    pub temperature: f64,
    /// Token budget for the workload description; `None` fits as much as
    /// possible within the model's context window.
    pub token_budget: Option<usize>,
    /// Restrict tuning to system parameters (Scenario 1: no index DDL).
    pub params_only: bool,
    /// Keep only index recommendations, dropping knob changes (the
    /// index-recommendation comparison of Figure 8).
    pub indexes_only: bool,
    /// Use the ILP workload compressor; `false` sends full SQL queries
    /// (the §6.4.4 ablation).
    pub use_compressor: bool,
    /// Obfuscate table/column names in the snippets (§6.4.3 ablation).
    pub obfuscate: bool,
    /// Use the DP query scheduler (§6.4.2 ablation toggles this off).
    pub use_scheduler: bool,
    /// Selector parameters (timeouts; §6.4.1 ablation lives here).
    pub selector: SelectorOptions,
    /// Simulated per-call LLM latency charged to the tuning clock.
    pub llm_latency: Secs,
    /// Base seed for LLM sampling and scheduling.
    pub seed: u64,
}

impl Default for LambdaTuneOptions {
    fn default() -> Self {
        LambdaTuneOptions {
            num_configs: 5,
            temperature: 0.7,
            token_budget: None,
            params_only: false,
            indexes_only: false,
            use_compressor: true,
            obfuscate: false,
            use_scheduler: true,
            selector: SelectorOptions::default(),
            llm_latency: secs(5.0),
            seed: 0,
        }
    }
}

/// Outcome of one tuning run.
#[derive(Debug)]
pub struct TuneResult {
    /// The winning configuration, if any candidate completed the workload.
    pub best_config: Option<Configuration>,
    /// Index of the winner among [`TuneResult::configs`].
    pub best_index: Option<usize>,
    /// Workload execution time under the winner.
    pub best_time: Secs,
    /// All candidate configurations parsed from LLM samples.
    pub configs: Vec<Configuration>,
    /// Improvement events over optimization time (Figures 3/4/6).
    pub trajectory: Vec<TrajectoryPoint>,
    /// LLM token usage (monetary-fee accounting).
    pub llm_usage: LlmUsage,
    /// Tokens spent on the workload description inside the prompt.
    pub workload_tokens: usize,
    /// Selector rounds executed.
    pub rounds: usize,
    /// Total virtual tuning time.
    pub tuning_time: Secs,
}

/// The λ-Tune tuner.
#[derive(Debug, Clone, Default)]
pub struct LambdaTune {
    /// Options.
    pub options: LambdaTuneOptions,
    /// Optional documentation store for retrieval-augmented prompts (the
    /// paper's §2 extension).
    pub documents: Option<crate::rag::DocumentStore>,
}

impl LambdaTune {
    /// Tuner with the given options.
    pub fn new(options: LambdaTuneOptions) -> Self {
        LambdaTune {
            options,
            documents: None,
        }
    }

    /// Enables retrieval-augmented prompting: the most relevant passages
    /// of `store` (scored against the compressed workload) are appended to
    /// the prompt.
    pub fn with_documents(mut self, store: crate::rag::DocumentStore) -> Self {
        self.documents = Some(store);
        self
    }

    /// Runs the full pipeline: prompt generation → k LLM samples →
    /// configuration selection. Returns the best configuration found.
    pub fn tune<M: LanguageModel>(
        &self,
        db: &mut SimDb,
        workload: &Workload,
        llm: &LlmClient<M>,
    ) -> Result<TuneResult> {
        let start = db.now();
        let opts = &self.options;
        let mut tune_span = obs::span_vt("tune", start);

        // ---- prompt generation (§3) ----
        let mut prompt_span = obs::span_vt("tune.prompt_build", db.now());
        let builder = PromptBuilder::new(db.dbms(), db.hardware()).params_only(opts.params_only);
        let obfuscator = opts.obfuscate.then(|| Obfuscator::new(db.catalog()));
        let (prompt, workload_tokens) = if opts.use_compressor {
            let snippets = extract_snippets(db, workload);
            let budget = opts
                .token_budget
                .unwrap_or_else(|| llm.model().context_window() / 16);
            let compressor = match &obfuscator {
                Some(ob) => Compressor::obfuscated(db.catalog(), ob),
                None => Compressor::new(db.catalog()),
            };
            let compressed = compressor.compress(&snippets, budget)?;
            let tokens = compressed.tokens;
            (builder.build(&compressed), tokens)
        } else {
            let budget = opts
                .token_budget
                .unwrap_or_else(|| llm.model().context_window() / 16);
            let (prompt, _included) = builder.build_with_full_sql(workload, budget);
            let tokens = lt_llm::count_tokens(&prompt);
            (prompt, tokens)
        };

        // Retrieval augmentation: append the most relevant documentation
        // passages to the prompt (bounded to 200 tokens).
        let prompt = match &self.documents {
            Some(store) => {
                let query = format!("{} OLAP tuning {prompt}", db.dbms().name());
                let block = store.render_block(&query, 4, 200);
                if block.is_empty() {
                    prompt
                } else {
                    format!("{prompt}\n{block}")
                }
            }
            None => prompt,
        };
        prompt_span.vt_end(db.now());
        drop(prompt_span);

        // ---- k LLM samples ----
        let mut configs = Vec::with_capacity(opts.num_configs);
        for i in 0..opts.num_configs {
            let mut sample_span = obs::span_vt("tune.llm_sample", db.now());
            let response =
                llm.complete(&prompt, opts.temperature, derive_seed(opts.seed, i as u64))?;
            db.clock_advance(opts.llm_latency);
            sample_span.vt_end(db.now());
            drop(sample_span);
            let script = match &obfuscator {
                Some(ob) => deobfuscate_script(&response, ob),
                None => response,
            };
            let mut config = Configuration::parse(&script, db.dbms(), db.catalog());
            if opts.params_only {
                config
                    .commands
                    .retain(|c| !matches!(c, ConfigCommand::CreateIndex(_)));
            }
            if opts.indexes_only {
                config
                    .commands
                    .retain(|c| matches!(c, ConfigCommand::CreateIndex(_)));
            }
            configs.push(config);
        }

        // ---- configuration selection (§4) ----
        let mut select_span = obs::span_vt("tune.select", db.now());
        let evaluator = Evaluator {
            use_scheduler: opts.use_scheduler,
            seed: opts.seed,
        };
        let selector = ConfigSelector::new(opts.selector, evaluator);
        let selection = selector.select(db, workload, &configs);
        select_span.vt_end(db.now());
        drop(select_span);
        tune_span.vt_end(db.now());

        Ok(TuneResult {
            best_config: selection.best.map(|i| configs[i].clone()),
            best_index: selection.best,
            best_time: selection.best_time,
            configs,
            trajectory: selection.trajectory,
            llm_usage: llm.usage(),
            workload_tokens,
            rounds: selection.rounds,
            tuning_time: db.now() - start,
        })
    }
}

/// Replaces obfuscated identifiers (`T<i>`, `C<j>`) in an LLM response with
/// their real names so the configuration can be applied to the database.
pub fn deobfuscate_script(script: &str, obfuscator: &Obfuscator) -> String {
    let mut out = String::with_capacity(script.len());
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut String| {
        if word.is_empty() {
            return;
        }
        if let Some(real) = obfuscator.deobfuscate_table(word) {
            out.push_str(real);
        } else if let Some((_, column)) = obfuscator.deobfuscate_column(word) {
            out.push_str(column);
        } else {
            out.push_str(word);
        }
        word.clear();
    };
    for ch in script.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            word.push(ch);
        } else {
            flush(&mut word, &mut out);
            out.push(ch);
        }
    }
    flush(&mut word, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware};
    use lt_llm::SimulatedLlm;
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload, LlmClient<SimulatedLlm>) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 7);
        (db, w, LlmClient::new(SimulatedLlm::new()))
    }

    #[test]
    fn end_to_end_tpch_beats_defaults() {
        let (mut db, w, llm) = setup();
        let result = LambdaTune::default().tune(&mut db, &w, &llm).unwrap();
        let best = result.best_config.expect("a configuration must win");
        assert!(result.best_time.is_finite());
        assert_eq!(result.configs.len(), 5);
        assert_eq!(result.llm_usage.calls, 5);

        // Compare the winner against the default configuration by running
        // the workload under both.
        let mut fresh = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 7);
        let mut default_time = Secs::ZERO;
        for q in &w.queries {
            default_time += fresh.execute(&q.parsed, Secs::INFINITY).time;
        }
        assert!(
            result.best_time < default_time,
            "λ-Tune {} should beat default {default_time}",
            result.best_time
        );
        assert!(!best.is_empty());
    }

    #[test]
    fn params_only_configs_have_no_indexes() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            params_only: true,
            ..Default::default()
        };
        let result = LambdaTune::new(options).tune(&mut db, &w, &llm).unwrap();
        for config in &result.configs {
            assert!(config.index_specs().is_empty());
        }
        assert!(result.best_index.is_some());
    }

    #[test]
    fn obfuscated_run_still_produces_valid_configs() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            obfuscate: true,
            ..Default::default()
        };
        let result = LambdaTune::new(options).tune(&mut db, &w, &llm).unwrap();
        assert!(result.best_index.is_some());
        // Index specs must reference real catalog objects (deobfuscation
        // succeeded): parse guarantees that, so any index command present
        // proves the round trip.
        let any_indexes = result.configs.iter().any(|c| !c.index_specs().is_empty());
        assert!(
            any_indexes,
            "obfuscated pipeline should still recommend indexes"
        );
    }

    #[test]
    fn tiny_token_budget_degrades_coverage_not_correctness() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            token_budget: Some(40),
            ..Default::default()
        };
        let result = LambdaTune::new(options).tune(&mut db, &w, &llm).unwrap();
        assert!(result.workload_tokens <= 40);
        assert!(result.best_index.is_some());
    }

    #[test]
    fn full_sql_mode_works() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            use_compressor: false,
            token_budget: Some(4000),
            ..Default::default()
        };
        let result = LambdaTune::new(options).tune(&mut db, &w, &llm).unwrap();
        assert!(result.best_index.is_some());
    }

    #[test]
    fn deobfuscate_script_roundtrip() {
        let w = Benchmark::TpchSf1.load();
        let ob = Obfuscator::new(&w.catalog);
        let t = ob.table("lineitem");
        let c = ob.column("lineitem", "l_orderkey");
        let script = format!("CREATE INDEX ON {t} ({c});");
        let real = deobfuscate_script(&script, &ob);
        assert_eq!(real, "CREATE INDEX ON lineitem (l_orderkey);");
        // Unknown identifiers pass through.
        assert_eq!(
            deobfuscate_script("SET work_mem = '1GB';", &ob),
            "SET work_mem = '1GB';"
        );
    }

    #[test]
    fn rag_documents_influence_the_configuration() {
        let (mut db, w, llm) = setup();
        let mut store = crate::rag::DocumentStore::new();
        store.add_document(
            "ssd-guide",
            "For OLAP index tuning on SSD storage, set effective_io_concurrency \
             to 400 to maximize prefetching of index pages.",
        );
        let options = LambdaTuneOptions {
            temperature: 0.0,
            ..Default::default()
        };
        let result = LambdaTune::new(options)
            .with_documents(store)
            .tune(&mut db, &w, &llm)
            .unwrap();
        let followed = result.configs.iter().any(|c| {
            c.knob_changes()
                .any(|(n, v)| n == "effective_io_concurrency" && v.as_f64() == 400.0)
        });
        assert!(
            followed,
            "the retrieved documentation should shape the configs"
        );
    }

    #[test]
    fn trajectory_and_timing_are_recorded() {
        let (mut db, w, llm) = setup();
        let result = LambdaTune::default().tune(&mut db, &w, &llm).unwrap();
        assert!(!result.trajectory.is_empty());
        assert!(result.tuning_time > Secs::ZERO);
        assert!(result.workload_tokens > 0);
        assert!(result.llm_usage.cost_usd() > 0.0);
    }
}
