//! The end-to-end λ-Tune pipeline (paper Algorithm 1).

use crate::compressor::Compressor;
use crate::evaluator::Evaluator;
use crate::progress::{ProgressEvent, TuneObserver};
use crate::prompt::PromptBuilder;
use crate::selector::{ConfigSelector, SelectorOptions, TrajectoryPoint};
use crate::snippets::extract_snippets;
use lt_common::{derive_seed, obs, secs, LtError, Result, Secs};
use lt_dbms::{ConfigCommand, Configuration, TuningTarget};
use lt_llm::{LanguageModel, LlmClient, LlmUsage};
use lt_workloads::{Obfuscator, Workload};
use std::sync::Arc;

/// λ-Tune options. The defaults match the paper's experimental setup
/// (§6.1): 5 LLM samples, 10 s initial timeout, α = 10.
#[derive(Debug, Clone, Copy)]
pub struct LambdaTuneOptions {
    /// Number of configurations sampled from the LLM (k).
    pub num_configs: usize,
    /// LLM sampling temperature.
    pub temperature: f64,
    /// Token budget for the workload description; `None` fits as much as
    /// possible within the model's context window.
    pub token_budget: Option<usize>,
    /// Restrict tuning to system parameters (Scenario 1: no index DDL).
    pub params_only: bool,
    /// Keep only index recommendations, dropping knob changes (the
    /// index-recommendation comparison of Figure 8).
    pub indexes_only: bool,
    /// Use the ILP workload compressor; `false` sends full SQL queries
    /// (the §6.4.4 ablation).
    pub use_compressor: bool,
    /// Obfuscate table/column names in the snippets (§6.4.3 ablation).
    pub obfuscate: bool,
    /// Use the DP query scheduler (§6.4.2 ablation toggles this off).
    pub use_scheduler: bool,
    /// Selector parameters (timeouts; §6.4.1 ablation lives here).
    pub selector: SelectorOptions,
    /// Simulated per-call LLM latency charged to the tuning clock.
    pub llm_latency: Secs,
    /// Base seed for LLM sampling and scheduling.
    pub seed: u64,
}

impl LambdaTuneOptions {
    /// Rejects option combinations that cannot produce a meaningful tuning
    /// run. [`LambdaTune::tune`] calls this first, so a malformed request
    /// reaching a long-lived server (zero samples, zero token budget, NaN
    /// temperature) fails its own run with an [`LtError`] instead of
    /// panicking somewhere inside the pipeline.
    pub fn validate(&self) -> Result<()> {
        let reject = |what: &str| Err(LtError::Tuning(format!("invalid options: {what}")));
        if self.num_configs == 0 {
            return reject("num_configs must be at least 1");
        }
        if self.token_budget == Some(0) {
            return reject("token_budget must be positive (omit it for the default)");
        }
        if !self.temperature.is_finite() || self.temperature < 0.0 {
            return reject("temperature must be finite and non-negative");
        }
        if !self.llm_latency.as_f64().is_finite() || self.llm_latency < Secs::ZERO {
            return reject("llm_latency must be finite and non-negative");
        }
        if self.params_only && self.indexes_only {
            return reject("params_only and indexes_only are mutually exclusive");
        }
        if !(self.selector.initial_timeout > Secs::ZERO
            && self.selector.initial_timeout.is_finite())
        {
            return reject("selector.initial_timeout must be positive and finite");
        }
        if !self.selector.alpha.is_finite() || self.selector.alpha <= 1.0 {
            return reject("selector.alpha must be finite and greater than 1");
        }
        if self.selector.max_rounds == 0 {
            return reject("selector.max_rounds must be at least 1");
        }
        Ok(())
    }
}

impl Default for LambdaTuneOptions {
    fn default() -> Self {
        LambdaTuneOptions {
            num_configs: 5,
            temperature: 0.7,
            token_budget: None,
            params_only: false,
            indexes_only: false,
            use_compressor: true,
            obfuscate: false,
            use_scheduler: true,
            selector: SelectorOptions::default(),
            llm_latency: secs(5.0),
            seed: 0,
        }
    }
}

/// Warm-start material carried over from a previous tuning run of the same
/// session (the drift/re-tuning loop). Reusing the previous prompt skips
/// snippet extraction, compression, and retrieval; seed scripts are parsed
/// into candidate configurations *before* any LLM sampling, so the previous
/// winner competes as candidate 0 under the selector's timeouts.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// Prompt to reuse verbatim instead of rebuilding one. `None` rebuilds
    /// the prompt from the (possibly changed) workload as usual.
    pub prompt: Option<String>,
    /// Configuration scripts injected as the first candidates. Counted
    /// against [`LambdaTuneOptions::num_configs`]: only the remainder is
    /// sampled from the LLM.
    pub seed_scripts: Vec<String>,
}

/// Outcome of one tuning run.
#[derive(Debug)]
pub struct TuneResult {
    /// The winning configuration, if any candidate completed the workload.
    pub best_config: Option<Configuration>,
    /// Index of the winner among [`TuneResult::configs`].
    pub best_index: Option<usize>,
    /// Workload execution time under the winner.
    pub best_time: Secs,
    /// All candidate configurations parsed from LLM samples.
    pub configs: Vec<Configuration>,
    /// Improvement events over optimization time (Figures 3/4/6).
    pub trajectory: Vec<TrajectoryPoint>,
    /// LLM token usage (monetary-fee accounting).
    pub llm_usage: LlmUsage,
    /// Tokens spent on the workload description inside the prompt.
    pub workload_tokens: usize,
    /// Selector rounds executed.
    pub rounds: usize,
    /// Total virtual tuning time.
    pub tuning_time: Secs,
    /// The exact prompt sent to the LLM — re-tuning feeds it back through
    /// [`WarmStart::prompt`] to skip prompt construction entirely.
    pub prompt: String,
    /// True when an observer cancelled the run; the result then reflects
    /// the best configuration found before the cancellation point.
    pub cancelled: bool,
}

/// The λ-Tune tuner.
#[derive(Clone, Default)]
pub struct LambdaTune {
    /// Options.
    pub options: LambdaTuneOptions,
    /// Optional documentation store for retrieval-augmented prompts (the
    /// paper's §2 extension).
    pub documents: Option<crate::rag::DocumentStore>,
    /// Optional progress/cancellation hook (the serving layer's per-session
    /// sink); see [`crate::progress`].
    pub observer: Option<Arc<dyn TuneObserver>>,
    /// Optional warm-start material from a previous run; see [`WarmStart`].
    pub warm_start: Option<WarmStart>,
    /// Optional shared sample cache (fleet batching): the sampling loop
    /// consults it before calling the model and publishes fresh samples
    /// back. See [`crate::samples::SampleCache`].
    pub samples: Option<Arc<crate::samples::SampleCache>>,
    /// LLM sampling batch size: seeds are fetched in chunks of this size
    /// through [`LlmClient::complete_batch`], which charges the prompt once
    /// per chunk instead of once per sample. `0`/`1` (the default) keeps
    /// the historical one-call-per-sample behaviour. Any value yields
    /// byte-identical configurations — only token accounting changes.
    pub sample_batch: usize,
}

impl std::fmt::Debug for LambdaTune {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LambdaTune")
            .field("options", &self.options)
            .field("documents", &self.documents)
            .field(
                "observer",
                &self.observer.as_ref().map(|_| "<dyn TuneObserver>"),
            )
            .field("warm_start", &self.warm_start)
            .field("samples", &self.samples.as_ref().map(|c| c.len()))
            .field("sample_batch", &self.sample_batch)
            .finish()
    }
}

impl LambdaTune {
    /// Tuner with the given options.
    pub fn new(options: LambdaTuneOptions) -> Self {
        LambdaTune {
            options,
            ..Self::default()
        }
    }

    /// Enables retrieval-augmented prompting: the most relevant passages
    /// of `store` (scored against the compressed workload) are appended to
    /// the prompt.
    pub fn with_documents(mut self, store: crate::rag::DocumentStore) -> Self {
        self.documents = Some(store);
        self
    }

    /// Attaches a progress/cancellation observer: it receives a
    /// [`ProgressEvent`] per pipeline milestone and is polled for
    /// cancellation between units of work.
    pub fn with_observer(mut self, observer: Arc<dyn TuneObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Seeds this run with material from a previous one; see [`WarmStart`].
    pub fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.warm_start = Some(warm);
        self
    }

    /// Attaches a shared sample cache; see [`crate::samples::SampleCache`].
    pub fn with_samples(mut self, samples: Arc<crate::samples::SampleCache>) -> Self {
        self.samples = Some(samples);
        self
    }

    /// Sets the LLM sampling batch size (see the field docs).
    pub fn with_sample_batch(mut self, batch: usize) -> Self {
        self.sample_batch = batch;
        self
    }

    /// Builds the exact prompt [`tune`](Self::tune) sends for this session,
    /// plus the workload-token count it reports. Pure in (db state,
    /// workload, options, warm start) and makes no LLM calls — exposed so a
    /// serving layer can coalesce sessions sharing a prompt and prefetch
    /// their samples in one batched call.
    pub fn build_prompt<D: TuningTarget + ?Sized, M: LanguageModel>(
        &self,
        db: &D,
        workload: &Workload,
        llm: &LlmClient<M>,
    ) -> Result<(String, usize)> {
        let opts = &self.options;
        let builder = PromptBuilder::new(db.dbms(), db.hardware()).params_only(opts.params_only);
        let obfuscator = opts.obfuscate.then(|| Obfuscator::new(db.catalog()));
        let reused_prompt = self.warm_start.as_ref().and_then(|w| w.prompt.clone());
        let (prompt, workload_tokens) = if let Some(prompt) = reused_prompt {
            // Warm start: the previous run's prompt verbatim — no snippet
            // extraction, compression, or retrieval is repeated, and no
            // RAG block is re-appended (the reused prompt already carries
            // whatever augmentation its original run had).
            let tokens = lt_llm::count_tokens(&prompt);
            (prompt, tokens)
        } else if opts.use_compressor {
            let snippets = extract_snippets(db, workload);
            let budget = opts
                .token_budget
                .unwrap_or_else(|| llm.model().context_window() / 16);
            let compressor = match &obfuscator {
                Some(ob) => Compressor::obfuscated(db.catalog(), ob),
                None => Compressor::new(db.catalog()),
            };
            let compressed = compressor.compress(&snippets, budget)?;
            let tokens = compressed.tokens;
            (builder.build(&compressed), tokens)
        } else {
            let budget = opts
                .token_budget
                .unwrap_or_else(|| llm.model().context_window() / 16);
            let (prompt, _included) = builder.build_with_full_sql(workload, budget);
            let tokens = lt_llm::count_tokens(&prompt);
            (prompt, tokens)
        };

        // Retrieval augmentation: append the most relevant documentation
        // passages to the prompt (bounded to 200 tokens). A reused prompt
        // already contains its run's augmentation, so skip it then.
        let warm_started = self.warm_start.as_ref().is_some_and(|w| w.prompt.is_some());
        let prompt = match &self.documents {
            Some(store) if !warm_started => {
                let query = format!("{} OLAP tuning {prompt}", db.dbms().name());
                let block = store.render_block(&query, 4, 200);
                if block.is_empty() {
                    prompt
                } else {
                    format!("{prompt}\n{block}")
                }
            }
            _ => prompt,
        };
        Ok((prompt, workload_tokens))
    }

    /// Runs the full pipeline: prompt generation → k LLM samples →
    /// configuration selection. Returns the best configuration found.
    pub fn tune<D: TuningTarget + ?Sized, M: LanguageModel>(
        &self,
        db: &mut D,
        workload: &Workload,
        llm: &LlmClient<M>,
    ) -> Result<TuneResult> {
        let start = db.now();
        let opts = &self.options;
        opts.validate()?;
        let observer = self.observer.as_deref();
        let cancelled = || observer.is_some_and(|o| o.cancelled());
        let mut tune_span = obs::span_vt("tune", start);

        // ---- prompt generation (§3) ----
        let mut prompt_span = obs::span_vt("tune.prompt_build", db.now());
        let obfuscator = opts.obfuscate.then(|| Obfuscator::new(db.catalog()));
        let (prompt, workload_tokens) = self.build_prompt(db, workload, llm)?;
        prompt_span.vt_end(db.now());
        drop(prompt_span);
        if let Some(o) = observer {
            o.on_event(ProgressEvent::PromptBuilt {
                tokens: workload_tokens,
            });
        }
        // ---- warm-start seed candidates + k LLM samples ----
        // Seed scripts occupy the leading candidate slots and cost no LLM
        // calls; the remaining slots are sampled as usual. The sample seeds
        // stay indexed by candidate position, so a run without warm start
        // is bit-identical to the pre-warm-start pipeline.
        let restrict_scope = |config: &mut Configuration| {
            if opts.params_only {
                config
                    .commands
                    .retain(|c| !matches!(c, ConfigCommand::CreateIndex(_)));
            }
            if opts.indexes_only {
                config
                    .commands
                    .retain(|c| matches!(c, ConfigCommand::CreateIndex(_)));
            }
        };
        let mut sampling_cancelled = false;
        let mut configs = Vec::with_capacity(opts.num_configs);
        if let Some(warm) = &self.warm_start {
            for script in warm.seed_scripts.iter().take(opts.num_configs) {
                let mut config = Configuration::parse(script, db.dbms(), db.catalog());
                restrict_scope(&mut config);
                configs.push(config);
                if let Some(o) = observer {
                    o.on_event(ProgressEvent::ConfigSampled {
                        index: configs.len() - 1,
                        total: opts.num_configs,
                    });
                }
            }
        }
        // Sampling is pure in (prompt, temperature, per-candidate seed), so
        // neither the batch size nor a sample-cache hit can change which
        // configurations come back — and the clock is charged `llm_latency`
        // per candidate regardless of how the sample was obtained, so the
        // selector's virtual timeline (and with it every trajectory point)
        // is byte-identical across batch sizes and cache states too.
        let batch = self.sample_batch.max(1);
        let sample_cache = self.samples.as_deref();
        let mut prefetched: std::collections::HashMap<u64, String> =
            std::collections::HashMap::new();
        for i in configs.len()..opts.num_configs {
            if cancelled() {
                sampling_cancelled = true;
                break;
            }
            let seed = derive_seed(opts.seed, i as u64);
            // At batch sizes > 1 the chunk covering this candidate is
            // fetched up front with one metered call (prompt charged once).
            if batch > 1 && !prefetched.contains_key(&seed) {
                let chunk: Vec<u64> = (i..(i + batch).min(opts.num_configs))
                    .map(|j| derive_seed(opts.seed, j as u64))
                    .collect();
                let missing: Vec<u64> = chunk
                    .iter()
                    .copied()
                    .filter(|&s| {
                        sample_cache
                            .and_then(|c| c.get(&prompt, opts.temperature, s))
                            .map(|r| prefetched.insert(s, r))
                            .is_none()
                    })
                    .collect();
                let fresh = llm.complete_batch(&prompt, opts.temperature, &missing)?;
                for (s, response) in missing.into_iter().zip(fresh) {
                    if let Some(c) = sample_cache {
                        c.insert(&prompt, opts.temperature, s, response.clone());
                    }
                    prefetched.insert(s, response);
                }
            }
            let mut sample_span = obs::span_vt("tune.llm_sample", db.now());
            let response = match prefetched.remove(&seed) {
                Some(response) => response,
                None => match sample_cache.and_then(|c| c.get(&prompt, opts.temperature, seed)) {
                    Some(response) => response,
                    None => {
                        let response = llm.complete(&prompt, opts.temperature, seed)?;
                        if let Some(c) = sample_cache {
                            c.insert(&prompt, opts.temperature, seed, response.clone());
                        }
                        response
                    }
                },
            };
            db.clock_advance(opts.llm_latency);
            sample_span.vt_end(db.now());
            drop(sample_span);
            let script = match &obfuscator {
                Some(ob) => deobfuscate_script(&response, ob),
                None => response,
            };
            let mut config = Configuration::parse(&script, db.dbms(), db.catalog());
            restrict_scope(&mut config);
            configs.push(config);
            if let Some(o) = observer {
                o.on_event(ProgressEvent::ConfigSampled {
                    index: i,
                    total: opts.num_configs,
                });
            }
        }

        // ---- configuration selection (§4) ----
        let mut select_span = obs::span_vt("tune.select", db.now());
        let evaluator = Evaluator {
            use_scheduler: opts.use_scheduler,
            seed: opts.seed,
        };
        let selector = ConfigSelector::new(opts.selector, evaluator);
        let selection = selector.select_observed(db, workload, &configs, observer);
        select_span.vt_end(db.now());
        drop(select_span);
        tune_span.vt_end(db.now());

        Ok(TuneResult {
            best_config: selection.best.map(|i| configs[i].clone()),
            best_index: selection.best,
            best_time: selection.best_time,
            configs,
            trajectory: selection.trajectory,
            llm_usage: llm.usage(),
            workload_tokens,
            rounds: selection.rounds,
            tuning_time: db.now() - start,
            prompt,
            cancelled: sampling_cancelled || selection.cancelled,
        })
    }
}

/// Replaces obfuscated identifiers (`T<i>`, `C<j>`) in an LLM response with
/// their real names so the configuration can be applied to the database.
pub fn deobfuscate_script(script: &str, obfuscator: &Obfuscator) -> String {
    let mut out = String::with_capacity(script.len());
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut String| {
        if word.is_empty() {
            return;
        }
        if let Some(real) = obfuscator.deobfuscate_table(word) {
            out.push_str(real);
        } else if let Some((_, column)) = obfuscator.deobfuscate_column(word) {
            out.push_str(column);
        } else {
            out.push_str(word);
        }
        word.clear();
    };
    for ch in script.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            word.push(ch);
        } else {
            flush(&mut word, &mut out);
            out.push(ch);
        }
    }
    flush(&mut word, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_llm::SimulatedLlm;
    use lt_workloads::Benchmark;

    fn setup() -> (SimDb, Workload, LlmClient<SimulatedLlm>) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 7);
        (db, w, LlmClient::new(SimulatedLlm::new()))
    }

    #[test]
    fn end_to_end_tpch_beats_defaults() {
        let (mut db, w, llm) = setup();
        let result = LambdaTune::default().tune(&mut db, &w, &llm).unwrap();
        let best = result.best_config.expect("a configuration must win");
        assert!(result.best_time.is_finite());
        assert_eq!(result.configs.len(), 5);
        assert_eq!(result.llm_usage.calls, 5);

        // Compare the winner against the default configuration by running
        // the workload under both.
        let mut fresh = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 7);
        let mut default_time = Secs::ZERO;
        for q in &w.queries {
            default_time += fresh.execute(&q.parsed, Secs::INFINITY).time;
        }
        assert!(
            result.best_time < default_time,
            "λ-Tune {} should beat default {default_time}",
            result.best_time
        );
        assert!(!best.is_empty());
    }

    #[test]
    fn params_only_configs_have_no_indexes() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            params_only: true,
            ..Default::default()
        };
        let result = LambdaTune::new(options).tune(&mut db, &w, &llm).unwrap();
        for config in &result.configs {
            assert!(config.index_specs().is_empty());
        }
        assert!(result.best_index.is_some());
    }

    #[test]
    fn obfuscated_run_still_produces_valid_configs() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            obfuscate: true,
            ..Default::default()
        };
        let result = LambdaTune::new(options).tune(&mut db, &w, &llm).unwrap();
        assert!(result.best_index.is_some());
        // Index specs must reference real catalog objects (deobfuscation
        // succeeded): parse guarantees that, so any index command present
        // proves the round trip.
        let any_indexes = result.configs.iter().any(|c| !c.index_specs().is_empty());
        assert!(
            any_indexes,
            "obfuscated pipeline should still recommend indexes"
        );
    }

    #[test]
    fn tiny_token_budget_degrades_coverage_not_correctness() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            token_budget: Some(40),
            ..Default::default()
        };
        let result = LambdaTune::new(options).tune(&mut db, &w, &llm).unwrap();
        assert!(result.workload_tokens <= 40);
        assert!(result.best_index.is_some());
    }

    #[test]
    fn full_sql_mode_works() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            use_compressor: false,
            token_budget: Some(4000),
            ..Default::default()
        };
        let result = LambdaTune::new(options).tune(&mut db, &w, &llm).unwrap();
        assert!(result.best_index.is_some());
    }

    #[test]
    fn deobfuscate_script_roundtrip() {
        let w = Benchmark::TpchSf1.load();
        let ob = Obfuscator::new(&w.catalog);
        let t = ob.table("lineitem");
        let c = ob.column("lineitem", "l_orderkey");
        let script = format!("CREATE INDEX ON {t} ({c});");
        let real = deobfuscate_script(&script, &ob);
        assert_eq!(real, "CREATE INDEX ON lineitem (l_orderkey);");
        // Unknown identifiers pass through.
        assert_eq!(
            deobfuscate_script("SET work_mem = '1GB';", &ob),
            "SET work_mem = '1GB';"
        );
    }

    #[test]
    fn rag_documents_influence_the_configuration() {
        let (mut db, w, llm) = setup();
        let mut store = crate::rag::DocumentStore::new();
        store.add_document(
            "ssd-guide",
            "For OLAP index tuning on SSD storage, set effective_io_concurrency \
             to 400 to maximize prefetching of index pages.",
        );
        let options = LambdaTuneOptions {
            temperature: 0.0,
            ..Default::default()
        };
        let result = LambdaTune::new(options)
            .with_documents(store)
            .tune(&mut db, &w, &llm)
            .unwrap();
        let followed = result.configs.iter().any(|c| {
            c.knob_changes()
                .any(|(n, v)| n == "effective_io_concurrency" && v.as_f64() == 400.0)
        });
        assert!(
            followed,
            "the retrieved documentation should shape the configs"
        );
    }

    #[test]
    fn zero_num_configs_is_rejected_not_panicking() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            num_configs: 0,
            ..Default::default()
        };
        let err = LambdaTune::new(options)
            .tune(&mut db, &w, &llm)
            .unwrap_err();
        assert_eq!(err.category(), "tuning");
        assert!(err.message().contains("num_configs"), "{err}");
    }

    #[test]
    fn zero_token_budget_is_rejected_not_panicking() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            token_budget: Some(0),
            ..Default::default()
        };
        let err = LambdaTune::new(options)
            .tune(&mut db, &w, &llm)
            .unwrap_err();
        assert_eq!(err.category(), "tuning");
        assert!(err.message().contains("token_budget"), "{err}");
    }

    #[test]
    fn malformed_numeric_options_are_rejected() {
        for options in [
            LambdaTuneOptions {
                temperature: f64::NAN,
                ..Default::default()
            },
            LambdaTuneOptions {
                llm_latency: Secs::INFINITY,
                ..Default::default()
            },
            LambdaTuneOptions {
                params_only: true,
                indexes_only: true,
                ..Default::default()
            },
            LambdaTuneOptions {
                selector: crate::SelectorOptions {
                    alpha: 1.0,
                    ..Default::default()
                },
                ..Default::default()
            },
            LambdaTuneOptions {
                selector: crate::SelectorOptions {
                    initial_timeout: Secs::ZERO,
                    ..Default::default()
                },
                ..Default::default()
            },
        ] {
            let err = options.validate().unwrap_err();
            assert_eq!(err.category(), "tuning", "{options:?}");
        }
        assert!(LambdaTuneOptions::default().validate().is_ok());
    }

    #[test]
    fn pre_cancelled_run_returns_without_llm_calls() {
        let (mut db, w, llm) = setup();
        let token = crate::CancelToken::new();
        token.cancel();
        let result = LambdaTune::default()
            .with_observer(std::sync::Arc::new(token))
            .tune(&mut db, &w, &llm)
            .unwrap();
        assert!(result.cancelled);
        assert!(result.best_config.is_none());
        assert_eq!(result.llm_usage.calls, 0);
    }

    #[test]
    fn cancellation_mid_run_keeps_best_so_far() {
        use crate::progress::{ProgressEvent, TuneObserver};
        use std::sync::atomic::{AtomicBool, Ordering};

        /// Cancels as soon as the first improvement is reported.
        #[derive(Default)]
        struct StopAtFirstWin {
            hit: AtomicBool,
            events: std::sync::Mutex<Vec<ProgressEvent>>,
        }
        impl TuneObserver for StopAtFirstWin {
            fn on_event(&self, event: ProgressEvent) {
                if matches!(event, ProgressEvent::Improvement { .. }) {
                    self.hit.store(true, Ordering::Relaxed);
                }
                self.events.lock().unwrap().push(event);
            }
            fn cancelled(&self) -> bool {
                self.hit.load(Ordering::Relaxed)
            }
        }

        let (mut db, w, llm) = setup();
        let observer = std::sync::Arc::new(StopAtFirstWin::default());
        let result = LambdaTune::default()
            .with_observer(observer.clone())
            .tune(&mut db, &w, &llm)
            .unwrap();
        assert!(result.cancelled);
        assert!(result.best_config.is_some(), "incumbent survives cancel");
        let events = observer.events.lock().unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, ProgressEvent::PromptBuilt { .. })));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ProgressEvent::ConfigSampled { .. }))
                .count(),
            5
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, ProgressEvent::RoundStarted { .. })));
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, ProgressEvent::Improvement { .. }))
                .count(),
            1,
            "run must stop after the first improvement"
        );
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        // A pure observer (no cancellation) must not perturb the result:
        // the serving layer relies on this for its determinism contract.
        struct Null;
        impl crate::progress::TuneObserver for Null {}
        let (mut db1, w, llm1) = setup();
        let plain = LambdaTune::default().tune(&mut db1, &w, &llm1).unwrap();
        let (mut db2, _, llm2) = setup();
        let observed = LambdaTune::default()
            .with_observer(std::sync::Arc::new(Null))
            .tune(&mut db2, &w, &llm2)
            .unwrap();
        assert_eq!(plain.best_index, observed.best_index);
        assert_eq!(plain.best_time, observed.best_time);
        assert_eq!(plain.rounds, observed.rounds);
        assert!(!observed.cancelled);
        assert_eq!(plain.trajectory, observed.trajectory);
    }

    #[test]
    fn warm_start_seeds_candidate_zero_and_saves_llm_calls() {
        let (mut db, w, llm) = setup();
        let first = LambdaTune::default().tune(&mut db, &w, &llm).unwrap();
        let best_script = first
            .best_config
            .as_ref()
            .unwrap()
            .to_script(Dbms::Postgres, &w.catalog);

        let (mut db2, _, llm2) = setup();
        let options = LambdaTuneOptions {
            num_configs: 3,
            ..Default::default()
        };
        let warm = WarmStart {
            prompt: Some(first.prompt.clone()),
            seed_scripts: vec![best_script.clone()],
        };
        let second = LambdaTune::new(options)
            .with_warm_start(warm)
            .tune(&mut db2, &w, &llm2)
            .unwrap();
        // One slot seeded, two sampled; the reused prompt is verbatim.
        assert_eq!(second.configs.len(), 3);
        assert_eq!(second.llm_usage.calls, 2);
        assert_eq!(second.prompt, first.prompt);
        assert_eq!(
            second.configs[0].to_script(Dbms::Postgres, &w.catalog),
            best_script
        );
        assert!(second.best_index.is_some());
    }

    #[test]
    fn absent_warm_start_changes_nothing() {
        let (mut db1, w, llm1) = setup();
        let plain = LambdaTune::default().tune(&mut db1, &w, &llm1).unwrap();
        let (mut db2, _, llm2) = setup();
        let warm = LambdaTune::default()
            .with_warm_start(WarmStart::default())
            .tune(&mut db2, &w, &llm2)
            .unwrap();
        assert_eq!(plain.best_index, warm.best_index);
        assert_eq!(plain.best_time, warm.best_time);
        assert_eq!(plain.trajectory, warm.trajectory);
        assert_eq!(plain.llm_usage.calls, warm.llm_usage.calls);
    }

    #[test]
    fn warm_start_seed_scripts_respect_scope_filters() {
        let (mut db, w, llm) = setup();
        let options = LambdaTuneOptions {
            params_only: true,
            num_configs: 1,
            ..Default::default()
        };
        let warm = WarmStart {
            prompt: None,
            seed_scripts: vec![
                "SET work_mem = '64MB';\nCREATE INDEX ON lineitem (l_orderkey);".into(),
            ],
        };
        let result = LambdaTune::new(options)
            .with_warm_start(warm)
            .tune(&mut db, &w, &llm)
            .unwrap();
        assert_eq!(result.llm_usage.calls, 0, "fully seeded: no sampling");
        assert!(result.configs[0].index_specs().is_empty());
        assert!(result.configs[0].knob_changes().next().is_some());
    }

    #[test]
    fn batched_sampling_matches_unbatched_at_every_batch_size() {
        let (mut db, w, llm) = setup();
        let plain = LambdaTune::default().tune(&mut db, &w, &llm).unwrap();
        for batch in [2, 3, 5, 8] {
            let (mut db2, _, llm2) = setup();
            let batched = LambdaTune::default()
                .with_sample_batch(batch)
                .tune(&mut db2, &w, &llm2)
                .unwrap();
            let scripts = |r: &TuneResult| -> Vec<String> {
                r.configs
                    .iter()
                    .map(|c| c.to_script(Dbms::Postgres, &w.catalog))
                    .collect()
            };
            assert_eq!(scripts(&plain), scripts(&batched), "batch {batch}");
            assert_eq!(plain.best_index, batched.best_index, "batch {batch}");
            assert_eq!(plain.best_time, batched.best_time, "batch {batch}");
            assert_eq!(plain.trajectory, batched.trajectory, "batch {batch}");
            // The saving: one metered call (and one prompt charge) per
            // chunk instead of per sample.
            let chunks = 5usize.div_ceil(batch) as u64;
            assert_eq!(batched.llm_usage.calls, chunks, "batch {batch}");
            assert!(batched.llm_usage.prompt_tokens < plain.llm_usage.prompt_tokens);
            assert_eq!(
                batched.llm_usage.completion_tokens,
                plain.llm_usage.completion_tokens
            );
        }
    }

    #[test]
    fn shared_sample_cache_eliminates_repeat_llm_calls() {
        let cache = Arc::new(crate::samples::SampleCache::with_cap(64));
        let (mut db, w, llm) = setup();
        let first = LambdaTune::default()
            .with_samples(Arc::clone(&cache))
            .tune(&mut db, &w, &llm)
            .unwrap();
        assert_eq!(first.llm_usage.calls, 5);
        let (mut db2, _, llm2) = setup();
        let second = LambdaTune::default()
            .with_samples(Arc::clone(&cache))
            .tune(&mut db2, &w, &llm2)
            .unwrap();
        assert_eq!(second.llm_usage.calls, 0, "all samples served from cache");
        assert_eq!(first.best_index, second.best_index);
        assert_eq!(first.best_time, second.best_time);
        assert_eq!(first.trajectory, second.trajectory);
    }

    #[test]
    fn trajectory_and_timing_are_recorded() {
        let (mut db, w, llm) = setup();
        let result = LambdaTune::default().tune(&mut db, &w, &llm).unwrap();
        assert!(!result.trajectory.is_empty());
        assert!(result.tuning_time > Secs::ZERO);
        assert!(result.workload_tokens > 0);
        assert!(result.llm_usage.cost_usd() > 0.0);
    }
}
