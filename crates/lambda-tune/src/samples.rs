//! Shared LLM sample cache for fleet batching.
//!
//! The serving layer coalesces queued sessions that would send the *same
//! prompt* into one batched LLM call (see `lt-serve`'s worker pool), then
//! hands each session this cache so the pipeline's sampling loop finds its
//! per-seed completions already fetched. Completions are pure functions of
//! `(prompt, temperature, seed)` — the [`lt_llm::LanguageModel`] contract —
//! so serving a sample from the cache is indistinguishable from calling the
//! model, except that no tokens are spent.
//!
//! Bounded LRU (`LT_SAMPLE_CACHE_CAP`, evictions counted as
//! `fleet.sample_evict`).

use lt_common::lru::{cap_from_env, LruMap};
use lt_common::{hash_one, obs};
use std::sync::Mutex;

/// Default bound on cached samples; override with `LT_SAMPLE_CACHE_CAP`.
const DEFAULT_SAMPLE_CAP: usize = 4096;

/// Key: (prompt hash, temperature bits, sampling seed).
type SampleKey = (u64, u64, u64);

/// A process- or pool-shared map from `(prompt, temperature, seed)` to the
/// model's completion. See the module docs.
#[derive(Debug)]
pub struct SampleCache {
    entries: Mutex<LruMap<SampleKey, String>>,
}

impl Default for SampleCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SampleCache {
    /// Cache bounded by the `LT_SAMPLE_CACHE_CAP` environment knob.
    pub fn new() -> Self {
        Self::with_cap(cap_from_env("LT_SAMPLE_CACHE_CAP", DEFAULT_SAMPLE_CAP))
    }

    /// Cache bounded to exactly `cap` samples (tests, sized pools).
    pub fn with_cap(cap: usize) -> Self {
        SampleCache {
            entries: Mutex::new(LruMap::new(cap)),
        }
    }

    fn key(prompt: &str, temperature: f64, seed: u64) -> SampleKey {
        (hash_one(prompt), temperature.to_bits(), seed)
    }

    /// Returns the cached completion for this sampling context, if any.
    /// Counts `fleet.sample_hit` / `fleet.sample_miss`.
    pub fn get(&self, prompt: &str, temperature: f64, seed: u64) -> Option<String> {
        let key = Self::key(prompt, temperature, seed);
        match self.entries.lock().unwrap().get(&key) {
            Some(response) => {
                obs::counter("fleet.sample_hit", 1);
                Some(response.clone())
            }
            None => {
                obs::counter("fleet.sample_miss", 1);
                None
            }
        }
    }

    /// Stores a completion fetched from the model.
    pub fn insert(&self, prompt: &str, temperature: f64, seed: u64, response: String) {
        let key = Self::key(prompt, temperature, seed);
        let mut entries = self.entries.lock().unwrap();
        if !entries.contains(&key) && entries.insert(key, response).is_some() {
            obs::counter("fleet.sample_evict", 1);
        }
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_discriminates_every_key_component() {
        let cache = SampleCache::with_cap(8);
        cache.insert("p", 0.7, 1, "r".into());
        assert_eq!(cache.get("p", 0.7, 1).as_deref(), Some("r"));
        assert!(cache.get("q", 0.7, 1).is_none());
        assert!(cache.get("p", 0.8, 1).is_none());
        assert!(cache.get("p", 0.7, 2).is_none());
    }

    #[test]
    fn cap_evicts_coldest_sample() {
        let cache = SampleCache::with_cap(2);
        cache.insert("p", 0.0, 1, "a".into());
        cache.insert("p", 0.0, 2, "b".into());
        cache.get("p", 0.0, 1); // refresh seed 1
        cache.insert("p", 0.0, 3, "c".into()); // evicts seed 2
        assert!(cache.get("p", 0.0, 2).is_none());
        assert_eq!(cache.get("p", 0.0, 1).as_deref(), Some("a"));
        assert_eq!(cache.len(), 2);
    }
}
