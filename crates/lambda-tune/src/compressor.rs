//! Workload compression via integer linear programming (paper §3.2–3.3).
//!
//! Given the valued join snippets, the compressor chooses which to convey
//! to the LLM under a token budget. Lines have the form
//! `A: B, C, D` (column `A` joins with each of `B`, `C`, `D`), so sharing a
//! left-hand side amortizes its token cost. Selection is the paper's ILP:
//!
//! * binary `R⟨c1,c2⟩` — `c2` appears on `c1`'s right-hand side,
//! * binary `L_c` — `c` owns a line,
//! * `R⟨c1,c2⟩ ≤ L_c1`, `L_c1 ≤ Σ R⟨c1,·⟩`, `R⟨a,b⟩ + R⟨b,a⟩ ≤ 1`,
//! * token budget `Σ H_c2·R + Σ H_c·L ≤ B`,
//! * maximize `Σ V(p)·R_p`.

use crate::snippets::Snippet;
use lt_common::lru::{cap_from_env, LruMap};
use lt_common::{obs, ColumnId, FxHasher, Result};
use lt_dbms::Catalog;
use lt_ilp::{solve, Ilp, SolveOptions};
use lt_llm::count_tokens;
use lt_workloads::Obfuscator;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hasher;
use std::sync::{Mutex, OnceLock};

/// Default bound on the ILP memo; override with `LT_COMPRESS_MEMO_CAP`.
const DEFAULT_MEMO_CAP: usize = 256;

/// Process-wide memo for ILP compression results. The solve is by far the
/// most expensive step of the tuning pipeline (seconds at realistic token
/// budgets, vs microseconds for planning), and the benchmark matrix re-runs
/// it with identical inputs: trials of the same scenario share snippets
/// (estimated costs are seed-independent under default statistics), as do
/// ablation variants that only change selector behaviour. Keyed by a
/// fingerprint of everything `compress` reads — budget, snippet ids and
/// values, and the rendered column names. Bounded LRU (`LT_COMPRESS_MEMO_CAP`
/// entries, evictions counted as `compress.memo_evict`) so fleet-scale runs
/// cannot grow it without limit. Disabled alongside the plan cache by
/// `LT_PLAN_CACHE=0` so the cache-less baseline is measurable.
fn compression_memo() -> Option<&'static Mutex<LruMap<u64, CompressedWorkload>>> {
    static MEMO: OnceLock<Option<Mutex<LruMap<u64, CompressedWorkload>>>> = OnceLock::new();
    MEMO.get_or_init(|| {
        let enabled = !matches!(
            std::env::var("LT_PLAN_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        );
        enabled.then(|| {
            Mutex::new(LruMap::new(cap_from_env(
                "LT_COMPRESS_MEMO_CAP",
                DEFAULT_MEMO_CAP,
            )))
        })
    })
    .as_ref()
}

/// The compressed workload description destined for the prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedWorkload {
    /// One line per left-hand-side column: `table.col: table.col, …`,
    /// ordered by total conveyed value (most valuable first).
    pub lines: Vec<String>,
    /// Approximate token count of [`CompressedWorkload::text`].
    pub tokens: usize,
    /// Total value of the selected snippets.
    pub selected_value: f64,
    /// Total value of all snippets (selected + dropped).
    pub total_value: f64,
    /// True when the ILP solver proved the selection optimal.
    pub optimal: bool,
}

impl CompressedWorkload {
    /// The newline-joined description.
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }

    /// Fraction of total snippet value conveyed to the LLM.
    pub fn coverage(&self) -> f64 {
        if self.total_value <= 0.0 {
            1.0
        } else {
            self.selected_value / self.total_value
        }
    }
}

/// The workload compressor.
pub struct Compressor<'a> {
    catalog: &'a Catalog,
    obfuscator: Option<&'a Obfuscator>,
}

impl<'a> Compressor<'a> {
    /// Compressor rendering real catalog names.
    pub fn new(catalog: &'a Catalog) -> Self {
        Compressor {
            catalog,
            obfuscator: None,
        }
    }

    /// Compressor rendering obfuscated names (paper §6.4.3).
    pub fn obfuscated(catalog: &'a Catalog, obfuscator: &'a Obfuscator) -> Self {
        Compressor {
            catalog,
            obfuscator: Some(obfuscator),
        }
    }

    /// Renders a column as it will appear in the prompt.
    pub fn render_column(&self, col: ColumnId) -> String {
        let meta = self.catalog.column(col);
        let table = &self.catalog.table(meta.table).name;
        match self.obfuscator {
            Some(ob) => format!("{}.{}", ob.table(table), ob.column(table, &meta.name)),
            None => format!("{table}.{}", meta.name),
        }
    }

    /// Fingerprint of every input `compress` depends on: the budget, the
    /// snippets (ids and value bits) and the rendered column names (which
    /// fold in catalog naming and obfuscation).
    fn compress_key(&self, snippets: &[Snippet], budget: usize) -> u64 {
        let mut h = FxHasher::new();
        h.write_u64(budget as u64);
        h.write_u64(snippets.len() as u64);
        for s in snippets {
            h.write_u32(s.left.0);
            h.write_u32(s.right.0);
            h.write_u64(s.value.to_bits());
            h.write(self.render_column(s.left).as_bytes());
            h.write(self.render_column(s.right).as_bytes());
        }
        h.finish()
    }

    /// Selects and renders the most valuable snippets within `budget`
    /// tokens by solving the paper's ILP. Results are memoized process-wide
    /// (see [`compression_memo`]); `compress` is a pure function of its
    /// inputs, so the memo is invisible except for speed.
    pub fn compress(&self, snippets: &[Snippet], budget: usize) -> Result<CompressedWorkload> {
        let total_value: f64 = snippets.iter().map(|s| s.value).sum();
        if snippets.is_empty() || budget == 0 {
            return Ok(CompressedWorkload {
                lines: Vec::new(),
                tokens: 0,
                selected_value: 0.0,
                total_value,
                optimal: true,
            });
        }
        let key = self.compress_key(snippets, budget);
        if let Some(memo) = compression_memo() {
            if let Some(hit) = memo.lock().unwrap().get(&key) {
                obs::counter("compress.memo_hit", 1);
                return Ok(hit.clone());
            }
        }
        let _span = obs::span("tune.compress");
        obs::counter("compress.memo_miss", 1);
        let result = self.compress_uncached(snippets, budget, total_value)?;
        if let Some(memo) = compression_memo() {
            if memo.lock().unwrap().insert(key, result.clone()).is_some() {
                obs::counter("compress.memo_evict", 1);
            }
        }
        Ok(result)
    }

    fn compress_uncached(
        &self,
        snippets: &[Snippet],
        budget: usize,
        total_value: f64,
    ) -> Result<CompressedWorkload> {
        // Collect distinct columns and their token costs. Every rendered
        // element also costs separator punctuation (`:` or `,` plus
        // spacing), folded into H.
        let mut columns: Vec<ColumnId> = snippets.iter().flat_map(|s| [s.left, s.right]).collect();
        columns.sort_unstable();
        columns.dedup();
        let col_index: HashMap<ColumnId, usize> =
            columns.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        let token_cost: Vec<f64> = columns
            .iter()
            .map(|c| (count_tokens(&self.render_column(*c)) + 1) as f64)
            .collect();

        // Variable layout: R variables for both directions of each
        // snippet, then L variables per column.
        let n_r = snippets.len() * 2;
        let n_l = columns.len();
        let mut ilp = Ilp::new(n_r + n_l);
        let l_var = |ci: usize| n_r + ci;
        // R variable of snippet s in direction d (0: left→right, 1: rev).
        let r_var = |si: usize, d: usize| si * 2 + d;

        let mut budget_terms: Vec<(usize, f64)> = Vec::new();
        for (si, s) in snippets.iter().enumerate() {
            for d in 0..2 {
                let (lhs, rhs) = if d == 0 {
                    (s.left, s.right)
                } else {
                    (s.right, s.left)
                };
                let (lhs_i, rhs_i) = (col_index[&lhs], col_index[&rhs]);
                let rv = r_var(si, d);
                // An epsilon preference for the normalized direction makes
                // the rendering canonical when both directions are optimal
                // (so renaming columns cannot flip line orientation).
                let bonus = if d == 0 {
                    s.value.abs() * 1e-9 + 1e-12
                } else {
                    0.0
                };
                ilp.set_objective(rv, s.value.max(0.0) + bonus)?;
                // R ≤ L(lhs)
                ilp.add_implication(rv, l_var(lhs_i))?;
                budget_terms.push((rv, token_cost[rhs_i]));
            }
            // Symmetric directions conflict.
            ilp.add_conflict(r_var(si, 0), r_var(si, 1))?;
        }
        // L ≤ Σ R over this lhs (prune lines without members).
        let mut per_lhs: BTreeMap<usize, Vec<(usize, f64)>> = BTreeMap::new();
        for (si, s) in snippets.iter().enumerate() {
            per_lhs
                .entry(col_index[&s.left])
                .or_default()
                .push((r_var(si, 0), -1.0));
            per_lhs
                .entry(col_index[&s.right])
                .or_default()
                .push((r_var(si, 1), -1.0));
        }
        for (lhs_i, mut terms) in per_lhs {
            terms.push((l_var(lhs_i), 1.0));
            ilp.add_le(&terms, 0.0)?;
        }
        for (ci, cost) in token_cost.iter().enumerate() {
            budget_terms.push((l_var(ci), *cost));
        }
        ilp.add_le(&budget_terms, budget as f64)?;

        let solution = solve(&ilp, SolveOptions::default())?;

        // Render: group selected R variables by left-hand side. Recompute
        // the selected value from raw snippet values (the solver objective
        // additionally carries the canonical-direction epsilons).
        let mut groups: BTreeMap<ColumnId, Vec<(ColumnId, f64)>> = BTreeMap::new();
        let mut selected_value = 0.0;
        for (si, s) in snippets.iter().enumerate() {
            if solution.values[r_var(si, 0)] {
                groups.entry(s.left).or_default().push((s.right, s.value));
                selected_value += s.value;
            }
            if solution.values[r_var(si, 1)] {
                groups.entry(s.right).or_default().push((s.left, s.value));
                selected_value += s.value;
            }
        }
        let mut rendered: Vec<(f64, String)> = groups
            .into_iter()
            .map(|(lhs, mut members)| {
                members.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                let value: f64 = members.iter().map(|m| m.1).sum();
                let rhs: Vec<String> = members
                    .iter()
                    .map(|(c, _)| self.render_column(*c))
                    .collect();
                (
                    value,
                    format!("{}: {}", self.render_column(lhs), rhs.join(", ")),
                )
            })
            .collect();
        rendered.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let lines: Vec<String> = rendered.into_iter().map(|(_, l)| l).collect();
        let tokens = count_tokens(&lines.join("\n"));
        Ok(CompressedWorkload {
            lines,
            tokens,
            selected_value,
            total_value,
            optimal: solution.optimal,
        })
    }

    /// Greedy baseline selection (density order), used by tests and the
    /// ablation benches to quantify the ILP's advantage.
    pub fn compress_greedy(&self, snippets: &[Snippet], budget: usize) -> CompressedWorkload {
        let total_value: f64 = snippets.iter().map(|s| s.value).sum();
        let mut by_density: Vec<&Snippet> = snippets.iter().collect();
        by_density.sort_by(|a, b| {
            b.value
                .partial_cmp(&a.value)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut opened: BTreeMap<ColumnId, Vec<(ColumnId, f64)>> = BTreeMap::new();
        let mut used = 0usize;
        let mut selected_value = 0.0;
        for s in by_density {
            let rhs_cost = count_tokens(&self.render_column(s.right)) + 1;
            let lhs_cost = if opened.contains_key(&s.left) {
                0
            } else {
                count_tokens(&self.render_column(s.left)) + 1
            };
            if used + rhs_cost + lhs_cost > budget {
                continue;
            }
            used += rhs_cost + lhs_cost;
            selected_value += s.value;
            opened.entry(s.left).or_default().push((s.right, s.value));
        }
        let lines: Vec<String> = opened
            .into_iter()
            .map(|(lhs, members)| {
                let rhs: Vec<String> = members
                    .iter()
                    .map(|(c, _)| self.render_column(*c))
                    .collect();
                format!("{}: {}", self.render_column(lhs), rhs.join(", "))
            })
            .collect();
        let tokens = count_tokens(&lines.join("\n"));
        CompressedWorkload {
            lines,
            tokens,
            selected_value,
            total_value,
            optimal: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_workloads::Benchmark;

    fn tpch_snippets() -> (lt_workloads::Workload, Vec<Snippet>) {
        let w = Benchmark::TpchSf1.load();
        let db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 1);
        let s = crate::snippets::extract_snippets(&db, &w);
        (w, s)
    }

    #[test]
    fn compression_respects_budget() {
        let (w, snippets) = tpch_snippets();
        let c = Compressor::new(&w.catalog);
        for budget in [50, 150, 400] {
            let out = c.compress(&snippets, budget).unwrap();
            assert!(
                out.tokens <= budget,
                "budget {budget} exceeded: {} tokens",
                out.tokens
            );
            assert!(out.optimal);
        }
    }

    #[test]
    fn bigger_budget_never_reduces_value() {
        let (w, snippets) = tpch_snippets();
        let c = Compressor::new(&w.catalog);
        let small = c.compress(&snippets, 80).unwrap();
        let big = c.compress(&snippets, 400).unwrap();
        assert!(big.selected_value >= small.selected_value);
        assert!(big.coverage() <= 1.0 + 1e-9);
    }

    #[test]
    fn generous_budget_covers_everything() {
        let (w, snippets) = tpch_snippets();
        let c = Compressor::new(&w.catalog);
        let out = c.compress(&snippets, 100_000).unwrap();
        assert!(
            (out.coverage() - 1.0).abs() < 1e-9,
            "coverage {}",
            out.coverage()
        );
    }

    #[test]
    fn ilp_beats_or_matches_greedy() {
        let (w, snippets) = tpch_snippets();
        let c = Compressor::new(&w.catalog);
        for budget in [60, 120, 250] {
            let ilp = c.compress(&snippets, budget).unwrap();
            let greedy = c.compress_greedy(&snippets, budget);
            assert!(
                ilp.selected_value >= greedy.selected_value - 1e-9,
                "budget {budget}: ilp {} < greedy {}",
                ilp.selected_value,
                greedy.selected_value
            );
        }
    }

    #[test]
    fn lines_have_the_paper_format() {
        let (w, snippets) = tpch_snippets();
        let c = Compressor::new(&w.catalog);
        let out = c.compress(&snippets, 300).unwrap();
        assert!(!out.lines.is_empty());
        for line in &out.lines {
            let (lhs, rhs) = line.split_once(':').expect("A: B, C format");
            assert!(lhs.contains('.'), "qualified name: {lhs}");
            assert!(!rhs.trim().is_empty());
        }
    }

    #[test]
    fn zero_budget_yields_empty_description() {
        let (w, snippets) = tpch_snippets();
        let c = Compressor::new(&w.catalog);
        let out = c.compress(&snippets, 0).unwrap();
        assert!(out.lines.is_empty());
        assert_eq!(out.tokens, 0);
    }

    #[test]
    fn obfuscated_rendering_hides_names() {
        let (w, snippets) = tpch_snippets();
        let ob = Obfuscator::new(&w.catalog);
        let c = Compressor::obfuscated(&w.catalog, &ob);
        let out = c.compress(&snippets, 300).unwrap();
        let text = out.text();
        assert!(!text.contains("lineitem"), "{text}");
        assert!(!text.contains("orderkey"), "{text}");
        assert!(text.contains('T') && text.contains('C'), "{text}");
    }

    #[test]
    fn symmetric_directions_are_never_both_selected() {
        let (w, snippets) = tpch_snippets();
        let c = Compressor::new(&w.catalog);
        let out = c.compress(&snippets, 400).unwrap();
        // If A: …B… exists, no line may contain B: …A…
        for (i, line) in out.lines.iter().enumerate() {
            let (lhs, rhs) = line.split_once(':').unwrap();
            for member in rhs.split(',') {
                let member = member.trim();
                for (j, other) in out.lines.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let (olhs, orhs) = other.split_once(':').unwrap();
                    if olhs.trim() == member {
                        assert!(
                            !orhs.split(',').any(|m| m.trim() == lhs.trim()),
                            "symmetric pair rendered twice: {line} / {other}"
                        );
                    }
                }
            }
        }
    }
}
