//! Deterministic drift detectors over a sliding window of
//! [`QueryObservation`]s.
//!
//! Three complementary detectors run against every session stream:
//!
//! 1. **Frequency JSD** — Jensen–Shannon divergence between the window's
//!    feature [`Profile`] and a reference profile (the tuning workload, or
//!    self-calibrated from the warm-up prefix). Catches mix shifts and
//!    predicate-distribution shifts. An alarm requires the divergence to
//!    exceed the threshold on [`DriftConfig::confirm`] *consecutive*
//!    evaluations, so a single odd window never fires.
//! 2. **Hit-rate collapse** — an EWMA of the windowed plan-cache hit rate
//!    with arm/collapse hysteresis: the detector arms once the smoothed
//!    rate has been high ([`DriftConfig::hit_arm`]) and fires only when it
//!    then falls through [`DriftConfig::hit_collapse`]. A session that
//!    never cached well can therefore never "collapse".
//! 3. **Latency change-point** — a Page–Hinkley test on per-query-tag
//!    normalized `log₁₀` latency residuals. Normalizing against each
//!    statement's own running mean makes the statistic workload-mix
//!    independent: a scale-factor jump moves every residual at once, while
//!    a mere mix change (slow queries becoming more frequent) does not
//!    perturb residuals at all — that is the JSD detector's job.
//!
//! Everything is pure integer/float arithmetic over `BTreeMap`s — no
//! wall-clock, no hashing randomness — so the same observation sequence
//! produces byte-identical events on any machine or thread count.

use crate::profile::{Profile, QueryObservation};
use lt_common::{json, json::Value, obs};
use std::collections::{BTreeMap, VecDeque};

/// Tuning knobs for the drift detectors, overridable via `LT_DRIFT_*`
/// environment variables (see [`DriftConfig::from_env`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Sliding-window length in queries (`LT_DRIFT_WINDOW`).
    pub window: usize,
    /// Evaluate the windowed detectors every `stride` queries
    /// (`LT_DRIFT_STRIDE`).
    pub stride: usize,
    /// Observations before any detector may fire; a monitor without a
    /// preset reference also builds one from this prefix
    /// (`LT_DRIFT_WARMUP`).
    pub warmup: usize,
    /// JSD alarm threshold in bits (`LT_DRIFT_JSD`).
    pub jsd_threshold: f64,
    /// Consecutive over-threshold JSD evaluations required to fire
    /// (`LT_DRIFT_CONFIRM`).
    pub confirm: usize,
    /// EWMA smoothing factor for the hit rate (`LT_DRIFT_EWMA_ALPHA`).
    pub ewma_alpha: f64,
    /// Smoothed hit rate that arms the collapse detector
    /// (`LT_DRIFT_HIT_ARM`).
    pub hit_arm: f64,
    /// Smoothed hit rate that fires it once armed
    /// (`LT_DRIFT_HIT_COLLAPSE`).
    pub hit_collapse: f64,
    /// Page–Hinkley drift tolerance per observation (`LT_DRIFT_PH_DELTA`).
    pub ph_delta: f64,
    /// Page–Hinkley alarm threshold (`LT_DRIFT_PH_LAMBDA`).
    pub ph_lambda: f64,
    /// Observations suppressed after an alarm before detectors re-arm
    /// (`LT_DRIFT_COOLDOWN`).
    pub cooldown: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 128,
            stride: 16,
            warmup: 256,
            jsd_threshold: 0.35,
            confirm: 2,
            ewma_alpha: 0.3,
            hit_arm: 0.6,
            hit_collapse: 0.25,
            ph_delta: 0.05,
            ph_lambda: 6.0,
            cooldown: 256,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl DriftConfig {
    /// Defaults overridden by any `LT_DRIFT_*` environment variables set.
    pub fn from_env() -> DriftConfig {
        let d = DriftConfig::default();
        DriftConfig {
            window: env_parse("LT_DRIFT_WINDOW", d.window).max(1),
            stride: env_parse("LT_DRIFT_STRIDE", d.stride).max(1),
            warmup: env_parse("LT_DRIFT_WARMUP", d.warmup),
            jsd_threshold: env_parse("LT_DRIFT_JSD", d.jsd_threshold),
            confirm: env_parse("LT_DRIFT_CONFIRM", d.confirm).max(1),
            ewma_alpha: env_parse("LT_DRIFT_EWMA_ALPHA", d.ewma_alpha),
            hit_arm: env_parse("LT_DRIFT_HIT_ARM", d.hit_arm),
            hit_collapse: env_parse("LT_DRIFT_HIT_COLLAPSE", d.hit_collapse),
            ph_delta: env_parse("LT_DRIFT_PH_DELTA", d.ph_delta),
            ph_lambda: env_parse("LT_DRIFT_PH_LAMBDA", d.ph_lambda),
            cooldown: env_parse("LT_DRIFT_COOLDOWN", d.cooldown),
        }
    }
}

/// Which detector raised a [`DriftEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// Windowed Jensen–Shannon divergence on the feature frequencies.
    FrequencyJsd,
    /// EWMA plan-cache hit-rate collapse.
    HitRateCollapse,
    /// Page–Hinkley change-point on normalized per-query latency.
    LatencyChangePoint,
}

impl Detector {
    /// Stable lower-case name for JSON and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Detector::FrequencyJsd => "frequency_jsd",
            Detector::HitRateCollapse => "hit_rate_collapse",
            Detector::LatencyChangePoint => "latency_change_point",
        }
    }
}

/// One drift alarm.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEvent {
    /// The detector that fired.
    pub detector: Detector,
    /// 1-based count of observations at the moment of the alarm.
    pub at_query: u64,
    /// Detector statistic at the alarm.
    pub score: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

impl DriftEvent {
    /// JSON rendering used by session status and `drift_bench`.
    pub fn to_json(&self) -> Value {
        json!({
            "detector": self.detector.name(),
            "at_query": self.at_query as f64,
            "score": self.score,
            "threshold": self.threshold,
        })
    }
}

/// Per-statement latency baseline for the Page–Hinkley test.
#[derive(Debug, Clone, Default)]
struct TagBaseline {
    mean: f64,
    n: u64,
}

/// Observations retained by the sliding window.
#[derive(Debug, Clone)]
struct WindowEntry {
    features: Vec<u64>,
    hit: Option<bool>,
}

/// Current detector statistics, exposed for status endpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriftScores {
    /// Last evaluated JSD against the reference profile.
    pub jsd: f64,
    /// Smoothed plan-cache hit rate (NaN-free: 0 until first evaluation).
    pub ewma_hit_rate: f64,
    /// Current Page–Hinkley statistic.
    pub page_hinkley: f64,
}

/// The streaming drift monitor; see the module docs.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    /// Reference profile; grown from the warm-up prefix when not preset.
    reference: Profile,
    preset_reference: bool,
    window: VecDeque<WindowEntry>,
    current: Profile,
    observed: u64,
    /// Detectors stay silent until this many observations.
    armed_at: u64,
    /// Observation count below which alarms are suppressed (cooldown).
    quiet_until: u64,
    jsd_streak: usize,
    ewma_hit: Option<f64>,
    hit_armed: bool,
    baselines: BTreeMap<u64, TagBaseline>,
    ph_cum: f64,
    ph_min: f64,
    scores: DriftScores,
    events: Vec<DriftEvent>,
}

impl DriftMonitor {
    /// Monitor that self-calibrates: the first [`DriftConfig::warmup`]
    /// observations become the reference profile.
    pub fn new(config: DriftConfig) -> DriftMonitor {
        Self::build(config, None)
    }

    /// Monitor with a preset reference (the profile of the workload the
    /// session was tuned for). Detectors still wait for one full window.
    pub fn with_reference(config: DriftConfig, reference: Profile) -> DriftMonitor {
        Self::build(config, Some(reference))
    }

    fn build(config: DriftConfig, reference: Option<Profile>) -> DriftMonitor {
        let armed_at = match &reference {
            // Preset reference: only the window must fill before the
            // windowed statistics mean anything.
            Some(_) => config.window.max(config.stride) as u64,
            None => config.warmup.max(config.window) as u64,
        };
        DriftMonitor {
            window: VecDeque::with_capacity(config.window + 1),
            config,
            preset_reference: reference.is_some(),
            reference: reference.unwrap_or_default(),
            current: Profile::new(),
            observed: 0,
            armed_at,
            quiet_until: 0,
            jsd_streak: 0,
            ewma_hit: None,
            hit_armed: false,
            baselines: BTreeMap::new(),
            ph_cum: 0.0,
            ph_min: 0.0,
            scores: DriftScores::default(),
            events: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Observations consumed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// All alarms raised so far, in order.
    pub fn events(&self) -> &[DriftEvent] {
        &self.events
    }

    /// Current detector statistics.
    pub fn scores(&self) -> DriftScores {
        self.scores
    }

    /// Feeds one executed query through every detector. Returns the alarm
    /// raised by this observation, if any (at most one: the first detector
    /// to fire wins and starts the cooldown).
    pub fn observe(&mut self, obs_in: &QueryObservation) -> Option<DriftEvent> {
        self.observed += 1;
        obs::counter("drift.observed", 1);

        // Self-calibration: the warm-up prefix *is* the reference.
        if !self.preset_reference && self.observed <= self.config.warmup as u64 {
            self.reference.add(&obs_in.features);
        }

        // Slide the window.
        self.current.add(&obs_in.features);
        self.window.push_back(WindowEntry {
            features: obs_in.features.clone(),
            hit: obs_in.plan_cache_hit,
        });
        if self.window.len() > self.config.window {
            let old = self.window.pop_front().expect("window non-empty");
            self.current.remove(&old.features);
        }

        // Page–Hinkley residual: how far this statement's latency sits
        // from its own running mean, in decades. The first sighting of a
        // tag only seeds the baseline.
        let x = obs_in.latency.as_f64().max(1e-9).log10();
        let residual = {
            let base = self.baselines.entry(obs_in.tag).or_default();
            if base.n == 0 {
                base.mean = x;
                base.n = 1;
                None
            } else {
                let r = x - base.mean;
                // Running mean, frozen into a slow EWMA once established
                // so the baseline cannot chase a genuine regime change.
                if base.n < 32 {
                    base.mean += r / (base.n + 1) as f64;
                } else {
                    base.mean += 0.02 * r;
                }
                base.n += 1;
                Some(r)
            }
        };

        let armed = self.observed >= self.armed_at && self.observed >= self.quiet_until;
        let mut fired: Option<DriftEvent> = None;

        if let Some(r) = residual {
            self.ph_cum += r - self.config.ph_delta;
            self.ph_min = self.ph_min.min(self.ph_cum);
            self.scores.page_hinkley = self.ph_cum - self.ph_min;
            obs::gauge("drift.page_hinkley", self.scores.page_hinkley);
            if armed && self.scores.page_hinkley > self.config.ph_lambda {
                fired = Some(self.fire(
                    Detector::LatencyChangePoint,
                    self.scores.page_hinkley,
                    self.config.ph_lambda,
                ));
            }
        }

        if fired.is_none() && self.observed.is_multiple_of(self.config.stride as u64) {
            obs::counter("drift.evaluations", 1);
            fired = self.evaluate_windowed(armed);
        }
        fired
    }

    /// Stride-boundary evaluation of the JSD and hit-rate detectors.
    fn evaluate_windowed(&mut self, armed: bool) -> Option<DriftEvent> {
        // Frequency JSD with consecutive-confirmation.
        self.scores.jsd = self.reference.jensen_shannon(&self.current);
        obs::gauge("drift.jsd", self.scores.jsd);
        if self.scores.jsd > self.config.jsd_threshold {
            self.jsd_streak += 1;
        } else {
            self.jsd_streak = 0;
        }
        if armed && self.jsd_streak >= self.config.confirm {
            return Some(self.fire(
                Detector::FrequencyJsd,
                self.scores.jsd,
                self.config.jsd_threshold,
            ));
        }

        // EWMA hit rate with arm/collapse hysteresis.
        let (hits, known) = self
            .window
            .iter()
            .fold((0u64, 0u64), |(h, k), e| match e.hit {
                Some(true) => (h + 1, k + 1),
                Some(false) => (h, k + 1),
                None => (h, k),
            });
        if known > 0 {
            let rate = hits as f64 / known as f64;
            let ewma = match self.ewma_hit {
                Some(prev) => self.config.ewma_alpha * rate + (1.0 - self.config.ewma_alpha) * prev,
                None => rate,
            };
            self.ewma_hit = Some(ewma);
            self.scores.ewma_hit_rate = ewma;
            obs::gauge("drift.ewma_hit_rate", ewma);
            if ewma >= self.config.hit_arm {
                self.hit_armed = true;
            }
            if armed && self.hit_armed && ewma <= self.config.hit_collapse {
                return Some(self.fire(Detector::HitRateCollapse, ewma, self.config.hit_collapse));
            }
        }
        None
    }

    /// Records an alarm and starts the cooldown: every detector state that
    /// accumulates toward an alarm is reset so one regime change cannot
    /// cascade into a train of alarms.
    fn fire(&mut self, detector: Detector, score: f64, threshold: f64) -> DriftEvent {
        let event = DriftEvent {
            detector,
            at_query: self.observed,
            score,
            threshold,
        };
        obs::counter(
            match detector {
                Detector::FrequencyJsd => "drift.alarm.jsd",
                Detector::HitRateCollapse => "drift.alarm.hit_rate",
                Detector::LatencyChangePoint => "drift.alarm.latency",
            },
            1,
        );
        self.quiet_until = self.observed + self.config.cooldown as u64;
        self.jsd_streak = 0;
        self.hit_armed = false;
        self.ph_cum = 0.0;
        self.ph_min = 0.0;
        self.events.push(event.clone());
        event
    }

    /// Replaces the reference profile (after a re-tune adopted the new
    /// regime) and clears accumulated detector state. Latency baselines
    /// are kept: statement means are regime-independent descriptions of
    /// the statements themselves, and the post-re-tune database is the
    /// same one the baselines were learned on.
    pub fn rebase(&mut self, reference: Profile) {
        self.reference = reference;
        self.preset_reference = true;
        self.jsd_streak = 0;
        self.hit_armed = false;
        self.ewma_hit = None;
        self.ph_cum = 0.0;
        self.ph_min = 0.0;
        self.quiet_until = self.observed + self.config.cooldown as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_common::secs;

    fn obs_with(features: &[u64], tag: u64, latency: f64, hit: Option<bool>) -> QueryObservation {
        QueryObservation {
            features: features.to_vec(),
            tag,
            latency: secs(latency),
            plan_cache_hit: hit,
        }
    }

    fn tiny() -> DriftConfig {
        DriftConfig {
            window: 8,
            stride: 4,
            warmup: 8,
            cooldown: 16,
            ..Default::default()
        }
    }

    #[test]
    fn stable_stream_never_alarms() {
        let mut m = DriftMonitor::new(tiny());
        for i in 0..500 {
            let f = [1, 2, (i % 3) + 10];
            assert!(m.observe(&obs_with(&f, i % 3, 1.0, Some(true))).is_none());
        }
        assert!(m.events().is_empty());
    }

    #[test]
    fn frequency_shift_fires_jsd() {
        let mut m = DriftMonitor::new(tiny());
        for i in 0..100u64 {
            m.observe(&obs_with(&[1, 2, 3], i % 4, 1.0, Some(true)));
        }
        let mut fired = None;
        for i in 0..100u64 {
            if let Some(e) = m.observe(&obs_with(&[7, 8, 9], 100 + i % 4, 1.0, Some(true))) {
                fired = Some(e);
                break;
            }
        }
        let e = fired.expect("disjoint feature shift must alarm");
        assert_eq!(e.detector, Detector::FrequencyJsd);
        assert!(e.score > e.threshold);
    }

    #[test]
    fn hit_rate_collapse_requires_prior_arming() {
        // Never-cached stream: the collapse detector must stay silent.
        let mut m = DriftMonitor::new(tiny());
        for i in 0..200u64 {
            let e = m.observe(&obs_with(&[1, 2], i % 4, 1.0, Some(false)));
            assert!(e.is_none(), "unarmed collapse fired at {i}");
        }

        // Well-cached then cold: must fire HitRateCollapse. Keep features
        // and latency constant so the other detectors stay quiet.
        let mut m = DriftMonitor::new(tiny());
        for i in 0..100u64 {
            m.observe(&obs_with(&[1, 2], i % 4, 1.0, Some(true)));
        }
        let mut fired = None;
        for i in 0..200u64 {
            if let Some(e) = m.observe(&obs_with(&[1, 2], i % 4, 1.0, Some(false))) {
                fired = Some(e);
                break;
            }
        }
        assert_eq!(
            fired.expect("collapse must fire").detector,
            Detector::HitRateCollapse
        );
    }

    #[test]
    fn latency_jump_fires_page_hinkley() {
        let mut m = DriftMonitor::new(tiny());
        for i in 0..100u64 {
            m.observe(&obs_with(&[1, 2], i % 4, 1.0, Some(true)));
        }
        let mut fired = None;
        for i in 0..200u64 {
            // Same statements, 10× slower: residuals jump one decade.
            if let Some(e) = m.observe(&obs_with(&[1, 2], i % 4, 10.0, Some(true))) {
                fired = Some(e);
                break;
            }
        }
        assert_eq!(
            fired.expect("latency jump must fire").detector,
            Detector::LatencyChangePoint
        );
    }

    #[test]
    fn cooldown_suppresses_alarm_trains() {
        let mut m = DriftMonitor::new(DriftConfig {
            cooldown: 1000,
            ..tiny()
        });
        for i in 0..100u64 {
            m.observe(&obs_with(&[1, 2], i % 4, 1.0, Some(true)));
        }
        let mut count = 0;
        for i in 0..200u64 {
            if m.observe(&obs_with(&[7, 8], i % 4, 1.0, Some(true)))
                .is_some()
            {
                count += 1;
            }
        }
        assert_eq!(count, 1, "cooldown must cap one alarm per regime change");
    }

    #[test]
    fn replay_is_byte_identical() {
        let run = || {
            let mut m = DriftMonitor::new(tiny());
            let mut events = Vec::new();
            for i in 0..400u64 {
                let f = if i < 200 { [1, 2] } else { [3, 4] };
                let lat = if i < 300 { 1.0 } else { 4.0 };
                if let Some(e) = m.observe(&obs_with(&f, i % 5, lat, Some(i % 2 == 0))) {
                    events.push(e);
                }
            }
            (events, m.scores())
        };
        let (e1, s1) = run();
        let (e2, s2) = run();
        assert_eq!(e1, e2);
        assert_eq!(s1, s2);
        assert!(!e1.is_empty());
    }

    #[test]
    fn env_overrides_parse() {
        // No env set: defaults come back.
        let d = DriftConfig::from_env();
        assert_eq!(d, DriftConfig::default());
    }
}
