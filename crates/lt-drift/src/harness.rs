//! Shared experiment harness: plays a [`PhasedStream`] through per-source
//! simulated databases and a [`DriftMonitor`], and runs the stale vs
//! warm-start vs full-re-tune quality comparison. Used by both
//! `drift_bench` and the seeded property suite, so the committed numbers
//! and the CI assertions exercise the identical code path.

use crate::delta::{delta_prompt, LabeledProfile, WorkloadDelta};
use crate::detect::{DriftConfig, DriftEvent, DriftMonitor};
use crate::profile::QueryObservation;
use crate::retune::{retune, RetuneOptions, TuneMemory};
use lambda_tune::{LambdaTune, LambdaTuneOptions};
use lt_common::{derive_seed, Result, Secs};
use lt_dbms::db::query_tag;
use lt_dbms::{Configuration, Dbms, Hardware, SimDb};
use lt_llm::{LlmClient, SimulatedLlm};
use lt_synth::{
    predicate_templates, Phase, PhasedStream, PhasedStreamSpec, ShiftClass, StreamSpec,
};
use lt_workloads::{Benchmark, Workload};

/// Outcome of playing one phased stream through the monitor.
#[derive(Debug, Clone)]
pub struct StreamRunReport {
    /// The spec that was played.
    pub spec: PhasedStreamSpec,
    /// Every alarm, in stream order.
    pub events: Vec<DriftEvent>,
    /// Alarms at or before the shift point (for a stationary stream:
    /// every alarm). These are false positives by construction.
    pub false_alarms: usize,
    /// Queries from the shift point to the first post-shift alarm, when
    /// one fired (`at_query - shift_at`).
    pub detection_latency: Option<u64>,
}

/// Plays a built stream through fresh per-source databases and a
/// self-calibrating [`DriftMonitor`]; the draw loop both entry points
/// share. One simulated database per source benchmark, created lazily;
/// its seed is derived from `stream_seed` per source so a scale jump
/// lands on a database with its own noise stream, deterministically.
fn play_stream(stream: PhasedStream, stream_seed: u64, config: &DriftConfig) -> Vec<DriftEvent> {
    let mut monitor = DriftMonitor::new(config.clone());
    let mut dbs: Vec<(Benchmark, SimDb)> = Vec::new();
    let mut events = Vec::new();
    for sq in stream {
        let db = match dbs.iter().position(|(b, _)| *b == sq.source) {
            Some(i) => &mut dbs[i].1,
            None => {
                let w = sq.source.load();
                let seed = derive_seed(stream_seed, dbs.len() as u64);
                dbs.push((
                    sq.source,
                    SimDb::new(Dbms::Postgres, w.catalog, Hardware::p3_2xlarge(), seed),
                ));
                &mut dbs.last_mut().expect("just pushed").1
            }
        };
        let outcome = db.execute(&sq.parsed, Secs::INFINITY);
        let preds = db.predicates(&sq.parsed);
        // The windowed cache counters, drained per query, say whether
        // *this* plan came from the cache.
        let window = db.take_cache_window();
        let hit = window.plan_hits + window.plan_misses > 0 && window.plan_misses == 0;
        let observation = QueryObservation::new(
            db.catalog(),
            &preds,
            query_tag(&sq.parsed),
            outcome.time,
            Some(hit),
        );
        if let Some(event) = monitor.observe(&observation) {
            events.push(event);
        }
    }
    events
}

/// Splits alarms at the shift boundary: at or before `shift_at` they are
/// false positives by construction; the first one after it gives the
/// detection latency.
fn split_alarms(events: &[DriftEvent], shift_at: u64) -> (usize, Option<u64>) {
    let false_alarms = events.iter().filter(|e| e.at_query <= shift_at).count();
    let detection_latency = events
        .iter()
        .find(|e| e.at_query > shift_at)
        .map(|e| e.at_query - shift_at);
    (false_alarms, detection_latency)
}

/// Plays `spec` through fresh per-source databases and a self-calibrating
/// [`DriftMonitor`] with `config`; see [`StreamRunReport`].
pub fn run_stream(spec: PhasedStreamSpec, config: &DriftConfig) -> StreamRunReport {
    let events = play_stream(PhasedStream::new(spec), spec.seed, config);
    let shift_at = match spec.shift {
        ShiftClass::Stationary => spec.len as u64,
        _ => spec.shift_at as u64,
    };
    let (false_alarms, detection_latency) = split_alarms(&events, shift_at);
    StreamRunReport {
        spec,
        events,
        false_alarms,
        detection_latency,
    }
}

/// Outcome of playing one declarative [`StreamSpec`] through the monitor.
#[derive(Debug, Clone)]
pub struct SpecStreamReport {
    /// Every alarm, in stream order.
    pub events: Vec<DriftEvent>,
    /// Alarms at or before `shift_at` (for a stream declared stationary:
    /// every alarm) — false positives by construction.
    pub false_alarms: usize,
    /// Queries from `shift_at` to the first later alarm, when one fired.
    pub detection_latency: Option<u64>,
}

/// Plays a declarative stream spec through the monitor. `shift_at` is
/// where the caller knows the distribution moves (`None` = the stream is
/// stationary and every alarm is false). Synthesized pools make stream
/// construction fallible.
pub fn run_stream_spec(
    spec: &StreamSpec,
    shift_at: Option<usize>,
    config: &DriftConfig,
) -> Result<SpecStreamReport> {
    let events = play_stream(PhasedStream::from_spec(spec)?, spec.seed, config);
    let boundary = shift_at.unwrap_or(spec.len) as u64;
    let (false_alarms, detection_latency) = split_alarms(&events, boundary);
    Ok(SpecStreamReport {
        events,
        false_alarms,
        detection_latency,
    })
}

/// Quality/budget comparison of the four post-drift strategies.
#[derive(Debug, Clone)]
pub struct RetuneComparison {
    /// Post-shift workload time under the configuration tuned pre-shift.
    pub stale_time: f64,
    /// … under a from-scratch full-budget re-tune.
    pub full_time: f64,
    /// … under the warm-start half-budget re-tune.
    pub warm_time: f64,
    /// `warm_time / full_time` — ≤ 1.05 meets the ≤ 5 % acceptance bound.
    pub quality_ratio: f64,
    /// LLM tokens (prompt + completion) of the full re-tune.
    pub full_tokens: u64,
    /// … and of the warm-start re-tune.
    pub warm_tokens: u64,
    /// Virtual tuning time of the full re-tune.
    pub full_tuning_time: f64,
    /// … and of the warm-start re-tune.
    pub warm_tuning_time: f64,
    /// Post-shift workload time under the delta-prompt re-tune.
    pub delta_time: f64,
    /// LLM tokens (prompt + completion) of the delta-prompt re-tune.
    pub delta_tokens: u64,
    /// Virtual tuning time of the delta-prompt re-tune.
    pub delta_tuning_time: f64,
}

fn fresh_db(catalog: &lt_dbms::Catalog, seed: u64) -> SimDb {
    SimDb::new(
        Dbms::Postgres,
        catalog.clone(),
        Hardware::p3_2xlarge(),
        seed,
    )
}

fn apply(db: &mut SimDb, config: &Configuration) {
    db.apply_knobs(config);
    for spec in config.index_specs() {
        db.create_index(spec);
    }
}

fn measure(db: &mut SimDb, workload: &Workload) -> f64 {
    let mut total = Secs::ZERO;
    for q in &workload.queries {
        total += db.execute(&q.parsed, Secs::INFINITY).time;
    }
    total.as_f64()
}

/// The drifted workload of the comparison: the post-shift predicate
/// templates plus the back half of TPC-H — overlapping enough that the
/// stale configuration is not hopeless, shifted enough that re-tuning
/// has something to gain.
pub fn drifted_workload() -> Result<Workload> {
    let tpch = Benchmark::TpchSf1.load();
    let mut queries: Vec<(String, String)> = predicate_templates(Phase::After);
    for q in tpch.queries.iter().skip(tpch.queries.len() / 2) {
        queries.push((q.label.clone(), q.sql.clone()));
    }
    let pairs: Vec<(&str, String)> = queries
        .iter()
        .map(|(l, s)| (l.as_str(), s.clone()))
        .collect();
    Workload::from_sql("tpch-drifted", tpch.catalog, &pairs)
}

/// Runs the four-arm comparison for one seed; see [`RetuneComparison`].
pub fn compare_retune(seed: u64) -> Result<RetuneComparison> {
    let original = Benchmark::TpchSf1.load();
    let drifted = drifted_workload()?;
    let options = LambdaTuneOptions {
        seed: derive_seed(seed, 1),
        ..Default::default()
    };

    // Pre-shift tune on the original workload → the session's memory.
    let mut tune_db = fresh_db(&original.catalog, derive_seed(seed, 2));
    let llm = LlmClient::new(SimulatedLlm::new());
    let first = LambdaTune::new(options).tune(&mut tune_db, &original, &llm)?;
    let stale_config = first
        .best_config
        .clone()
        .ok_or_else(|| lt_common::LtError::Tuning("pre-shift tune found no config".into()))?;
    let memory = TuneMemory {
        prompt: first.prompt.clone(),
        best_script: stale_config.to_script(Dbms::Postgres, &original.catalog),
        options,
    };

    // Arm 1 — stale: keep running the old configuration.
    let measure_seed = derive_seed(seed, 3);
    let mut stale_db = fresh_db(&original.catalog, measure_seed);
    apply(&mut stale_db, &stale_config);
    let stale_time = measure(&mut stale_db, &drifted);

    // Arm 2 — full re-tune: from scratch at the full budget.
    let full_options = LambdaTuneOptions {
        seed: derive_seed(seed, 4),
        ..Default::default()
    };
    let mut full_db = fresh_db(&original.catalog, derive_seed(seed, 5));
    let full_llm = LlmClient::new(SimulatedLlm::new());
    let full = LambdaTune::new(full_options).tune(&mut full_db, &drifted, &full_llm)?;
    let full_config = full
        .best_config
        .clone()
        .ok_or_else(|| lt_common::LtError::Tuning("full re-tune found no config".into()))?;
    let mut full_measure_db = fresh_db(&original.catalog, measure_seed);
    apply(&mut full_measure_db, &full_config);
    let full_time = measure(&mut full_measure_db, &drifted);

    // Arm 3 — warm start: previous prompt + winner at half the budget.
    let mut warm_db = fresh_db(&original.catalog, derive_seed(seed, 6));
    let warm_llm = LlmClient::new(SimulatedLlm::new());
    let warm = retune(
        &mut warm_db,
        &drifted,
        &warm_llm,
        &memory,
        &RetuneOptions {
            seed: Some(derive_seed(seed, 7)),
            ..Default::default()
        },
        None,
    )?;
    let warm_config = warm
        .best_config
        .clone()
        .ok_or_else(|| lt_common::LtError::Tuning("warm re-tune found no config".into()))?;
    let mut warm_measure_db = fresh_db(&original.catalog, measure_seed);
    apply(&mut warm_measure_db, &warm_config);
    let warm_time = measure(&mut warm_measure_db, &drifted);

    // Arm 4 — delta prompt: a controlled repeat of arm 3 (same database
    // seed, same sampling seed, same budget) where the only change is the
    // prompt — the LLM sees a profile delta (reference vs drifted
    // workload) instead of the stale reference prompt, bounded to the
    // reference prompt's tokens. Any quality or budget movement is then
    // attributable to the delta prompt alone.
    let reference = LabeledProfile::from_workload(&original.catalog, &original);
    let current = LabeledProfile::from_workload(&original.catalog, &drifted);
    let delta = WorkloadDelta::between(&reference, &current);
    let mut delta_db = fresh_db(&original.catalog, derive_seed(seed, 6));
    let delta_llm = LlmClient::new(SimulatedLlm::new());
    let delta_result = retune(
        &mut delta_db,
        &drifted,
        &delta_llm,
        &memory,
        &RetuneOptions {
            seed: Some(derive_seed(seed, 7)),
            delta: Some(delta_prompt(&first.prompt, &delta)),
            ..Default::default()
        },
        None,
    )?;
    let delta_config = delta_result
        .best_config
        .clone()
        .ok_or_else(|| lt_common::LtError::Tuning("delta re-tune found no config".into()))?;
    let mut delta_measure_db = fresh_db(&original.catalog, measure_seed);
    apply(&mut delta_measure_db, &delta_config);
    let delta_time = measure(&mut delta_measure_db, &drifted);

    Ok(RetuneComparison {
        stale_time,
        full_time,
        warm_time,
        quality_ratio: warm_time / full_time,
        full_tokens: full.llm_usage.prompt_tokens + full.llm_usage.completion_tokens,
        warm_tokens: warm.llm_usage.prompt_tokens + warm.llm_usage.completion_tokens,
        full_tuning_time: full.tuning_time.as_f64(),
        warm_tuning_time: warm.tuning_time.as_f64(),
        delta_time,
        delta_tokens: delta_result.llm_usage.prompt_tokens
            + delta_result.llm_usage.completion_tokens,
        delta_tuning_time: delta_result.tuning_time.as_f64(),
    })
}
