//! Warm-start incremental re-tuning.
//!
//! After a drift alarm, the session does not start tuning from scratch:
//! the previous run left behind its exact prompt and its winning
//! configuration script ([`TuneMemory`]). Re-tuning re-enters the
//! `lambda-tune` pipeline with that script injected as candidate 0 and
//! (by default) the prompt reused verbatim, under a reduced candidate
//! and token budget ([`RetuneOptions::budget_fraction`]). The previous
//! winner therefore competes in the selector against the fresh samples:
//! if the old configuration still wins on the drifted workload, the
//! re-tune converges immediately; if not, the cheaper sample budget is
//! usually enough because the prompt already encodes the schema and
//! hardware context.

use lambda_tune::{LambdaTune, LambdaTuneOptions, TuneObserver, TuneResult, WarmStart};
use lt_common::{obs, Result};
use lt_dbms::TuningTarget;
use lt_llm::{LanguageModel, LlmClient};
use lt_workloads::Workload;
use std::sync::Arc;

/// What a finished tuning run leaves behind for its successor.
#[derive(Debug, Clone)]
pub struct TuneMemory {
    /// The exact prompt of the previous run ([`TuneResult::prompt`]).
    pub prompt: String,
    /// The previous winner, rendered back to a script.
    pub best_script: String,
    /// The options the previous run tuned under.
    pub options: LambdaTuneOptions,
}

/// Re-tune policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RetuneOptions {
    /// Fraction of the previous candidate/token budget to spend (0, 1].
    pub budget_fraction: f64,
    /// Reuse the previous prompt verbatim instead of rebuilding one from
    /// the drifted workload.
    pub reuse_prompt: bool,
    /// Seed override for the re-tune run; `None` keeps the previous seed
    /// (which would resample the previous run's candidates).
    pub seed: Option<u64>,
    /// Drift-aware delta prompt ([`crate::delta::delta_prompt`]). When
    /// set, it replaces the reused memory prompt — the sampling stays
    /// warm-started on the old winner, but the LLM is told what changed
    /// instead of being shown the stale reference prompt.
    pub delta: Option<String>,
}

impl Default for RetuneOptions {
    fn default() -> Self {
        RetuneOptions {
            budget_fraction: 0.5,
            reuse_prompt: true,
            seed: None,
            delta: None,
        }
    }
}

/// Scales the previous run's options down to the warm-start budget: the
/// candidate count (which is what the token and evaluation budgets scale
/// with) is multiplied by `fraction`, floored, and kept at ≥ 1 so the
/// seeded candidate always has at least one fresh challenger — except
/// when the previous run itself had only one candidate.
pub fn warm_options(
    prev: &LambdaTuneOptions,
    fraction: f64,
    seed: Option<u64>,
) -> LambdaTuneOptions {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut opts = *prev;
    opts.num_configs =
        ((prev.num_configs as f64 * fraction).floor() as usize).clamp(1, prev.num_configs.max(1));
    if let Some(budget) = prev.token_budget {
        opts.token_budget = Some(((budget as f64 * fraction).floor() as usize).max(1));
    }
    if let Some(seed) = seed {
        opts.seed = seed;
    }
    opts
}

/// Runs one warm-start re-tune of `workload` on `db`. The caller applies
/// the resulting best configuration; the pipeline itself only evaluates.
pub fn retune<D: TuningTarget + ?Sized, M: LanguageModel>(
    db: &mut D,
    workload: &Workload,
    llm: &LlmClient<M>,
    memory: &TuneMemory,
    opts: &RetuneOptions,
    observer: Option<Arc<dyn TuneObserver>>,
) -> Result<TuneResult> {
    let options = warm_options(&memory.options, opts.budget_fraction, opts.seed);
    let warm = WarmStart {
        prompt: opts
            .delta
            .clone()
            .or_else(|| opts.reuse_prompt.then(|| memory.prompt.clone())),
        seed_scripts: vec![memory.best_script.clone()],
    };
    let mut tuner = LambdaTune::new(options).with_warm_start(warm);
    if let Some(observer) = observer {
        tuner = tuner.with_observer(observer);
    }
    let mut span = obs::span_vt("drift.retune", db.now());
    obs::counter("drift.retunes", 1);
    let result = tuner.tune(db, workload, llm);
    span.vt_end(db.now());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::{Dbms, Hardware, SimDb};
    use lt_llm::SimulatedLlm;
    use lt_workloads::Benchmark;

    #[test]
    fn warm_options_halve_the_budgets() {
        let prev = LambdaTuneOptions {
            num_configs: 5,
            token_budget: Some(1000),
            seed: 7,
            ..Default::default()
        };
        let opts = warm_options(&prev, 0.5, Some(99));
        assert_eq!(opts.num_configs, 2);
        assert_eq!(opts.token_budget, Some(500));
        assert_eq!(opts.seed, 99);
        // Degenerate fractions stay valid.
        assert_eq!(warm_options(&prev, 0.0, None).num_configs, 1);
        assert_eq!(warm_options(&prev, 1.0, None).num_configs, 5);
        assert_eq!(warm_options(&prev, 1.0, None).seed, 7);
    }

    #[test]
    fn retune_spends_at_most_half_the_llm_budget() {
        let w = Benchmark::TpchSf1.load();
        let mut db = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 7);
        let llm = LlmClient::new(SimulatedLlm::new());
        let first = LambdaTune::default().tune(&mut db, &w, &llm).unwrap();
        let memory = TuneMemory {
            prompt: first.prompt.clone(),
            best_script: first
                .best_config
                .as_ref()
                .unwrap()
                .to_script(Dbms::Postgres, &w.catalog),
            options: LambdaTuneOptions::default(),
        };

        let mut db2 = SimDb::new(Dbms::Postgres, w.catalog.clone(), Hardware::p3_2xlarge(), 8);
        let llm2 = LlmClient::new(SimulatedLlm::new());
        let second = retune(
            &mut db2,
            &w,
            &llm2,
            &memory,
            &RetuneOptions {
                seed: Some(1234),
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert!(second.best_index.is_some());
        // 5 candidates → 2, one of them seeded: a single LLM call.
        assert_eq!(second.configs.len(), 2);
        assert_eq!(second.llm_usage.calls, 1);
        assert!(second.llm_usage.prompt_tokens <= first.llm_usage.prompt_tokens / 2);
        assert_eq!(second.prompt, first.prompt);
    }
}
