//! Delta prompts: re-tuning on *what changed*, not on a stale prompt.
//!
//! The blind warm restart ([`crate::retune`] with `reuse_prompt`) feeds
//! the LLM the previous run's prompt verbatim — cheap, but the model
//! then tunes for the *reference* workload, not the drifted one. The
//! delta prompt is the middle path: compare the reference profile
//! against the window the monitor fired on, and build a fresh prompt
//! that (a) carries over the old prompt's hardware context, (b) names
//! the structural movement — tables gained and lost, join edges gained
//! and lost, filter-shape churn, selectivity shift — and (c) lists join
//! columns with the *gained* edges first, so the model's limited index
//! budget lands on the joins the drift introduced. The rendered prompt
//! is hard-bounded to the old prompt's token count (trailing join lines
//! are dropped first, then delta narration), so a delta re-tune never
//! bills more prompt tokens than the blind restart it replaces.
//!
//! Deltas are computed over [`LabeledProfile`]s — the same feature space
//! as the monitor's hashed [`crate::Profile`]s (each label hashes to
//! exactly the monitor's feature, see
//! [`crate::profile::feature_labels`]), kept as strings because a prompt
//! must *name* tables and joins and a hash cannot.

use crate::profile::feature_labels;
use lt_dbms::stats::QueryPredicates;
use lt_dbms::Catalog;
use lt_llm::count_tokens;
use lt_workloads::Workload;
use std::collections::BTreeMap;

/// A frequency vector over feature *labels*; the delta-side twin of the
/// monitor's hashed [`crate::Profile`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabeledProfile {
    counts: BTreeMap<String, u64>,
}

impl LabeledProfile {
    /// Empty profile.
    pub fn new() -> LabeledProfile {
        LabeledProfile::default()
    }

    /// Reference profile of a workload: every query counted once.
    pub fn from_workload(catalog: &Catalog, workload: &Workload) -> LabeledProfile {
        let mut p = LabeledProfile::new();
        for q in &workload.queries {
            p.add_query(catalog, &lt_dbms::stats::extract(&q.parsed, catalog));
        }
        p
    }

    /// Counts one query's predicate analysis into the profile.
    pub fn add_query(&mut self, catalog: &Catalog, preds: &QueryPredicates) {
        for label in feature_labels(catalog, preds) {
            *self.counts.entry(label).or_insert(0) += 1;
        }
    }

    /// True when nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Labels with `prefix`, with counts, in sorted label order.
    fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counts
            .iter()
            .filter(move |(label, _)| label.starts_with(prefix))
            .map(|(label, &count)| (&label[prefix.len()..], count))
    }

    /// Count-weighted mean selectivity bucket of the `s:` features.
    fn mean_bucket(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0u64;
        for (bucket, count) in self.with_prefix("s:") {
            if let Ok(b) = bucket.parse::<i64>() {
                weighted += b as f64 * count as f64;
                total += count;
            }
        }
        if total == 0 {
            0.0
        } else {
            weighted / total as f64
        }
    }
}

/// Structural movement between a reference profile and the current one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadDelta {
    /// Table names present now but not in the reference.
    pub tables_gained: Vec<String>,
    /// Table names the current workload no longer touches.
    pub tables_lost: Vec<String>,
    /// Join edges (`a.x=b.y`, endpoints sorted) that appeared, with their
    /// current frequency, sorted by frequency descending (ties by name).
    pub joins_gained: Vec<(String, u64)>,
    /// Join edges that disappeared.
    pub joins_lost: Vec<String>,
    /// Join edges in both, with their *current* frequency, sorted by
    /// frequency descending (ties by name).
    pub joins_retained: Vec<(String, u64)>,
    /// Filter features (`table.column:shape`) that appeared.
    pub filters_gained: Vec<String>,
    /// Filter features that disappeared.
    pub filters_lost: Vec<String>,
    /// Mean selectivity-bucket movement, current − reference (positive =
    /// the workload got more selective).
    pub selectivity_shift: f64,
}

impl WorkloadDelta {
    /// Compares two labeled profiles feature-class by feature-class.
    pub fn between(reference: &LabeledProfile, current: &LabeledProfile) -> WorkloadDelta {
        let split = |prefix: &str| -> (Vec<String>, Vec<String>) {
            let gained = current
                .with_prefix(prefix)
                .filter(|(l, _)| !reference.counts.contains_key(&format!("{prefix}{l}")))
                .map(|(l, _)| l.to_string())
                .collect();
            let lost = reference
                .with_prefix(prefix)
                .filter(|(l, _)| !current.counts.contains_key(&format!("{prefix}{l}")))
                .map(|(l, _)| l.to_string())
                .collect();
            (gained, lost)
        };
        let (tables_gained, tables_lost) = split("t:");
        let (filters_gained, filters_lost) = split("f:");
        let mut joins_gained: Vec<(String, u64)> = current
            .with_prefix("j:")
            .filter(|(l, _)| !reference.counts.contains_key(&format!("j:{l}")))
            .map(|(l, c)| (l.to_string(), c))
            .collect();
        joins_gained.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let joins_lost: Vec<String> = reference
            .with_prefix("j:")
            .filter(|(l, _)| !current.counts.contains_key(&format!("j:{l}")))
            .map(|(l, _)| l.to_string())
            .collect();
        let mut joins_retained: Vec<(String, u64)> = current
            .with_prefix("j:")
            .filter(|(l, _)| reference.counts.contains_key(&format!("j:{l}")))
            .map(|(l, c)| (l.to_string(), c))
            .collect();
        joins_retained.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        WorkloadDelta {
            tables_gained,
            tables_lost,
            joins_gained,
            joins_lost,
            joins_retained,
            filters_gained,
            filters_lost,
            selectivity_shift: current.mean_bucket() - reference.mean_bucket(),
        }
    }

    /// True when nothing structural moved and the selectivity shift is
    /// negligible — a delta prompt would say nothing the old prompt does
    /// not, so callers should fall back to the blind warm restart.
    pub fn is_empty(&self) -> bool {
        self.tables_gained.is_empty()
            && self.tables_lost.is_empty()
            && self.joins_gained.is_empty()
            && self.joins_lost.is_empty()
            && self.filters_gained.is_empty()
            && self.filters_lost.is_empty()
            && self.selectivity_shift.abs() < 0.5
    }
}

/// Renders the delta re-tuning prompt; see the module docs. The result
/// is hard-bounded to `count_tokens(memory_prompt)`.
pub fn delta_prompt(memory_prompt: &str, delta: &WorkloadDelta) -> String {
    let budget = count_tokens(memory_prompt);

    // Carry over the old prompt's context the simulated model reads:
    // hardware lines and any params-only directive. The DBMS keyword
    // travels in the header below.
    let mut context: Vec<String> = Vec::new();
    for line in memory_prompt.lines() {
        let tl = line.trim().to_ascii_lowercase();
        if tl.starts_with("memory:")
            || tl.starts_with("cores:")
            || tl.contains("do not recommend index")
            || tl.contains("only system parameters")
        {
            context.push(line.trim().to_string());
        }
    }
    let dbms = if memory_prompt.to_ascii_lowercase().contains("mysql") {
        "mysql"
    } else {
        "postgres"
    };

    let mut narration: Vec<String> = Vec::new();
    let list = |items: &[String]| items.join(", ");
    if !delta.tables_gained.is_empty() {
        narration.push(format!(
            "tables gained since tuning: {}",
            list(&delta.tables_gained)
        ));
    }
    if !delta.tables_lost.is_empty() {
        narration.push(format!(
            "tables no longer queried: {}",
            list(&delta.tables_lost)
        ));
    }
    if !delta.joins_lost.is_empty() {
        narration.push(format!("join edges dropped: {}", list(&delta.joins_lost)));
    }
    if !delta.filters_gained.is_empty() {
        narration.push(format!(
            "new filter shapes: {}",
            list(&delta.filters_gained)
        ));
    }
    if !delta.filters_lost.is_empty() {
        narration.push(format!(
            "filter shapes dropped: {}",
            list(&delta.filters_lost)
        ));
    }
    if delta.selectivity_shift.abs() >= 0.5 {
        narration.push(format!(
            "selectivity moved {:+.1} log2 buckets",
            delta.selectivity_shift
        ));
    }

    // Join lines drive the model's index picks, first-listed first: rank
    // every edge the current workload still exercises — gained and
    // retained alike — by its frequency in that workload, so the heaviest
    // joins get indexed first. Ties favour gained edges (they are the news
    // the stale prompt cannot convey).
    let join_line =
        |edge: &str| -> Option<String> { edge.split_once('=').map(|(a, b)| format!("{a}: {b}")) };
    let mut ranked: Vec<(&str, u64, bool)> = delta
        .joins_gained
        .iter()
        .map(|(e, c)| (e.as_str(), *c, true))
        .chain(
            delta
                .joins_retained
                .iter()
                .map(|(e, c)| (e.as_str(), *c, false)),
        )
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(b.0)));
    let mut joins: Vec<String> = ranked.iter().filter_map(|(e, _, _)| join_line(e)).collect();

    // Keep the head of the prompt short and load-bearing: the DBMS
    // keyword and the hardware context must survive even a final
    // tail-truncation at a tiny budget.
    let render = |narration: &[String], joins: &[String]| -> String {
        let mut p = format!("{dbms} workload drifted; re-tune for the current workload.\n");
        for line in &context {
            p.push_str(line);
            p.push('\n');
        }
        for line in narration {
            p.push_str(line);
            p.push('\n');
        }
        for line in joins {
            p.push_str(line);
            p.push('\n');
        }
        p
    };

    // Enforce the token bound by dropping the least important trailing
    // content: join lines from the back, then narration.
    let mut prompt = render(&narration, &joins);
    while count_tokens(&prompt) > budget && !joins.is_empty() {
        joins.pop();
        prompt = render(&narration, &joins);
    }
    while count_tokens(&prompt) > budget && !narration.is_empty() {
        narration.pop();
        prompt = render(&narration, &joins);
    }
    if count_tokens(&prompt) > budget {
        prompt = lt_llm::truncate_to_tokens(&prompt, budget).to_string();
    }
    prompt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::drifted_workload;
    use lt_workloads::Benchmark;

    fn profiles() -> (LabeledProfile, LabeledProfile) {
        let tpch = Benchmark::TpchSf1.load();
        let drifted = drifted_workload().unwrap();
        let reference = LabeledProfile::from_workload(&tpch.catalog, &tpch);
        let current = LabeledProfile::from_workload(&tpch.catalog, &drifted);
        (reference, current)
    }

    #[test]
    fn delta_names_structural_movement() {
        let (reference, current) = profiles();
        let delta = WorkloadDelta::between(&reference, &current);
        assert!(!delta.is_empty());
        // The drifted workload is a lineitem/orders template pool plus
        // half of TPC-H: whole tables drop out of the reference support.
        assert!(!delta.tables_lost.is_empty(), "{delta:?}");
        assert!(!delta.joins_lost.is_empty(), "{delta:?}");
        assert!(delta
            .joins_retained
            .iter()
            .any(|(e, _)| e.contains("l_orderkey")));
        // Identical profiles produce an empty delta.
        let none = WorkloadDelta::between(&reference, &reference);
        assert!(none.is_empty(), "{none:?}");
    }

    #[test]
    fn delta_prompt_never_exceeds_the_memory_prompt_budget() {
        let (reference, current) = profiles();
        let delta = WorkloadDelta::between(&reference, &current);
        let memory_prompt = "Recommend a postgres configuration.\nmemory: 61GB\ncores: 8\n\
             lineitem.l_orderkey: orders.o_orderkey\n";
        let prompt = delta_prompt(memory_prompt, &delta);
        assert!(count_tokens(&prompt) <= count_tokens(memory_prompt));
        // The hardware context survives the rebuild.
        assert!(prompt.contains("memory: 61GB"), "{prompt}");
        assert!(prompt.contains("cores: 8"), "{prompt}");
    }

    #[test]
    fn join_lines_rank_by_current_frequency_with_gained_winning_ties() {
        let mut reference = LabeledProfile::new();
        let mut current = LabeledProfile::new();
        reference
            .counts
            .insert("j:lineitem.l_orderkey=orders.o_orderkey".to_string(), 9);
        current
            .counts
            .insert("j:lineitem.l_orderkey=orders.o_orderkey".to_string(), 9);
        // A heavy gained edge outranks the retained edge; a light gained
        // edge falls behind it. At equal weight the gained edge would win.
        current
            .counts
            .insert("j:part.p_partkey=partsupp.ps_partkey".to_string(), 20);
        current
            .counts
            .insert("j:customer.c_custkey=orders.o_custkey".to_string(), 1);
        let delta = WorkloadDelta::between(&reference, &current);
        let prompt = delta_prompt(
            &format!("memory: 61GB\ncores: 8\n{}", "pad ".repeat(200)),
            &delta,
        );
        let heavy_gained = prompt
            .find("part.p_partkey: partsupp.ps_partkey")
            .expect("heavy gained join line present");
        let retained = prompt
            .find("lineitem.l_orderkey: orders.o_orderkey")
            .expect("retained join line present");
        let light_gained = prompt
            .find("customer.c_custkey: orders.o_custkey")
            .expect("light gained join line present");
        assert!(
            heavy_gained < retained && retained < light_gained,
            "join lines must rank by current frequency:\n{prompt}"
        );
    }
}
