//! Streaming workload profiles: feature-hashed sketches of what a session
//! is actually executing.
//!
//! Each executed query is reduced to a small set of `u64` features:
//!
//! - `t:<table name>` — one per referenced table,
//! - `j:<a.x>=<b.y>` — one per join edge, endpoint names sorted so the
//!   edge hashes identically regardless of parse order,
//! - `f:<t.col>:<shape>` — one per filter term: the predicate histogram's
//!   axis (which column is filtered, with which shape — equality, range,
//!   `IN`, …),
//! - `s:<bucket>` — the query's estimated filter selectivity (product of
//!   per-table estimates from [`lt_dbms::stats::Estimator`]) bucketed on
//!   a log₂ scale.
//!
//! Features hash *names*, not catalog ids, so profiles from different
//! catalogs (a TPC-H session suddenly receiving TPC-DS queries) land in
//! one comparable space. A [`Profile`] is a multiset of those features —
//! a frequency vector — with counts in a `BTreeMap` so that iteration
//! order, and therefore every floating-point divergence sum downstream,
//! is deterministic.

use lt_common::{hash_one, Secs};
use lt_dbms::stats::{Estimator, FilterKind, QueryPredicates};
use lt_dbms::Catalog;
use lt_workloads::Workload;
use std::collections::BTreeMap;

/// Deepest selectivity bucket: anything rarer than 2⁻⁴⁰ saturates here.
const MAX_SELECTIVITY_BUCKET: i64 = 40;

/// One executed query, reduced to the drift monitor's inputs.
#[derive(Debug, Clone)]
pub struct QueryObservation {
    /// Hashed features; see the module docs.
    pub features: Vec<u64>,
    /// Query fingerprint (`lt_dbms::db::query_tag`) identifying repeats of
    /// the same statement for per-query latency baselines.
    pub tag: u64,
    /// Virtual execution latency.
    pub latency: Secs,
    /// Whether the plan was served from the plan cache, when known.
    pub plan_cache_hit: Option<bool>,
}

impl QueryObservation {
    /// Builds the observation for one executed query.
    pub fn new(
        catalog: &Catalog,
        preds: &QueryPredicates,
        tag: u64,
        latency: Secs,
        plan_cache_hit: Option<bool>,
    ) -> QueryObservation {
        QueryObservation {
            features: features(catalog, preds),
            tag,
            latency,
            plan_cache_hit,
        }
    }
}

/// Hashes one query's predicate analysis into profile features.
pub fn features(catalog: &Catalog, preds: &QueryPredicates) -> Vec<u64> {
    feature_labels(catalog, preds)
        .iter()
        .map(hash_one)
        .collect()
}

/// The human-readable label strings behind [`features`] (each feature is
/// exactly `hash_one` of its label, in the same order). The delta-prompt
/// builder works on labels — it must name tables and joins to the LLM,
/// which a hash cannot — while the monitor's profiles stay hashed.
pub fn feature_labels(catalog: &Catalog, preds: &QueryPredicates) -> Vec<String> {
    let mut out = Vec::with_capacity(preds.tables.len() + preds.joins.len() + 1);
    for &table in &preds.tables {
        out.push(format!("t:{}", catalog.table(table).name));
    }
    for join in &preds.joins {
        let name = |col| {
            let c = catalog.column(col);
            format!("{}.{}", catalog.table(c.table).name, c.name)
        };
        let (mut a, mut b) = (name(join.left), name(join.right));
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        out.push(format!("j:{a}={b}"));
    }
    for (table, terms) in &preds.filters {
        let table = &catalog.table(*table).name;
        for term in terms {
            let column = &catalog.column(term.column).name;
            out.push(format!("f:{table}.{column}:{}", filter_shape(term.kind)));
        }
    }
    out.push(format!("s:{}", selectivity_bucket(catalog, preds)));
    out
}

/// Stable name of a filter shape — the predicate histogram's axis. `IN`
/// lists collapse to one shape regardless of length, so a drifting list
/// size alone does not move the frequency vector.
fn filter_shape(kind: FilterKind) -> &'static str {
    match kind {
        FilterKind::Equality => "eq",
        FilterKind::Inequality => "ne",
        FilterKind::Range => "range",
        FilterKind::Between => "between",
        FilterKind::LikePrefix => "like_prefix",
        FilterKind::LikeContains => "like_contains",
        FilterKind::InList(_) => "in_list",
        FilterKind::IsNull => "is_null",
        FilterKind::IsNotNull => "is_not_null",
        FilterKind::SemiJoin => "semi_join",
        FilterKind::AntiJoin => "anti_join",
    }
}

/// Log₂ bucket of the query's estimated combined filter selectivity.
/// Estimation is seeded with 0: the bucket must depend only on the query
/// shape and schema statistics, never on a session's noise seed.
fn selectivity_bucket(catalog: &Catalog, preds: &QueryPredicates) -> i64 {
    let est = Estimator::new(catalog, 0);
    let mut selectivity = 1.0f64;
    for terms in preds.filters.values() {
        selectivity *= est.estimated_table_selectivity(terms);
    }
    if selectivity <= 0.0 {
        return MAX_SELECTIVITY_BUCKET;
    }
    (-selectivity.log2())
        .floor()
        .clamp(0.0, MAX_SELECTIVITY_BUCKET as f64) as i64
}

/// A frequency vector over hashed features; see the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Profile {
    /// Empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Reference profile of a tuning workload: every query counted once.
    pub fn from_workload(catalog: &Catalog, workload: &Workload) -> Profile {
        let mut p = Profile::new();
        for q in &workload.queries {
            p.add(&features(
                catalog,
                &lt_dbms::stats::extract(&q.parsed, catalog),
            ));
        }
        p
    }

    /// Counts one query's features into the profile.
    pub fn add(&mut self, features: &[u64]) {
        for &f in features {
            *self.counts.entry(f).or_insert(0) += 1;
        }
        self.total += features.len() as u64;
    }

    /// Removes one query's features (sliding-window eviction). Counts
    /// never go negative: removing features that were never added is a
    /// logic error upstream and saturates at zero.
    pub fn remove(&mut self, features: &[u64]) {
        for &f in features {
            if let Some(c) = self.counts.get_mut(&f) {
                *c -= 1;
                self.total -= 1;
                if *c == 0 {
                    self.counts.remove(&f);
                }
            }
        }
    }

    /// Total feature count (multiset size).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct features.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Content digest of the frequency vector. `BTreeMap` iterates in
    /// sorted key order, so two profiles built by any add/remove history
    /// that lands on the same counts digest identically — this keys the
    /// fleet tuning cache on workload *shape* rather than raw SQL text.
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = lt_common::FxHasher::new();
        h.write_u64(self.total);
        for (&feature, &count) in &self.counts {
            h.write_u64(feature);
            h.write_u64(count);
        }
        h.finish()
    }

    /// Serializes the frequency vector for the write-ahead session log.
    /// Feature hashes are full-range `u64`s, and the JSON layer stores
    /// integers as `i64`, so keys are written as 16-hex-digit strings —
    /// the same rendering `Fingerprint` uses.
    pub fn to_json(&self) -> lt_common::json::Value {
        let counts: Vec<(String, lt_common::json::Value)> = self
            .counts
            .iter()
            .map(|(&feature, &count)| (format!("{feature:016x}"), (count as i64).into()))
            .collect();
        lt_common::json::Value::Object(vec![(
            "counts".to_string(),
            lt_common::json::Value::Object(counts),
        )])
    }

    /// Rebuilds a profile written by [`Profile::to_json`]. Returns `None`
    /// on any malformed key or count; the total is re-derived from the
    /// counts (every counted feature occurrence contributes exactly 1).
    pub fn from_json(doc: &lt_common::json::Value) -> Option<Profile> {
        let mut p = Profile::new();
        for (key, value) in doc.get("counts")?.as_object()? {
            let feature = u64::from_str_radix(key, 16).ok()?;
            let count = value.as_i64()?;
            if count <= 0 {
                return None;
            }
            p.counts.insert(feature, count as u64);
            p.total += count as u64;
        }
        Some(p)
    }

    /// Jensen–Shannon divergence (base 2, in `[0, 1]`) between the two
    /// normalized frequency vectors. Symmetric, finite even for disjoint
    /// supports, and deterministic: both maps iterate in sorted key order,
    /// so the summation order never depends on insertion history.
    pub fn jensen_shannon(&self, other: &Profile) -> f64 {
        if self.is_empty() || other.is_empty() {
            return if self.is_empty() && other.is_empty() {
                0.0
            } else {
                1.0
            };
        }
        let mut iter_a = self.counts.iter().peekable();
        let mut iter_b = other.counts.iter().peekable();
        let (na, nb) = (self.total as f64, other.total as f64);
        let mut sum = 0.0;
        let mut term = |p: f64, q: f64| {
            let m = 0.5 * (p + q);
            if p > 0.0 {
                sum += 0.5 * p * (p / m).log2();
            }
            if q > 0.0 {
                sum += 0.5 * q * (q / m).log2();
            }
        };
        loop {
            match (iter_a.peek(), iter_b.peek()) {
                (Some(&(ka, &ca)), Some(&(kb, &cb))) => {
                    if ka < kb {
                        term(ca as f64 / na, 0.0);
                        iter_a.next();
                    } else if kb < ka {
                        term(0.0, cb as f64 / nb);
                        iter_b.next();
                    } else {
                        term(ca as f64 / na, cb as f64 / nb);
                        iter_a.next();
                        iter_b.next();
                    }
                }
                (Some(&(_, &ca)), None) => {
                    term(ca as f64 / na, 0.0);
                    iter_a.next();
                }
                (None, Some(&(_, &cb))) => {
                    term(0.0, cb as f64 / nb);
                    iter_b.next();
                }
                (None, None) => break,
            }
        }
        // Clamp the accumulated rounding error back into the JSD range.
        sum.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dbms::stats::extract;
    use lt_workloads::Benchmark;

    #[test]
    fn jsd_is_zero_on_identical_and_one_on_disjoint() {
        let mut a = Profile::new();
        a.add(&[1, 2, 3]);
        assert_eq!(a.jensen_shannon(&a.clone()), 0.0);
        let mut b = Profile::new();
        b.add(&[4, 5, 6]);
        assert!((a.jensen_shannon(&b) - 1.0).abs() < 1e-12);
        // Symmetry.
        assert_eq!(a.jensen_shannon(&b), b.jensen_shannon(&a));
    }

    #[test]
    fn add_then_remove_restores_the_profile() {
        let mut p = Profile::new();
        p.add(&[1, 1, 2]);
        let snapshot = p.clone();
        p.add(&[2, 3]);
        p.remove(&[2, 3]);
        assert_eq!(p, snapshot);
        assert_eq!(p.total(), 3);
        assert_eq!(p.distinct(), 2);
    }

    #[test]
    fn features_hash_names_not_ids() {
        // The same query shape on SF-1 and SF-10 catalogs (identical names,
        // different stats scale) must produce identical table/join features.
        let sf1 = Benchmark::TpchSf1.load();
        let sf10 = Benchmark::TpchSf10.load();
        let q = sf1.by_label("q3").expect("q3 exists");
        let f1 = features(&sf1.catalog, &extract(&q.parsed, &sf1.catalog));
        let f10 = features(&sf10.catalog, &extract(&q.parsed, &sf10.catalog));
        // All but the (stats-dependent) selectivity bucket must agree.
        assert_eq!(f1[..f1.len() - 1], f10[..f10.len() - 1]);
    }

    #[test]
    fn digest_depends_on_counts_not_history() {
        let mut a = Profile::new();
        a.add(&[1, 2]);
        a.add(&[2, 3]);
        let mut b = Profile::new();
        b.add(&[3, 2, 2, 1]); // same multiset, different insertion history
        assert_eq!(a.digest(), b.digest());
        let mut c = b.clone();
        c.add(&[1]);
        assert_ne!(a.digest(), c.digest());
        c.remove(&[1]);
        assert_eq!(a.digest(), c.digest(), "remove restores the digest");
        assert_eq!(Profile::new().digest(), Profile::default().digest());
    }

    #[test]
    fn profile_json_round_trips_exactly() {
        let tpch = Benchmark::TpchSf1.load();
        let p = Profile::from_workload(&tpch.catalog, &tpch);
        let back = Profile::from_json(&p.to_json()).expect("round trip");
        assert_eq!(back, p);
        assert_eq!(back.digest(), p.digest());
        assert_eq!(back.total(), p.total());
        // Empty profile round-trips too (cold-start recovery path).
        let empty = Profile::new();
        assert_eq!(Profile::from_json(&empty.to_json()).unwrap(), empty);
        // Malformed documents are rejected, not mis-parsed.
        assert!(Profile::from_json(&lt_common::json::Value::Null).is_none());
    }

    #[test]
    fn tpch_and_tpcds_reference_profiles_diverge() {
        let tpch = Benchmark::TpchSf1.load();
        let tpcds = Benchmark::TpcdsSf1.load();
        let a = Profile::from_workload(&tpch.catalog, &tpch);
        let b = Profile::from_workload(&tpcds.catalog, &tpcds);
        let d = a.jensen_shannon(&b);
        assert!(d > 0.5, "cross-benchmark divergence {d} too low");
        assert!(a.jensen_shannon(&a.clone()) < 1e-12);
    }
}
