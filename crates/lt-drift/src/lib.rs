//! Online workload-drift detection and warm-start re-tuning.
//!
//! λ-Tune (the paper) tunes a system once, for a fixed workload. This
//! crate closes the loop for a long-running service: each session keeps a
//! streaming [`Profile`] of what it actually executes, a [`DriftMonitor`]
//! watches that stream with three deterministic detectors (frequency JSD,
//! plan-cache hit-rate collapse, Page–Hinkley latency change-point), and
//! on an alarm the session re-enters the tuning pipeline *warm*: the
//! previous prompt is reused verbatim and the previous winner competes as
//! candidate 0 under a reduced budget ([`retune`]).
//!
//! The detectors are pure arithmetic over sorted maps — no wall-clock, no
//! randomized hashing — so identical observation sequences yield
//! byte-identical [`DriftEvent`]s on any machine or thread count, which
//! is what lets `drift_bench` results go through the CI determinism gate.

pub mod delta;
pub mod detect;
pub mod harness;
pub mod profile;
pub mod retune;

pub use delta::{delta_prompt, LabeledProfile, WorkloadDelta};
pub use detect::{Detector, DriftConfig, DriftEvent, DriftMonitor, DriftScores};
pub use harness::{
    compare_retune, drifted_workload, run_stream, run_stream_spec, RetuneComparison,
    SpecStreamReport, StreamRunReport,
};
pub use profile::{feature_labels, features, Profile, QueryObservation};
pub use retune::{retune, warm_options, RetuneOptions, TuneMemory};
