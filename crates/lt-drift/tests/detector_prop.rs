//! Seeded property suite for the drift detectors (ISSUE 5 acceptance
//! bounds): zero false alarms on long stationary streams at default
//! thresholds, bounded detection latency for every injected shift class,
//! and byte-identical replay.

use lt_drift::{compare_retune, run_stream, run_stream_spec, DriftConfig};
use lt_synth::{PhaseSpec, PhasedStreamSpec, PoolSpec, ShiftClass, StreamSpec, WorkloadSpec};

const SEEDS: [u64; 3] = [42, 7, 1234];

/// The acceptance bound: every shift class must alarm within this many
/// queries of the shift point.
const DETECTION_BOUND: u64 = 500;

#[test]
fn stationary_10k_stream_has_zero_false_alarms() {
    for seed in SEEDS {
        let report = run_stream(
            PhasedStreamSpec {
                shift: ShiftClass::Stationary,
                shift_at: usize::MAX,
                len: 10_000,
                seed,
            },
            &DriftConfig::default(),
        );
        assert!(
            report.events.is_empty(),
            "seed {seed}: false alarms {:?}",
            report.events
        );
    }
}

#[test]
fn every_shift_class_is_detected_within_the_bound() {
    for shift in ShiftClass::shifted() {
        for seed in SEEDS {
            let report = run_stream(
                PhasedStreamSpec {
                    shift,
                    shift_at: 600,
                    len: 1_400,
                    seed,
                },
                &DriftConfig::default(),
            );
            assert_eq!(
                report.false_alarms, 0,
                "{shift:?} seed {seed}: pre-shift alarms {:?}",
                report.events
            );
            let latency = report
                .detection_latency
                .unwrap_or_else(|| panic!("{shift:?} seed {seed}: never detected"));
            assert!(
                latency <= DETECTION_BOUND,
                "{shift:?} seed {seed}: detected after {latency} > {DETECTION_BOUND} queries"
            );
        }
    }
}

/// The delta-prompt re-tune is property-bounded against the blind warm
/// restart: never worse on the drifted workload, never more tokens, never
/// more virtual tuning time. The delta prompt is bounded to the memory
/// prompt's token count by construction, so the token half is structural;
/// this pins the quality half per seed.
#[test]
fn delta_prompt_retune_matches_blind_warm_restart_at_lower_cost() {
    for seed in SEEDS {
        let c = compare_retune(seed).unwrap();
        assert!(
            c.delta_time <= c.warm_time,
            "seed {seed}: delta re-tune regressed quality ({} > {})",
            c.delta_time,
            c.warm_time
        );
        assert!(
            c.delta_tokens <= c.warm_tokens,
            "seed {seed}: delta re-tune spent more tokens ({} > {})",
            c.delta_tokens,
            c.warm_tokens
        );
        assert!(
            c.delta_tuning_time <= c.warm_tuning_time,
            "seed {seed}: delta re-tune took longer ({} > {})",
            c.delta_tuning_time,
            c.warm_tuning_time
        );
    }
}

/// A declarative stream whose only pool is a synthesized workload plays
/// through the monitor like any benchmark stream: stationary synthesized
/// traffic raises no alarms, and replay is byte-identical.
#[test]
fn synthesized_stationary_stream_has_zero_false_alarms() {
    let spec = StreamSpec {
        len: 1_000,
        seed: 42,
        phases: vec![PhaseSpec {
            at: 0,
            major: PoolSpec::Synth(WorkloadSpec {
                queries: 32,
                seed: 7,
                ..WorkloadSpec::default()
            }),
            minor: None,
        }],
    };
    let a = run_stream_spec(&spec, None, &DriftConfig::default()).unwrap();
    assert!(
        a.events.is_empty(),
        "stationary synthesized stream alarmed: {:?}",
        a.events
    );
    assert_eq!(a.false_alarms, 0);
    let b = run_stream_spec(&spec, None, &DriftConfig::default()).unwrap();
    assert_eq!(a.events, b.events);
}

#[test]
fn same_seed_replays_byte_identical_events() {
    let spec = PhasedStreamSpec {
        shift: ShiftClass::MixShift,
        shift_at: 400,
        len: 900,
        seed: 42,
    };
    let a = run_stream(spec, &DriftConfig::default());
    let b = run_stream(spec, &DriftConfig::default());
    assert_eq!(a.events, b.events);
    assert!(!a.events.is_empty());
}
