//! Seeded property suite for the drift detectors (ISSUE 5 acceptance
//! bounds): zero false alarms on long stationary streams at default
//! thresholds, bounded detection latency for every injected shift class,
//! and byte-identical replay.

use lt_drift::{run_stream, DriftConfig};
use lt_workloads::{PhasedStreamSpec, ShiftClass};

const SEEDS: [u64; 3] = [42, 7, 1234];

/// The acceptance bound: every shift class must alarm within this many
/// queries of the shift point.
const DETECTION_BOUND: u64 = 500;

#[test]
fn stationary_10k_stream_has_zero_false_alarms() {
    for seed in SEEDS {
        let report = run_stream(
            PhasedStreamSpec {
                shift: ShiftClass::Stationary,
                shift_at: usize::MAX,
                len: 10_000,
                seed,
            },
            &DriftConfig::default(),
        );
        assert!(
            report.events.is_empty(),
            "seed {seed}: false alarms {:?}",
            report.events
        );
    }
}

#[test]
fn every_shift_class_is_detected_within_the_bound() {
    for shift in ShiftClass::shifted() {
        for seed in SEEDS {
            let report = run_stream(
                PhasedStreamSpec {
                    shift,
                    shift_at: 600,
                    len: 1_400,
                    seed,
                },
                &DriftConfig::default(),
            );
            assert_eq!(
                report.false_alarms, 0,
                "{shift:?} seed {seed}: pre-shift alarms {:?}",
                report.events
            );
            let latency = report
                .detection_latency
                .unwrap_or_else(|| panic!("{shift:?} seed {seed}: never detected"));
            assert!(
                latency <= DETECTION_BOUND,
                "{shift:?} seed {seed}: detected after {latency} > {DETECTION_BOUND} queries"
            );
        }
    }
}

#[test]
fn same_seed_replays_byte_identical_events() {
    let spec = PhasedStreamSpec {
        shift: ShiftClass::MixShift,
        shift_at: 400,
        len: 900,
        seed: 42,
    };
    let a = run_stream(spec, &DriftConfig::default());
    let b = run_stream(spec, &DriftConfig::default());
    assert_eq!(a.events, b.events);
    assert!(!a.events.is_empty());
}
