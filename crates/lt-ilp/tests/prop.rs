//! Randomized property tests: the branch-and-bound solver is exact on
//! random small instances (checked against brute force) and its solutions
//! are always feasible. Cases come from a seeded `lt_common::Rng`.

use lt_common::{seeded_rng, Rng};
use lt_ilp::{solve, Ilp, SolveOptions};

const CASES: usize = 64;

#[derive(Debug, Clone)]
struct Instance {
    objective: Vec<f64>,
    knapsacks: Vec<(Vec<f64>, f64)>,
    implications: Vec<(usize, usize)>,
    conflicts: Vec<(usize, usize)>,
}

fn instance(rng: &mut Rng, max_vars: usize) -> Instance {
    let n = rng.gen_range(2..=max_vars);
    let objective: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..10.0)).collect();
    let knapsacks: Vec<(Vec<f64>, f64)> = (0..rng.gen_range(0..3usize))
        .map(|_| {
            let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
            (weights, rng.gen_range(1.0..10.0))
        })
        .collect();
    let pairs = |rng: &mut Rng| -> Vec<(usize, usize)> {
        (0..rng.gen_range(0..3usize))
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|(a, b)| a != b)
            .collect()
    };
    let implications = pairs(rng);
    let conflicts = pairs(rng);
    Instance {
        objective,
        knapsacks,
        implications,
        conflicts,
    }
}

fn build(inst: &Instance) -> Ilp {
    let n = inst.objective.len();
    let mut ilp = Ilp::new(n);
    for (i, c) in inst.objective.iter().enumerate() {
        ilp.set_objective(i, *c).unwrap();
    }
    for (weights, rhs) in &inst.knapsacks {
        let coeffs: Vec<(usize, f64)> = weights.iter().enumerate().map(|(i, w)| (i, *w)).collect();
        ilp.add_le(&coeffs, *rhs).unwrap();
    }
    for (a, b) in &inst.implications {
        ilp.add_implication(*a, *b).unwrap();
    }
    for (a, b) in &inst.conflicts {
        ilp.add_conflict(*a, *b).unwrap();
    }
    ilp
}

fn brute_force(ilp: &Ilp) -> f64 {
    let n = ilp.num_vars();
    let mut best = f64::NEG_INFINITY;
    for mask in 0u64..(1 << n) {
        let values: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        if ilp.is_feasible(&values) {
            best = best.max(ilp.objective_value(&values));
        }
    }
    best
}

/// The solver matches exhaustive search on every random instance.
#[test]
fn solver_is_exact() {
    let mut rng = seeded_rng(0x11);
    for _ in 0..CASES {
        let inst = instance(&mut rng, 9);
        let ilp = build(&inst);
        let solution = solve(&ilp, SolveOptions::default()).expect("all-false is feasible");
        assert!(solution.optimal);
        let expected = brute_force(&ilp);
        assert!(
            (solution.objective - expected).abs() < 1e-9,
            "solver {} vs brute force {expected}",
            solution.objective
        );
    }
}

/// Returned assignments always satisfy every constraint.
#[test]
fn solutions_are_feasible() {
    let mut rng = seeded_rng(0x12);
    for _ in 0..CASES {
        let inst = instance(&mut rng, 10);
        let ilp = build(&inst);
        let solution = solve(&ilp, SolveOptions::default()).unwrap();
        assert!(ilp.is_feasible(&solution.values));
        assert!((ilp.objective_value(&solution.values) - solution.objective).abs() < 1e-9);
    }
}

/// Tightening the budget never increases the optimum (monotonicity).
#[test]
fn knapsack_monotonicity() {
    let mut rng = seeded_rng(0x13);
    for _ in 0..CASES {
        let n = rng.gen_range(3..8usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..10.0)).collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..5.0)).collect();
        let budget = rng.gen_range(1.0..10.0);
        let mut loose = Ilp::new(n);
        let mut tight = Ilp::new(n);
        for (i, &v) in values.iter().enumerate() {
            loose.set_objective(i, v).unwrap();
            tight.set_objective(i, v).unwrap();
        }
        let coeffs: Vec<(usize, f64)> = (0..n).map(|i| (i, weights[i])).collect();
        loose.add_le(&coeffs, budget).unwrap();
        tight.add_le(&coeffs, budget / 2.0).unwrap();
        let a = solve(&loose, SolveOptions::default()).unwrap().objective;
        let b = solve(&tight, SolveOptions::default()).unwrap().objective;
        assert!(b <= a + 1e-9);
    }
}
