//! Property-based tests: the branch-and-bound solver is exact on random
//! small instances (checked against brute force) and its solutions are
//! always feasible.

use lt_ilp::{solve, Ilp, SolveOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Instance {
    objective: Vec<f64>,
    knapsacks: Vec<(Vec<f64>, f64)>,
    implications: Vec<(usize, usize)>,
    conflicts: Vec<(usize, usize)>,
}

fn instance(max_vars: usize) -> impl Strategy<Value = Instance> {
    (2..=max_vars).prop_flat_map(|n| {
        let objective = proptest::collection::vec(-5.0f64..10.0, n);
        let knapsacks = proptest::collection::vec(
            (proptest::collection::vec(0.0f64..5.0, n), 1.0f64..10.0),
            0..3,
        );
        let pair = (0..n, 0..n);
        let implications = proptest::collection::vec(pair.clone(), 0..3);
        let conflicts = proptest::collection::vec(pair, 0..3);
        (objective, knapsacks, implications, conflicts).prop_map(
            |(objective, knapsacks, implications, conflicts)| Instance {
                objective,
                knapsacks,
                implications: implications.into_iter().filter(|(a, b)| a != b).collect(),
                conflicts: conflicts.into_iter().filter(|(a, b)| a != b).collect(),
            },
        )
    })
}

fn build(inst: &Instance) -> Ilp {
    let n = inst.objective.len();
    let mut ilp = Ilp::new(n);
    for (i, c) in inst.objective.iter().enumerate() {
        ilp.set_objective(i, *c).unwrap();
    }
    for (weights, rhs) in &inst.knapsacks {
        let coeffs: Vec<(usize, f64)> =
            weights.iter().enumerate().map(|(i, w)| (i, *w)).collect();
        ilp.add_le(&coeffs, *rhs).unwrap();
    }
    for (a, b) in &inst.implications {
        ilp.add_implication(*a, *b).unwrap();
    }
    for (a, b) in &inst.conflicts {
        ilp.add_conflict(*a, *b).unwrap();
    }
    ilp
}

fn brute_force(ilp: &Ilp) -> f64 {
    let n = ilp.num_vars();
    let mut best = f64::NEG_INFINITY;
    for mask in 0u64..(1 << n) {
        let values: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        if ilp.is_feasible(&values) {
            best = best.max(ilp.objective_value(&values));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver matches exhaustive search on every random instance.
    #[test]
    fn solver_is_exact(inst in instance(9)) {
        let ilp = build(&inst);
        let solution = solve(&ilp, SolveOptions::default()).expect("all-false is feasible");
        prop_assert!(solution.optimal);
        let expected = brute_force(&ilp);
        prop_assert!(
            (solution.objective - expected).abs() < 1e-9,
            "solver {} vs brute force {expected}",
            solution.objective
        );
    }

    /// Returned assignments always satisfy every constraint.
    #[test]
    fn solutions_are_feasible(inst in instance(10)) {
        let ilp = build(&inst);
        let solution = solve(&ilp, SolveOptions::default()).unwrap();
        prop_assert!(ilp.is_feasible(&solution.values));
        prop_assert!(
            (ilp.objective_value(&solution.values) - solution.objective).abs() < 1e-9
        );
    }

    /// Tightening the budget never increases the optimum (monotonicity).
    #[test]
    fn knapsack_monotonicity(
        values in proptest::collection::vec(0.1f64..10.0, 3..8),
        weights_seed in proptest::collection::vec(0.1f64..5.0, 3..8),
        budget in 1.0f64..10.0,
    ) {
        let n = values.len().min(weights_seed.len());
        let mut loose = Ilp::new(n);
        let mut tight = Ilp::new(n);
        for i in 0..n {
            loose.set_objective(i, values[i]).unwrap();
            tight.set_objective(i, values[i]).unwrap();
        }
        let coeffs: Vec<(usize, f64)> =
            (0..n).map(|i| (i, weights_seed[i])).collect();
        loose.add_le(&coeffs, budget).unwrap();
        tight.add_le(&coeffs, budget / 2.0).unwrap();
        let a = solve(&loose, SolveOptions::default()).unwrap().objective;
        let b = solve(&tight, SolveOptions::default()).unwrap().objective;
        prop_assert!(b <= a + 1e-9);
    }
}
