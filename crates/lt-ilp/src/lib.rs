//! Exact 0/1 integer linear programming.
//!
//! λ-Tune formulates workload compression as an ILP (paper §3.3): maximize
//! the total value of join snippets conveyed to the LLM subject to a token
//! budget and structural dependency constraints. The paper hands the
//! problem to an off-the-shelf solver; this crate is the from-scratch
//! substitute — a branch-and-bound solver for maximization of a linear
//! objective over binary variables under `≤` constraints.
//!
//! The solver is exact: it returns a provably optimal solution unless the
//! node budget is exhausted (reported via [`Solution::optimal`]). Pruning
//! combines
//!
//! * **constraint propagation** — fixing a variable forces others through
//!   the `≤` constraints (this subsumes the compression model's
//!   `R ≤ L`, `L ≤ ΣR` and symmetry constraints), and
//! * **fractional-knapsack bounds** — for every constraint with
//!   non-negative coefficients, the LP relaxation restricted to that single
//!   constraint is a valid upper bound and is computable greedily.

pub mod model;
pub mod solver;

pub use model::{Constraint, Ilp, VarId};
pub use solver::{solve, Solution, SolveOptions};
