//! Branch-and-bound solver for 0/1 maximization.

use crate::model::{Constraint, Ilp, VarId};
use lt_common::{obs, LtError, Result};

/// Solver limits.
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Maximum number of branch-and-bound nodes before giving up and
    /// returning the incumbent (marked non-optimal).
    pub max_nodes: u64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_nodes: 2_000_000,
        }
    }
}

/// A solver result.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Assignment per variable.
    pub values: Vec<bool>,
    /// Objective value of the assignment.
    pub objective: f64,
    /// True when the solver proved optimality (node budget not exhausted).
    pub optimal: bool,
    /// Number of branch-and-bound nodes explored.
    pub nodes: u64,
}

struct Search<'a> {
    model: &'a Ilp,
    /// Branching order: variables sorted by objective density.
    order: Vec<VarId>,
    best_values: Vec<bool>,
    best_objective: f64,
    nodes: u64,
    max_nodes: u64,
    exhausted: bool,
    bound_prunes: u64,
}

/// Solves the model to optimality (or to the node budget).
///
/// The all-false assignment must be feasible (true for the compression
/// model and for any pure `≤`-with-nonnegative-rhs model); models where it
/// is not are still handled, but if no feasible solution is found at all an
/// error is returned.
pub fn solve(model: &Ilp, options: SolveOptions) -> Result<Solution> {
    let _span = obs::span("ilp.solve");
    let n = model.num_vars();
    // Branch on high-density variables first: good incumbents early.
    let mut order: Vec<VarId> = (0..n).collect();
    let weight = |v: VarId| -> f64 {
        model
            .constraints()
            .iter()
            .flat_map(|c| c.coeffs.iter())
            .filter(|&&(cv, a)| cv == v && a > 0.0)
            .map(|&(_, a)| a)
            .sum::<f64>()
            .max(1e-9)
    };
    order.sort_by(|&a, &b| {
        let da = model.objective()[a] / weight(a);
        let db = model.objective()[b] / weight(b);
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut search = Search {
        model,
        order,
        best_values: vec![false; n],
        best_objective: f64::NEG_INFINITY,
        nodes: 0,
        max_nodes: options.max_nodes,
        exhausted: false,
        bound_prunes: 0,
    };
    // Seed the incumbent with the all-false assignment when feasible, so an
    // exhausted node budget still returns a valid solution.
    let all_false = vec![false; n];
    if model.is_feasible(&all_false) {
        search.best_objective = model.objective_value(&all_false);
        search.best_values = all_false;
    }

    let mut fixed: Vec<Option<bool>> = vec![None; n];
    search.branch(&mut fixed, 0);

    // Accumulated locally during the search, recorded once per solve: the
    // per-node path must not touch the registry lock.
    obs::counter("ilp.solve.calls", 1);
    obs::counter("ilp.nodes", search.nodes);
    obs::counter("ilp.bound_prunes", search.bound_prunes);

    if search.best_objective == f64::NEG_INFINITY {
        return Err(LtError::Solver("no feasible solution found".into()));
    }
    Ok(Solution {
        objective: search.best_objective,
        values: search.best_values,
        optimal: !search.exhausted,
        nodes: search.nodes,
    })
}

impl Search<'_> {
    fn branch(&mut self, fixed: &mut Vec<Option<bool>>, depth: usize) {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.exhausted = true;
            return;
        }
        // Feasibility: every constraint must still be satisfiable.
        for con in self.model.constraints() {
            if con.min_activity(fixed) > con.rhs + 1e-9 {
                return;
            }
        }
        // Propagate forced variables to a fixpoint.
        let mut trail: Vec<VarId> = Vec::new();
        if !self.propagate(fixed, &mut trail) {
            for v in trail {
                fixed[v] = None;
            }
            return;
        }
        // Bound.
        if self.upper_bound(fixed) <= self.best_objective + 1e-9 {
            self.bound_prunes += 1;
            for v in trail {
                fixed[v] = None;
            }
            return;
        }
        // Find the next unfixed variable in branching order.
        let next = self.order[depth..]
            .iter()
            .copied()
            .find(|&v| fixed[v].is_none());
        match next {
            None => {
                let values: Vec<bool> = fixed.iter().map(|f| f.unwrap_or(false)).collect();
                debug_assert!(self.model.is_feasible(&values));
                let obj = self.model.objective_value(&values);
                if obj > self.best_objective {
                    self.best_objective = obj;
                    self.best_values = values;
                }
            }
            Some(v) => {
                // The `depth` cursor only ever moves forward; recompute the
                // position of v in order for the recursive call.
                let pos = self.order[depth..]
                    .iter()
                    .position(|&o| o == v)
                    .map(|p| depth + p)
                    .unwrap_or(depth);
                for value in [true, false] {
                    fixed[v] = Some(value);
                    self.branch(fixed, pos + 1);
                    if self.exhausted {
                        break;
                    }
                }
                fixed[v] = None;
            }
        }
        for v in trail {
            fixed[v] = None;
        }
    }

    /// Unit-propagation over `≤` constraints: a free variable whose
    /// inclusion (or exclusion) makes some constraint unsatisfiable is
    /// forced to the other value. Returns false on contradiction.
    fn propagate(&self, fixed: &mut [Option<bool>], trail: &mut Vec<VarId>) -> bool {
        loop {
            let mut changed = false;
            for con in self.model.constraints() {
                let min_act = con.min_activity(fixed);
                if min_act > con.rhs + 1e-9 {
                    return false;
                }
                for &(v, a) in &con.coeffs {
                    if fixed[v].is_some() {
                        continue;
                    }
                    if a > 0.0 && min_act - a.min(0.0) + a > con.rhs + 1e-9 {
                        // Setting v=1 would violate the constraint.
                        fixed[v] = Some(false);
                        trail.push(v);
                        changed = true;
                    } else if a < 0.0 && min_act - a > con.rhs + 1e-9 {
                        // Setting v=0 (removing its negative contribution)
                        // would violate: v must be 1.
                        fixed[v] = Some(true);
                        trail.push(v);
                        changed = true;
                    }
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Upper bound on the best completion of the current partial
    /// assignment: fixed value + min over single-constraint fractional
    /// knapsack relaxations (falling back to the unconstrained sum).
    fn upper_bound(&self, fixed: &[Option<bool>]) -> f64 {
        let obj = self.model.objective();
        let fixed_value: f64 = (0..obj.len())
            .filter(|&v| fixed[v] == Some(true))
            .map(|v| obj[v])
            .sum();
        let free_positive: Vec<VarId> = (0..obj.len())
            .filter(|&v| fixed[v].is_none() && obj[v] > 0.0)
            .collect();
        let unconstrained: f64 = free_positive.iter().map(|&v| obj[v]).sum();
        let mut best = fixed_value + unconstrained;
        for con in self.model.constraints() {
            if let Some(b) = knapsack_bound(con, fixed, obj, &free_positive) {
                best = best.min(fixed_value + b);
            }
        }
        best
    }
}

/// Fractional-knapsack bound for one constraint, valid when every
/// coefficient of the constraint is non-negative. Free positive-objective
/// variables *not* in the constraint contribute fully.
fn knapsack_bound(
    con: &Constraint,
    fixed: &[Option<bool>],
    obj: &[f64],
    free_positive: &[VarId],
) -> Option<f64> {
    if con.coeffs.iter().any(|&(_, a)| a < 0.0) {
        return None;
    }
    let used: f64 = con
        .coeffs
        .iter()
        .filter(|&&(v, _)| fixed[v] == Some(true))
        .map(|&(_, a)| a)
        .sum();
    let capacity = con.rhs - used;
    if capacity < -1e-9 {
        return Some(f64::NEG_INFINITY);
    }
    // Weight of each free positive variable in this constraint (0 when the
    // variable does not appear).
    let mut items: Vec<(f64, f64)> = Vec::new(); // (value, weight)
    let mut outside = 0.0;
    for &v in free_positive {
        let w: f64 = con
            .coeffs
            .iter()
            .filter(|&&(cv, _)| cv == v)
            .map(|&(_, a)| a)
            .sum();
        if w <= 0.0 {
            outside += obj[v];
        } else {
            items.push((obj[v], w));
        }
    }
    items.sort_by(|a, b| {
        (b.0 / b.1)
            .partial_cmp(&(a.0 / a.1))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut remaining = capacity.max(0.0);
    let mut bound = outside;
    for (value, weight) in items {
        if weight <= remaining {
            bound += value;
            remaining -= weight;
        } else {
            bound += value * (remaining / weight);
            break;
        }
    }
    Some(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(model: &Ilp) -> (Vec<bool>, f64) {
        let n = model.num_vars();
        let mut best = (vec![false; n], f64::NEG_INFINITY);
        for mask in 0u64..(1 << n) {
            let values: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if model.is_feasible(&values) {
                let obj = model.objective_value(&values);
                if obj > best.1 {
                    best = (values, obj);
                }
            }
        }
        best
    }

    #[test]
    fn solves_a_knapsack() {
        let mut m = Ilp::new(4);
        let values = [10.0, 6.0, 4.0, 7.0];
        let weights = [5.0, 4.0, 3.0, 4.0];
        for (i, v) in values.iter().enumerate() {
            m.set_objective(i, *v).unwrap();
        }
        let coeffs: Vec<(usize, f64)> = weights.iter().enumerate().map(|(i, w)| (i, *w)).collect();
        m.add_le(&coeffs, 9.0).unwrap();
        let sol = solve(&m, SolveOptions::default()).unwrap();
        assert!(sol.optimal);
        assert_eq!(sol.objective, brute_force(&m).1);
        assert_eq!(sol.objective, 17.0); // items 0 and 3
    }

    #[test]
    fn respects_implications() {
        // Value on x0 but x0 requires x1 whose weight blows the budget.
        let mut m = Ilp::new(2);
        m.set_objective(0, 10.0).unwrap();
        m.add_implication(0, 1).unwrap();
        m.add_le(&[(0, 1.0), (1, 5.0)], 4.0).unwrap();
        let sol = solve(&m, SolveOptions::default()).unwrap();
        assert_eq!(sol.objective, 0.0);
        assert_eq!(sol.values, vec![false, false]);
    }

    #[test]
    fn respects_conflicts() {
        let mut m = Ilp::new(2);
        m.set_objective(0, 5.0).unwrap();
        m.set_objective(1, 4.0).unwrap();
        m.add_conflict(0, 1).unwrap();
        let sol = solve(&m, SolveOptions::default()).unwrap();
        assert_eq!(sol.objective, 5.0);
        assert_eq!(sol.values, vec![true, false]);
    }

    #[test]
    fn ge_constraints_force_selection() {
        let mut m = Ilp::new(3);
        m.set_objective(0, -2.0).unwrap();
        m.set_objective(1, -1.0).unwrap();
        m.set_objective(2, -4.0).unwrap();
        // Pick at least two (maximization of negative costs = min cost).
        m.add_ge(&[(0, 1.0), (1, 1.0), (2, 1.0)], 2.0).unwrap();
        let sol = solve(&m, SolveOptions::default()).unwrap();
        assert_eq!(sol.objective, -3.0);
        assert_eq!(sol.values, vec![true, true, false]);
    }

    #[test]
    fn empty_model_is_trivially_optimal() {
        let m = Ilp::new(0);
        let sol = solve(&m, SolveOptions::default()).unwrap();
        assert!(sol.optimal);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn node_budget_marks_non_optimal_but_returns_incumbent() {
        let mut m = Ilp::new(12);
        for i in 0..12 {
            m.set_objective(i, 1.0 + (i as f64) * 0.1).unwrap();
            m.add_le(&[(i, 1.0)], 1.0).unwrap();
        }
        let sol = solve(&m, SolveOptions { max_nodes: 3 }).unwrap();
        assert!(!sol.optimal);
        assert!(sol.objective >= 0.0);
    }

    #[test]
    fn matches_brute_force_on_structured_instances() {
        // Mimics the compression model: R variables with value, L variables
        // with token cost, implications R→L, one budget, symmetric
        // conflicts.
        let mut m = Ilp::new(6); // R0 R1 R2 L0 L1 L2
        m.set_objective(0, 9.0).unwrap();
        m.set_objective(1, 7.0).unwrap();
        m.set_objective(2, 5.0).unwrap();
        m.add_implication(0, 3).unwrap();
        m.add_implication(1, 4).unwrap();
        m.add_implication(2, 5).unwrap();
        m.add_conflict(0, 1).unwrap();
        // Budget over both R and L tokens.
        m.add_le(
            &[(0, 2.0), (1, 2.0), (2, 2.0), (3, 3.0), (4, 3.0), (5, 3.0)],
            10.0,
        )
        .unwrap();
        let sol = solve(&m, SolveOptions::default()).unwrap();
        let (_, expect) = brute_force(&m);
        assert_eq!(sol.objective, expect);
        assert!(m.is_feasible(&sol.values));
    }
}
