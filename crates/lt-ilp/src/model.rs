//! ILP model construction.

use lt_common::{LtError, Result};

/// Index of a binary decision variable.
pub type VarId = usize;

/// A linear `≤` constraint: `Σ coeffs[i].1 · x[coeffs[i].0] ≤ rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse coefficients as `(variable, coefficient)` pairs.
    pub coeffs: Vec<(VarId, f64)>,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Smallest achievable left-hand side over free variables, given that
    /// each fixed variable contributes its assigned value.
    pub fn min_activity(&self, fixed: &[Option<bool>]) -> f64 {
        self.coeffs
            .iter()
            .map(|&(v, a)| match fixed[v] {
                Some(true) => a,
                Some(false) => 0.0,
                None => a.min(0.0),
            })
            .sum()
    }
}

/// A 0/1 maximization problem.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ilp {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Ilp {
    /// A model with `num_vars` binary variables, all with objective 0.
    pub fn new(num_vars: usize) -> Self {
        Ilp {
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of one variable.
    pub fn set_objective(&mut self, var: VarId, coeff: f64) -> Result<()> {
        self.check_var(var)?;
        self.objective[var] = coeff;
        Ok(())
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds `Σ coeff·x ≤ rhs`.
    pub fn add_le(&mut self, coeffs: &[(VarId, f64)], rhs: f64) -> Result<()> {
        for &(v, c) in coeffs {
            self.check_var(v)?;
            if !c.is_finite() {
                return Err(LtError::Solver(format!("non-finite coefficient {c}")));
            }
        }
        if !rhs.is_finite() {
            return Err(LtError::Solver(format!("non-finite rhs {rhs}")));
        }
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            rhs,
        });
        Ok(())
    }

    /// Adds `Σ coeff·x ≥ rhs` (stored as the negated `≤` form).
    pub fn add_ge(&mut self, coeffs: &[(VarId, f64)], rhs: f64) -> Result<()> {
        let negated: Vec<(VarId, f64)> = coeffs.iter().map(|&(v, c)| (v, -c)).collect();
        self.add_le(&negated, -rhs)
    }

    /// Adds the implication `x_a = 1 ⇒ x_b = 1` (i.e. `x_a ≤ x_b`).
    pub fn add_implication(&mut self, a: VarId, b: VarId) -> Result<()> {
        self.add_le(&[(a, 1.0), (b, -1.0)], 0.0)
    }

    /// Adds the conflict `x_a + x_b ≤ 1`.
    pub fn add_conflict(&mut self, a: VarId, b: VarId) -> Result<()> {
        self.add_le(&[(a, 1.0), (b, 1.0)], 1.0)
    }

    /// Evaluates the objective for a full assignment.
    pub fn objective_value(&self, values: &[bool]) -> f64 {
        values
            .iter()
            .zip(&self.objective)
            .filter_map(|(&x, &c)| if x { Some(c) } else { None })
            .sum()
    }

    /// Checks whether a full assignment satisfies every constraint.
    pub fn is_feasible(&self, values: &[bool]) -> bool {
        self.constraints.iter().all(|con| {
            let lhs: f64 = con
                .coeffs
                .iter()
                .map(|&(v, a)| if values[v] { a } else { 0.0 })
                .sum();
            lhs <= con.rhs + 1e-9
        })
    }

    fn check_var(&self, var: VarId) -> Result<()> {
        if var < self.objective.len() {
            Ok(())
        } else {
            Err(LtError::Solver(format!(
                "variable {var} out of range (model has {})",
                self.objective.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut m = Ilp::new(3);
        m.set_objective(0, 5.0).unwrap();
        m.set_objective(2, 3.0).unwrap();
        m.add_le(&[(0, 2.0), (1, 1.0), (2, 2.0)], 3.0).unwrap();
        assert_eq!(m.objective_value(&[true, false, true]), 8.0);
        assert!(!m.is_feasible(&[true, false, true])); // 4 > 3
        assert!(m.is_feasible(&[true, true, false])); // 3 ≤ 3
    }

    #[test]
    fn ge_is_negated_le() {
        let mut m = Ilp::new(2);
        m.add_ge(&[(0, 1.0), (1, 1.0)], 1.0).unwrap();
        assert!(!m.is_feasible(&[false, false]));
        assert!(m.is_feasible(&[true, false]));
    }

    #[test]
    fn implication_and_conflict_shapes() {
        let mut m = Ilp::new(2);
        m.add_implication(0, 1).unwrap(); // x0 ≤ x1
        assert!(!m.is_feasible(&[true, false]));
        assert!(m.is_feasible(&[true, true]));
        let mut m = Ilp::new(2);
        m.add_conflict(0, 1).unwrap();
        assert!(!m.is_feasible(&[true, true]));
        assert!(m.is_feasible(&[true, false]));
    }

    #[test]
    fn out_of_range_vars_are_errors() {
        let mut m = Ilp::new(1);
        assert!(m.set_objective(1, 1.0).is_err());
        assert!(m.add_le(&[(1, 1.0)], 0.0).is_err());
        assert!(m.add_le(&[(0, f64::NAN)], 0.0).is_err());
    }

    #[test]
    fn min_activity_accounts_for_fixings() {
        let c = Constraint {
            coeffs: vec![(0, 2.0), (1, -1.0), (2, 3.0)],
            rhs: 0.0,
        };
        // Free: min activity takes negative coefficients at 1.
        assert_eq!(c.min_activity(&[None, None, None]), -1.0);
        assert_eq!(c.min_activity(&[Some(true), None, None]), 1.0);
        assert_eq!(c.min_activity(&[Some(true), Some(false), Some(true)]), 5.0);
    }
}
