//! Randomized property tests for the simulated DBMS: knob parsing
//! roundtrips, configuration-script robustness, and physically sensible
//! monotonicity of the execution model.
//!
//! Cases are generated from a seeded `lt_common::Rng` (the workspace builds
//! with zero external crates), so every run exercises the same cases.

use lt_common::{seeded_rng, Rng, Secs};
use lt_dbms::{Catalog, Configuration, Dbms, Hardware, SimDb};

const CASES: usize = 64;

fn small_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table("t_small", 10_000)
        .primary_key("sk", 8)
        .column("sv", 8, 100.0)
        .finish();
    c.add_table("t_big", 2_000_000)
        .primary_key("bk", 8)
        .foreign_key("bfk", 8, 10_000.0)
        .column("bv", 8, 500.0)
        .column("bpad", 80, 100.0)
        .finish();
    c
}

/// Arbitrary text: printable ASCII plus whitespace, quotes and a few
/// multi-byte characters, to stress the parser with malformed scripts.
fn arbitrary_text(rng: &mut Rng, max_len: usize) -> String {
    let pool: Vec<char> = (' '..='~')
        .chain(['\n', '\t', 'é', 'λ', '→', '\''])
        .collect();
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| *rng.choose(&pool).unwrap()).collect()
}

/// Configuration parsing never panics on arbitrary script text.
#[test]
fn configuration_parse_never_panics() {
    let catalog = small_catalog();
    let mut rng = seeded_rng(0xD1);
    for _ in 0..CASES {
        let script = arbitrary_text(&mut rng, 300);
        let _ = Configuration::parse(&script, Dbms::Postgres, &catalog);
        let _ = Configuration::parse(&script, Dbms::Mysql, &catalog);
    }
}

/// Rendering a parsed configuration back to a script and reparsing it
/// preserves knobs and indexes.
#[test]
fn configuration_script_roundtrip() {
    let catalog = small_catalog();
    let mut rng = seeded_rng(0xD2);
    for _ in 0..CASES {
        let work_mem_mb = rng.gen_range(1..4096u64);
        let rpc = rng.gen_range(0.5..10.0);
        let with_index = rng.gen_bool(0.5);
        let mut script = format!(
            "ALTER SYSTEM SET work_mem = '{work_mem_mb}MB';\n\
             ALTER SYSTEM SET random_page_cost = {rpc};\n"
        );
        if with_index {
            script.push_str("CREATE INDEX ON t_big (bfk);\n");
        }
        let config = Configuration::parse(&script, Dbms::Postgres, &catalog);
        assert!(config.warnings.is_empty());
        let rendered = config.to_script(Dbms::Postgres, &catalog);
        let reparsed = Configuration::parse(&rendered, Dbms::Postgres, &catalog);
        assert!(reparsed.warnings.is_empty(), "{:?}", reparsed.warnings);
        assert_eq!(config.fingerprint(), reparsed.fingerprint());
    }
}

/// Knob text parsing is clamped: whatever value the script asks for,
/// the stored value is within the knob's legal range.
#[test]
fn knob_values_respect_ranges() {
    let mut rng = seeded_rng(0xD3);
    for _ in 0..CASES {
        let raw = rng.gen_range(0..u64::MAX / 2);
        let mut knobs = lt_dbms::KnobSet::defaults(Dbms::Postgres);
        knobs.set_text("work_mem", &format!("{raw}")).unwrap();
        let def = lt_dbms::knobs::knob_def(Dbms::Postgres, "work_mem").unwrap();
        let v = knobs.get_f64("work_mem");
        assert!(v >= def.min && v <= def.max);
    }
}

/// Execution time is positive, finite, and a query's time under a
/// timeout never exceeds the timeout.
#[test]
fn execution_respects_timeouts() {
    let mut rng = seeded_rng(0xD4);
    for _ in 0..CASES {
        let timeout_s = rng.gen_range(0.001..100.0);
        let seed = rng.gen_range(0..50u64);
        let catalog = small_catalog();
        let mut db = SimDb::new(Dbms::Postgres, catalog, Hardware::p3_2xlarge(), seed);
        let q =
            lt_sql::parse_query("select * from t_big, t_small where bfk = sk and bv < 10").unwrap();
        let outcome = db.execute(&q, lt_common::secs(timeout_s));
        assert!(outcome.time > Secs::ZERO);
        assert!(outcome.time <= lt_common::secs(timeout_s) + lt_common::secs(1e-9));
        // Unlimited execution completes.
        let unlimited = db.execute(&q, Secs::INFINITY);
        assert!(unlimited.completed);
        assert!(unlimited.time.is_finite());
    }
}

/// More work memory never makes the workload slower (spills only
/// disappear, never appear, as memory grows).
#[test]
fn work_mem_is_monotone() {
    let mut rng = seeded_rng(0xD5);
    for _ in 0..CASES {
        let mb_small = rng.gen_range(1..64u64);
        let factor = rng.gen_range(2..64u64);
        let catalog = small_catalog();
        let q = lt_sql::parse_query("select * from t_big, t_small where bfk = sk").unwrap();
        let time_with = |mb: u64| {
            let mut db = SimDb::new(Dbms::Postgres, small_catalog(), Hardware::p3_2xlarge(), 7);
            let cfg = Configuration::parse(
                &format!("ALTER SYSTEM SET work_mem = '{mb}MB';"),
                Dbms::Postgres,
                &catalog,
            );
            db.apply_knobs(&cfg);
            db.execute(&q, Secs::INFINITY).time
        };
        let slow = time_with(mb_small);
        let fast = time_with(mb_small * factor);
        // The configuration fingerprint feeds the ±6% execution noise, so
        // more memory must never be slower beyond the combined noise band.
        assert!(
            fast.as_f64() <= slow.as_f64() * 1.13 + 1e-6,
            "{fast} > {slow} beyond noise"
        );
    }
}
