//! Property-based tests for the simulated DBMS: knob parsing
//! roundtrips, configuration-script robustness, and physically sensible
//! monotonicity of the execution model.

use lt_common::Secs;
use lt_dbms::{Catalog, Configuration, Dbms, Hardware, SimDb};
use proptest::prelude::*;

fn small_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table("t_small", 10_000)
        .primary_key("sk", 8)
        .column("sv", 8, 100.0)
        .finish();
    c.add_table("t_big", 2_000_000)
        .primary_key("bk", 8)
        .foreign_key("bfk", 8, 10_000.0)
        .column("bv", 8, 500.0)
        .column("bpad", 80, 100.0)
        .finish();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Configuration parsing never panics on arbitrary script text.
    #[test]
    fn configuration_parse_never_panics(script in ".{0,300}") {
        let catalog = small_catalog();
        let _ = Configuration::parse(&script, Dbms::Postgres, &catalog);
        let _ = Configuration::parse(&script, Dbms::Mysql, &catalog);
    }

    /// Rendering a parsed configuration back to a script and reparsing it
    /// preserves knobs and indexes.
    #[test]
    fn configuration_script_roundtrip(
        work_mem_mb in 1u64..4096,
        rpc in 0.5f64..10.0,
        with_index in any::<bool>(),
    ) {
        let catalog = small_catalog();
        let mut script = format!(
            "ALTER SYSTEM SET work_mem = '{work_mem_mb}MB';\n\
             ALTER SYSTEM SET random_page_cost = {rpc};\n"
        );
        if with_index {
            script.push_str("CREATE INDEX ON t_big (bfk);\n");
        }
        let config = Configuration::parse(&script, Dbms::Postgres, &catalog);
        prop_assert!(config.warnings.is_empty());
        let rendered = config.to_script(Dbms::Postgres, &catalog);
        let reparsed = Configuration::parse(&rendered, Dbms::Postgres, &catalog);
        prop_assert!(reparsed.warnings.is_empty(), "{:?}", reparsed.warnings);
        prop_assert_eq!(config.fingerprint(), reparsed.fingerprint());
    }

    /// Knob text parsing is clamped: whatever value the script asks for,
    /// the stored value is within the knob's legal range.
    #[test]
    fn knob_values_respect_ranges(raw in 0u64..u64::MAX / 2) {
        let mut knobs = lt_dbms::KnobSet::defaults(Dbms::Postgres);
        knobs.set_text("work_mem", &format!("{raw}")).unwrap();
        let def = lt_dbms::knobs::knob_def(Dbms::Postgres, "work_mem").unwrap();
        let v = knobs.get_f64("work_mem");
        prop_assert!(v >= def.min && v <= def.max);
    }

    /// Execution time is positive, finite, and a query's time under a
    /// timeout never exceeds the timeout.
    #[test]
    fn execution_respects_timeouts(timeout_s in 0.001f64..100.0, seed in 0u64..50) {
        let catalog = small_catalog();
        let mut db = SimDb::new(Dbms::Postgres, catalog, Hardware::p3_2xlarge(), seed);
        let q = lt_sql::parse_query(
            "select * from t_big, t_small where bfk = sk and bv < 10",
        ).unwrap();
        let outcome = db.execute(&q, lt_common::secs(timeout_s));
        prop_assert!(outcome.time > Secs::ZERO);
        prop_assert!(outcome.time <= lt_common::secs(timeout_s) + lt_common::secs(1e-9));
        // Unlimited execution completes.
        let unlimited = db.execute(&q, Secs::INFINITY);
        prop_assert!(unlimited.completed);
        prop_assert!(unlimited.time.is_finite());
    }

    /// More work memory never makes the workload slower (spills only
    /// disappear, never appear, as memory grows).
    #[test]
    fn work_mem_is_monotone(mb_small in 1u64..64, factor in 2u64..64) {
        let catalog = small_catalog();
        let q = lt_sql::parse_query(
            "select * from t_big, t_small where bfk = sk",
        ).unwrap();
        let time_with = |mb: u64| {
            let mut db = SimDb::new(
                Dbms::Postgres, small_catalog(), Hardware::p3_2xlarge(), 7,
            );
            let cfg = Configuration::parse(
                &format!("ALTER SYSTEM SET work_mem = '{mb}MB';"),
                Dbms::Postgres,
                &catalog,
            );
            db.apply_knobs(&cfg);
            db.execute(&q, Secs::INFINITY).time
        };
        let slow = time_with(mb_small);
        let fast = time_with(mb_small * factor);
        // The configuration fingerprint feeds the ±6% execution noise, so
        // more memory must never be slower beyond the combined noise band.
        prop_assert!(
            fast.as_f64() <= slow.as_f64() * 1.13 + 1e-6,
            "{fast} > {slow} beyond noise"
        );
    }
}
