//! The plan cache must be invisible except for speed: a cached plan is
//! always identical to what planning from scratch would produce, and knob
//! or index mutations must never serve a stale plan.

use lt_common::secs;
use lt_dbms::{Catalog, Configuration, Dbms, Hardware, IndexSpec, SimDb};
use lt_sql::parse_query;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table("t_small", 10_000)
        .primary_key("sk", 8)
        .column("sv", 8, 100.0)
        .finish();
    c.add_table("t_big", 2_000_000)
        .primary_key("bk", 8)
        .foreign_key("bfk", 8, 10_000.0)
        .column("bv", 8, 500.0)
        .finish();
    c
}

fn db() -> SimDb {
    SimDb::new(Dbms::Postgres, catalog(), Hardware::p3_2xlarge(), 3)
}

const JOIN: &str = "select * from t_big, t_small where bfk = sk and bv < 10";

/// Planning twice returns the identical plan, and a fresh cache-less
/// database agrees — the cache only changes *when* planning happens.
#[test]
fn cached_plan_equals_fresh_plan() {
    let cached = db();
    let q = parse_query(JOIN).unwrap();
    let first = cached.explain(&q);
    let second = cached.explain(&q);
    assert_eq!(first, second);
    let stats = cached.cache_stats();
    assert_eq!(stats.plan_misses, 1, "one planning call");
    assert_eq!(stats.plan_hits, 1, "one cache hit");

    let fresh = db().explain(&q);
    assert_eq!(first, fresh);
}

/// Applying knobs that change optimizer behaviour re-plans instead of
/// serving the stale cached plan, and matches a never-cached database
/// configured the same way.
#[test]
fn knob_change_invalidates_cached_plan() {
    let mut cached = db();
    let q = parse_query(JOIN).unwrap();
    let before = cached.explain(&q);

    // Make index scans look expensive and sequential scans cheap — a
    // planner-relevant change that can flip access-path choices.
    let cfg = Configuration::parse(
        "ALTER SYSTEM SET random_page_cost = 40.0;\n\
         ALTER SYSTEM SET cpu_index_tuple_cost = 0.5;",
        Dbms::Postgres,
        cached.catalog(),
    );
    cached.apply_knobs(&cfg);
    let after = cached.explain(&q);

    let mut fresh = db();
    fresh.apply_knobs(&cfg);
    let expected = fresh.explain(&q);
    assert_eq!(
        after, expected,
        "plan under new knobs must match a cache-less database"
    );

    // Reverting the knobs re-hits the original cache entry.
    cached.reset_knobs();
    let reverted = cached.explain(&q);
    assert_eq!(before, reverted);
    let stats = cached.cache_stats();
    assert!(
        stats.plan_hits >= 1,
        "revert must hit the original entry: {stats:?}"
    );
}

/// Creating and dropping an index bumps the catalog epoch, so plans are
/// recomputed against the real index set — no stale index-scan plans.
#[test]
fn index_create_and_drop_invalidate_cached_plan() {
    let mut cached = db();
    let q = parse_query(JOIN).unwrap();
    let epoch0 = cached.indexes().epoch();
    let plan_no_index = cached.explain(&q);

    let spec = IndexSpec {
        table: cached.catalog().table_by_name("t_big").unwrap(),
        columns: vec![cached
            .catalog()
            .resolve_column(Some("t_big"), "bfk")
            .unwrap()],
        name: None,
    };
    let (id, _) = cached.create_index(&spec);
    assert!(
        cached.indexes().epoch() > epoch0,
        "create must bump the epoch"
    );
    let plan_with_index = cached.explain(&q);

    // A fresh database with the same index must agree with the cached one.
    let mut fresh = db();
    fresh.create_index(&spec);
    assert_eq!(plan_with_index, fresh.explain(&q));

    // Dropping the index restores the original plan (cache re-hit, since
    // the index-catalog fingerprint returns to its previous value).
    cached.drop_index(id);
    let plan_dropped = cached.explain(&q);
    assert_eq!(plan_no_index, plan_dropped);
}

/// Executing the same queries repeatedly — the selector's access pattern —
/// is answered from the cache, and the observed times are exactly what a
/// second database replaying the identical call sequence observes (the
/// cache must not perturb the deterministic execution model).
#[test]
fn repeated_execution_hits_cache_with_identical_outcomes() {
    let queries = [
        parse_query(JOIN).unwrap(),
        parse_query("select * from t_big where bv < 100").unwrap(),
        parse_query("select * from t_small where sv < 5").unwrap(),
    ];
    let run_rounds = |db: &mut SimDb| -> Vec<f64> {
        let mut times = Vec::new();
        for _ in 0..3 {
            for q in &queries {
                times.push(db.execute(q, secs(f64::INFINITY)).time.as_f64());
            }
        }
        times
    };
    let mut a = db();
    let mut b = db();
    let times_a = run_rounds(&mut a);
    let times_b = run_rounds(&mut b);
    assert_eq!(times_a, times_b, "cache must not change execution outcomes");

    let stats = a.cache_stats();
    assert!(
        stats.plan_hits >= 6,
        "re-runs must be cache hits: {stats:?}"
    );
    assert_eq!(stats.plan_misses, 3, "one miss per distinct query");
    assert!(stats.extract_hits >= 6);
}

/// What-if planning against a hypothetical index catalog or knob set never
/// pollutes the real planning context.
#[test]
fn what_if_planning_is_isolated() {
    let sim = db();
    let q = parse_query(JOIN).unwrap();
    let real = sim.explain(&q);

    let mut hypothetical = sim.indexes().clone();
    let spec = IndexSpec {
        table: sim.catalog().table_by_name("t_big").unwrap(),
        columns: vec![sim.catalog().resolve_column(Some("t_big"), "bfk").unwrap()],
        name: None,
    };
    hypothetical.add(spec.table, spec.columns.clone(), None);
    let _what_if = sim.explain_with_indexes(&q, &hypothetical);

    let mut knobs = sim.knobs().clone();
    knobs.set_text("random_page_cost", "40.0").unwrap();
    let _what_if_knobs = sim.explain_with_knobs(&q, &knobs);

    // The real planning context is untouched: same plan, served cached.
    let again = sim.explain(&q);
    assert_eq!(real, again);
}
