//! Configuration scripts.
//!
//! λ-Tune's LLM returns configurations as SQL command scripts — typically a
//! mix of `ALTER SYSTEM SET param = value;` (PostgreSQL), `SET GLOBAL
//! param = value;` (MySQL) and `CREATE INDEX … ON table (columns);`. This
//! module parses such scripts into a structured [`Configuration`], keeping
//! unparseable or invalid commands as *warnings* rather than hard errors —
//! a real tuner must tolerate occasional LLM sloppiness, and a real DBMS
//! would reject exactly those statements while accepting the rest.

use crate::catalog::Catalog;
use crate::knobs::{knob_def, Dbms, KnobValue};
use lt_common::{ColumnId, TableId};
use std::fmt;

/// A `CREATE INDEX` command, name-resolved against the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexSpec {
    /// Indexed table.
    pub table: TableId,
    /// Key columns, leading first.
    pub columns: Vec<ColumnId>,
    /// Optional index name from the script.
    pub name: Option<String>,
}

/// One structured configuration command.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigCommand {
    /// Set a system knob.
    SetKnob {
        /// Knob name (validated against the DBMS's registry).
        name: String,
        /// Parsed, range-clamped value.
        value: KnobValue,
    },
    /// Create a secondary index.
    CreateIndex(IndexSpec),
}

/// A parsed configuration: knob assignments plus index specs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Configuration {
    /// Commands in script order.
    pub commands: Vec<ConfigCommand>,
    /// Human-readable diagnostics for skipped/invalid statements.
    pub warnings: Vec<String>,
}

impl Configuration {
    /// Parses a script for the given DBMS, resolving index targets against
    /// `catalog`. Invalid statements are recorded in `warnings` and skipped.
    pub fn parse(script: &str, dbms: Dbms, catalog: &Catalog) -> Configuration {
        let mut config = Configuration::default();
        // Strip line comments first so a leading comment does not swallow
        // the statement that follows it.
        let without_comments: String = script
            .lines()
            .map(|l| l.split("--").next().unwrap_or(""))
            .collect::<Vec<_>>()
            .join("\n");
        for stmt in lt_sql::split_statements(&without_comments) {
            let trimmed = stmt.trim();
            if trimmed.is_empty() {
                continue;
            }
            match parse_statement(trimmed, dbms, catalog) {
                Ok(Some(cmd)) => config.commands.push(cmd),
                Ok(None) => {}
                Err(warning) => config.warnings.push(warning),
            }
        }
        config
    }

    /// Knob assignments in script order (later assignments win on apply).
    pub fn knob_changes(&self) -> impl Iterator<Item = (&str, KnobValue)> {
        self.commands.iter().filter_map(|c| match c {
            ConfigCommand::SetKnob { name, value } => Some((name.as_str(), *value)),
            _ => None,
        })
    }

    /// Index specs in script order, deduplicated.
    pub fn index_specs(&self) -> Vec<&IndexSpec> {
        let mut seen = std::collections::HashSet::new();
        self.commands
            .iter()
            .filter_map(|c| match c {
                ConfigCommand::CreateIndex(spec) => Some(spec),
                _ => None,
            })
            .filter(|s| seen.insert((s.table, s.columns.clone())))
            .collect()
    }

    /// True when the configuration has neither knob changes nor indexes.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Stable fingerprint of the configuration (used to seed execution
    /// noise so that re-running the same config reproduces similar times).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        for cmd in &self.commands {
            match cmd {
                ConfigCommand::SetKnob { name, value } => {
                    name.hash(&mut hasher);
                    value.as_f64().to_bits().hash(&mut hasher);
                }
                ConfigCommand::CreateIndex(spec) => {
                    spec.table.hash(&mut hasher);
                    spec.columns.hash(&mut hasher);
                }
            }
        }
        hasher.finish()
    }

    /// Renders the configuration back to a canonical script.
    pub fn to_script(&self, dbms: Dbms, catalog: &Catalog) -> String {
        let mut out = String::new();
        for cmd in &self.commands {
            match cmd {
                ConfigCommand::SetKnob { name, value } => {
                    let line = match dbms {
                        Dbms::Postgres => format!("ALTER SYSTEM SET {name} = '{value}';\n"),
                        Dbms::Mysql => format!("SET GLOBAL {name} = '{value}';\n"),
                    };
                    out.push_str(&line);
                }
                ConfigCommand::CreateIndex(spec) => {
                    let table = &catalog.table(spec.table).name;
                    let cols: Vec<&str> = spec
                        .columns
                        .iter()
                        .map(|c| catalog.column(*c).name.as_str())
                        .collect();
                    let name = spec
                        .name
                        .clone()
                        .unwrap_or_else(|| format!("idx_{}_{}", table, cols.join("_")));
                    out.push_str(&format!(
                        "CREATE INDEX {name} ON {table} ({});\n",
                        cols.join(", ")
                    ));
                }
            }
        }
        out
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Configuration({} knobs, {} indexes)",
            self.knob_changes().count(),
            self.index_specs().len()
        )
    }
}

fn parse_statement(
    stmt: &str,
    dbms: Dbms,
    catalog: &Catalog,
) -> Result<Option<ConfigCommand>, String> {
    let words: Vec<String> = tokenize_words(stmt);
    if words.is_empty() {
        return Ok(None);
    }
    let kw = |i: usize, w: &str| words.get(i).is_some_and(|s| s.eq_ignore_ascii_case(w));

    // ALTER SYSTEM SET name = value
    if kw(0, "alter") && kw(1, "system") && kw(2, "set") {
        return parse_set(&words[3..], stmt, dbms).map(Some);
    }
    // SET GLOBAL name = value | SET name = value | SET SESSION name = value
    if kw(0, "set") {
        let rest = if kw(1, "global") || kw(1, "session") {
            &words[2..]
        } else {
            &words[1..]
        };
        return parse_set(rest, stmt, dbms).map(Some);
    }
    // CREATE [UNIQUE] INDEX [CONCURRENTLY] [IF NOT EXISTS] [name] ON table (cols)
    if kw(0, "create") {
        let mut i = 1;
        if kw(i, "unique") {
            i += 1;
        }
        if !kw(i, "index") {
            return Err(format!("unsupported statement: {stmt}"));
        }
        i += 1;
        if kw(i, "concurrently") {
            i += 1;
        }
        if kw(i, "if") && kw(i + 1, "not") && kw(i + 2, "exists") {
            i += 3;
        }
        let mut name = None;
        if !kw(i, "on") {
            name = Some(
                words
                    .get(i)
                    .cloned()
                    .ok_or_else(|| format!("CREATE INDEX missing ON clause: {stmt}"))?,
            );
            i += 1;
        }
        if !kw(i, "on") {
            return Err(format!("CREATE INDEX missing ON clause: {stmt}"));
        }
        i += 1;
        let table_name = words
            .get(i)
            .ok_or_else(|| format!("CREATE INDEX missing table: {stmt}"))?;
        let table = catalog
            .table_by_name(table_name)
            .ok_or_else(|| format!("CREATE INDEX on unknown table {table_name}"))?;
        i += 1;
        // Optional USING btree
        if kw(i, "using") {
            i += 2;
        }
        let mut columns = Vec::new();
        for w in &words[i..] {
            if w == "(" || w == ")" || w == "," {
                continue;
            }
            let col = catalog
                .resolve_column(Some(&catalog.table(table).name), w)
                .map_err(|e| format!("CREATE INDEX: {e}"))?;
            columns.push(col);
        }
        if columns.is_empty() {
            return Err(format!("CREATE INDEX without columns: {stmt}"));
        }
        return Ok(Some(ConfigCommand::CreateIndex(IndexSpec {
            table,
            columns,
            name,
        })));
    }
    // Harmless statements some LLM outputs include.
    if kw(0, "select") || kw(0, "analyze") || kw(0, "vacuum") {
        return Ok(None);
    }
    Err(format!("unsupported statement: {stmt}"))
}

fn parse_set(rest: &[String], stmt: &str, dbms: Dbms) -> Result<ConfigCommand, String> {
    // rest is: name [= | to] value...
    if rest.is_empty() {
        return Err(format!("SET without parameter: {stmt}"));
    }
    let name = rest[0].to_ascii_lowercase();
    let mut value_words = &rest[1..];
    if value_words
        .first()
        .is_some_and(|w| w == "=" || w.eq_ignore_ascii_case("to"))
    {
        value_words = &value_words[1..];
    }
    if value_words.is_empty() {
        return Err(format!("SET {name} without value: {stmt}"));
    }
    let value_text = value_words.join("");
    let def = knob_def(dbms, &name).ok_or_else(|| format!("unknown knob {name} for {dbms}"))?;
    let value = def
        .parse_value(&value_text)
        .map_err(|e| format!("bad value for {name}: {e}"))?;
    Ok(ConfigCommand::SetKnob {
        name: def.name.to_string(),
        value,
    })
}

/// Splits a statement into identifier/number/punctuation words, preserving
/// quoted values as single words without the quotes.
fn tokenize_words(stmt: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    let mut chars = stmt.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' | '"' => {
                let mut lit = String::new();
                for c2 in chars.by_ref() {
                    if c2 == c {
                        break;
                    }
                    lit.push(c2);
                }
                if !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
                words.push(lit);
            }
            '(' | ')' | ',' | '=' | ';' => {
                if !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
                if c != ';' {
                    words.push(c.to_string());
                }
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::GIB;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("lineitem", 6_000_000)
            .primary_key("l_orderkey", 8)
            .foreign_key("l_partkey", 8, 200_000.0)
            .column("l_shipdate", 4, 2_500.0)
            .finish();
        c
    }

    #[test]
    fn parses_postgres_style_script() {
        let c = catalog();
        let script = "\
            ALTER SYSTEM SET shared_buffers = '15GB';\n\
            ALTER SYSTEM SET random_page_cost = 1.1;\n\
            CREATE INDEX idx_l_orderkey ON lineitem (l_orderkey);\n";
        let cfg = Configuration::parse(script, Dbms::Postgres, &c);
        assert!(cfg.warnings.is_empty(), "{:?}", cfg.warnings);
        assert_eq!(cfg.knob_changes().count(), 2);
        assert_eq!(cfg.index_specs().len(), 1);
        let (name, value) = cfg.knob_changes().next().unwrap();
        assert_eq!(name, "shared_buffers");
        assert_eq!(value, KnobValue::Bytes(15 * GIB));
    }

    #[test]
    fn parses_mysql_style_script() {
        let c = catalog();
        let script = "SET GLOBAL innodb_buffer_pool_size = 8589934592;\n\
                      CREATE INDEX i ON lineitem (l_partkey, l_orderkey);";
        let cfg = Configuration::parse(script, Dbms::Mysql, &c);
        assert!(cfg.warnings.is_empty(), "{:?}", cfg.warnings);
        assert_eq!(cfg.index_specs()[0].columns.len(), 2);
    }

    #[test]
    fn set_to_syntax_and_quotes() {
        let c = catalog();
        let cfg = Configuration::parse(
            "SET work_mem TO '1GB'; ALTER SYSTEM SET jit = \"off\";",
            Dbms::Postgres,
            &c,
        );
        assert!(cfg.warnings.is_empty(), "{:?}", cfg.warnings);
        assert_eq!(cfg.knob_changes().count(), 2);
    }

    #[test]
    fn unknown_knob_becomes_warning() {
        let c = catalog();
        let cfg = Configuration::parse(
            "ALTER SYSTEM SET made_up_knob = 3; ALTER SYSTEM SET work_mem = '1GB';",
            Dbms::Postgres,
            &c,
        );
        assert_eq!(cfg.warnings.len(), 1);
        assert_eq!(cfg.knob_changes().count(), 1);
    }

    #[test]
    fn wrong_dbms_knob_becomes_warning() {
        let c = catalog();
        let cfg = Configuration::parse("SET GLOBAL shared_buffers = '1GB';", Dbms::Mysql, &c);
        assert_eq!(cfg.warnings.len(), 1);
        assert!(cfg.is_empty());
    }

    #[test]
    fn unknown_table_or_column_becomes_warning() {
        let c = catalog();
        let cfg = Configuration::parse(
            "CREATE INDEX i ON nope (x); CREATE INDEX j ON lineitem (nope);",
            Dbms::Postgres,
            &c,
        );
        assert_eq!(cfg.warnings.len(), 2);
    }

    #[test]
    fn if_not_exists_and_unnamed_index() {
        let c = catalog();
        let cfg = Configuration::parse(
            "CREATE INDEX IF NOT EXISTS ON lineitem (l_shipdate);\n\
             CREATE UNIQUE INDEX CONCURRENTLY foo ON lineitem USING btree (l_orderkey);",
            Dbms::Postgres,
            &c,
        );
        assert!(cfg.warnings.is_empty(), "{:?}", cfg.warnings);
        assert_eq!(cfg.index_specs().len(), 2);
        assert_eq!(cfg.index_specs()[1].name.as_deref(), Some("foo"));
    }

    #[test]
    fn duplicate_indexes_dedupe() {
        let c = catalog();
        let cfg = Configuration::parse(
            "CREATE INDEX a ON lineitem (l_orderkey); CREATE INDEX b ON lineitem (l_orderkey);",
            Dbms::Postgres,
            &c,
        );
        assert_eq!(cfg.index_specs().len(), 1);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let c = catalog();
        let a = Configuration::parse("SET work_mem = '1GB';", Dbms::Postgres, &c);
        let b = Configuration::parse("SET work_mem = '2GB';", Dbms::Postgres, &c);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let a2 = Configuration::parse("SET work_mem = '1GB';", Dbms::Postgres, &c);
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn roundtrip_to_script() {
        let c = catalog();
        let script = "ALTER SYSTEM SET work_mem = '1GB';\nCREATE INDEX i ON lineitem (l_orderkey);";
        let cfg = Configuration::parse(script, Dbms::Postgres, &c);
        let rendered = cfg.to_script(Dbms::Postgres, &c);
        let reparsed = Configuration::parse(&rendered, Dbms::Postgres, &c);
        assert_eq!(cfg.knob_changes().count(), reparsed.knob_changes().count());
        assert_eq!(cfg.index_specs().len(), reparsed.index_specs().len());
    }

    #[test]
    fn comments_and_noise_are_skipped() {
        let c = catalog();
        let cfg = Configuration::parse(
            "-- tuning for OLAP\nANALYZE;\nSELECT 1;\nALTER SYSTEM SET work_mem='2GB';",
            Dbms::Postgres,
            &c,
        );
        assert!(cfg.warnings.is_empty(), "{:?}", cfg.warnings);
        assert_eq!(cfg.knob_changes().count(), 1);
    }
}
