//! The simulated DBMS facade.
//!
//! [`SimDb`] is what tuners hold: it owns the catalog, the active knob set,
//! the materialized indexes and the virtual clock. Every operation that
//! would take wall-clock time on a real system — executing a query,
//! building an index, applying a configuration (restart/reload) — advances
//! the clock; everything else (EXPLAIN, what-if planning) is free, matching
//! how the paper's tuners budget their time.

use crate::catalog::Catalog;
use crate::config::{Configuration, IndexSpec};
use crate::executor::{ExecutionContext, ExecutionModel};
use crate::hardware::Hardware;
use crate::knobs::{Dbms, KnobSet};
use crate::optimizer::Optimizer;
use crate::physical::IndexCatalog;
use crate::plan::Plan;
use crate::plan_cache::{CacheStats, PlanCache, PlanKey};
use crate::stats::{extract, QueryPredicates};
use lt_common::{derive_seed, obs, secs, IndexId, Secs, VirtualClock};
use lt_sql::ast::Query;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Result of executing one query under a timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOutcome {
    /// True when the query finished before the timeout.
    pub completed: bool,
    /// Time charged to the clock: the full execution time when completed,
    /// the timeout otherwise.
    pub time: Secs,
}

/// A simulated database instance.
pub struct SimDb {
    dbms: Dbms,
    catalog: Catalog,
    hardware: Hardware,
    knobs: KnobSet,
    indexes: IndexCatalog,
    clock: VirtualClock,
    model: ExecutionModel,
    exec_counter: u64,
    knob_fingerprint: u64,
    queries_executed: u64,
    queries_completed: u64,
    plan_cache: PlanCache,
    /// `knobs.planner_fingerprint()`, refreshed on knob mutation so the hot
    /// execute path doesn't rehash the knob set per query.
    planner_fp: lt_common::Fingerprint,
    /// `catalog.fingerprint()`, computed once at construction (the catalog
    /// is immutable thereafter). Keys the shared cross-session plan tier
    /// and the fleet tuning cache.
    catalog_fp: lt_common::Fingerprint,
}

impl SimDb {
    /// Creates an instance with default knobs and no indexes. `seed` fixes
    /// the misestimation pattern and execution noise.
    pub fn new(dbms: Dbms, catalog: Catalog, hardware: Hardware, seed: u64) -> Self {
        let knobs = KnobSet::defaults(dbms);
        let planner_fp = knobs.planner_fingerprint();
        let catalog_fp = catalog.fingerprint();
        SimDb {
            dbms,
            catalog,
            hardware,
            knobs,
            indexes: IndexCatalog::new(),
            clock: VirtualClock::new(),
            model: ExecutionModel::new(derive_seed(seed, 1), derive_seed(seed, 2)),
            exec_counter: 0,
            knob_fingerprint: 0,
            queries_executed: 0,
            queries_completed: 0,
            plan_cache: PlanCache::new(),
            planner_fp,
            catalog_fp,
        }
    }

    /// Content fingerprint of this instance's catalog.
    pub fn catalog_fingerprint(&self) -> lt_common::Fingerprint {
        self.catalog_fp
    }

    /// The target system flavour.
    pub fn dbms(&self) -> Dbms {
        self.dbms
    }

    /// Schema and statistics.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Machine description.
    pub fn hardware(&self) -> Hardware {
        self.hardware
    }

    /// Active knob values.
    pub fn knobs(&self) -> &KnobSet {
        &self.knobs
    }

    /// Currently materialized indexes.
    pub fn indexes(&self) -> &IndexCatalog {
        &self.indexes
    }

    /// Replaces the execution-time cost constants (calibration:
    /// `store_bench` fits these against lt-store measurements). Plans and
    /// cached predicates are unaffected — the optimizer prices plans with
    /// its own cost model, so only *executed* times change.
    pub fn set_cost_constants(&mut self, costs: crate::executor::CostConstants) {
        self.model.set_costs(costs);
    }

    /// Current virtual time.
    pub fn now(&self) -> Secs {
        self.clock.now()
    }

    /// Charges externally-incurred latency (e.g. LLM API calls) to the
    /// tuning clock.
    pub fn clock_advance(&self, d: Secs) {
        self.clock.advance(d);
    }

    /// Number of `execute` calls so far.
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed
    }

    /// Number of executions that completed within their timeout.
    pub fn queries_completed(&self) -> u64 {
        self.queries_completed
    }

    // ---- configuration ----

    /// Applies the knob assignments of a configuration (indexes are *not*
    /// built here — callers create them lazily or eagerly as they choose).
    /// A configuration fully describes the parameter state: knobs it does
    /// not mention revert to their defaults. Charges reconfiguration time
    /// (config reload/restart) once.
    pub fn apply_knobs(&mut self, config: &Configuration) {
        self.knobs = KnobSet::defaults(self.dbms);
        let mut changed = 0;
        for (name, value) in config.knob_changes() {
            // Parse-time validation guarantees the knob exists.
            if self.knobs.set(name, value).is_ok() {
                changed += 1;
            }
        }
        self.clock.advance(self.model.reconfigure_time(changed));
        obs::counter("dbms.reconfigure", 1);
        self.refresh_fingerprint();
    }

    /// Resets every knob to its default. Charges reconfiguration time.
    pub fn reset_knobs(&mut self) {
        self.knobs = KnobSet::defaults(self.dbms);
        self.clock.advance(self.model.reconfigure_time(0));
        obs::counter("dbms.reconfigure", 1);
        self.refresh_fingerprint();
    }

    /// Builds an index, charging its build time. Building an index that
    /// already exists charges a trivial catalog lookup only.
    pub fn create_index(&mut self, spec: &IndexSpec) -> (IndexId, Secs) {
        if let Some(existing) = self.indexes.find(spec.table, &spec.columns) {
            let t = secs(0.01);
            self.clock.advance(t);
            return (existing, t);
        }
        let mut span = obs::span_vt("dbms.index_build", self.clock.now());
        let id = self
            .indexes
            .add(spec.table, spec.columns.clone(), spec.name.clone());
        let index = self.indexes.get(id).expect("just added").clone();
        let t = self.model.index_build_time(&index, &self.ctx());
        self.clock.advance(t);
        span.vt_end(self.clock.now());
        obs::counter("dbms.index_builds", 1);
        self.refresh_fingerprint();
        (id, t)
    }

    /// Estimated build time of an index *without* building it (what-if).
    pub fn estimate_index_build(&self, spec: &IndexSpec) -> Secs {
        let probe = crate::physical::Index {
            id: IndexId(u32::MAX),
            table: spec.table,
            columns: spec.columns.clone(),
            name: String::new(),
        };
        self.model.index_build_time(&probe, &self.ctx())
    }

    /// Drops one index, charging drop time. Returns whether it existed.
    pub fn drop_index(&mut self, id: IndexId) -> bool {
        let existed = self.indexes.remove(id);
        if existed {
            self.clock.advance(self.model.index_drop_time());
            self.refresh_fingerprint();
        }
        existed
    }

    /// Drops every index, charging per-index drop time.
    pub fn drop_all_indexes(&mut self) {
        let n = self.indexes.len() as f64;
        self.indexes.clear();
        self.clock
            .advance(secs(n * self.model.index_drop_time().as_f64()));
        self.refresh_fingerprint();
    }

    // ---- queries ----

    /// Executes a query under `timeout`. Charges `min(true time, timeout)`
    /// to the clock. Planning and predicate extraction are memoized (see
    /// [`cache_stats`](Self::cache_stats)).
    pub fn execute(&mut self, query: &Query, timeout: Secs) -> QueryOutcome {
        let tag = query_tag(query);
        let preds = self.predicates_cached(tag, query);
        let plan = self.plan_cached(tag, &preds);
        let time = self.model.execution_time(
            &plan,
            &preds,
            &self.ctx(),
            tag,
            self.knob_fingerprint,
            self.exec_counter,
        );
        self.exec_counter += 1;
        self.queries_executed += 1;
        obs::counter("dbms.query_exec", 1);
        if time <= timeout {
            self.clock.advance(time);
            self.queries_completed += 1;
            QueryOutcome {
                completed: true,
                time,
            }
        } else {
            self.clock.advance(timeout);
            obs::counter("dbms.query_timeout", 1);
            QueryOutcome {
                completed: false,
                time: timeout,
            }
        }
    }

    /// `EXPLAIN ANALYZE`: executes the query (charging its time to the
    /// clock) and returns the annotated plan text with estimated vs actual
    /// rows and per-operator time.
    pub fn explain_analyze(&mut self, query: &Query) -> (String, QueryOutcome) {
        let tag = query_tag(query);
        let preds = self.predicates_cached(tag, query);
        let plan = self.plan_cached(tag, &preds);
        let profile = self.model.profile(&plan, &preds, &self.ctx());
        let outcome = self.execute(query, lt_common::Secs::INFINITY);
        let mut text = String::new();
        for p in &profile {
            for _ in 0..p.depth {
                text.push_str("  ");
            }
            text.push_str(&format!(
                "{}  (rows est={:.0} actual={:.0}) (time={:.3}s)\n",
                p.op, p.est_rows, p.actual_rows, p.seconds
            ));
        }
        text.push_str(&format!("Execution Time: {:.3}\n", outcome.time));
        (text, outcome)
    }

    /// Plans a query under the current configuration (free: EXPLAIN).
    pub fn explain(&self, query: &Query) -> Plan {
        let tag = query_tag(query);
        let preds = self.predicates_cached(tag, query);
        (*self.plan_cached(tag, &preds)).clone()
    }

    /// Plans a query as if `hypothetical` were the index set (free what-if
    /// optimization, the primitive behind Dexter / DB2 Advisor).
    pub fn explain_with_indexes(&self, query: &Query, hypothetical: &IndexCatalog) -> Plan {
        let tag = query_tag(query);
        let preds = self.predicates_cached(tag, query);
        let key = PlanKey {
            query: tag,
            knobs: self.planner_fp,
            indexes: hypothetical.fingerprint_for_tables(&preds.tables),
        };
        let plan = self.plan_cache.plan_or_insert(key, || {
            Optimizer::new(
                &self.catalog,
                &self.knobs,
                hypothetical,
                self.model.stats_seed,
            )
            .plan_extracted(&preds)
        });
        (*plan).clone()
    }

    /// Plans a query under hypothetical knobs (free what-if).
    pub fn explain_with_knobs(&self, query: &Query, knobs: &KnobSet) -> Plan {
        let tag = query_tag(query);
        let preds = self.predicates_cached(tag, query);
        let key = PlanKey {
            query: tag,
            knobs: knobs.planner_fingerprint(),
            indexes: self.indexes.fingerprint_for_tables(&preds.tables),
        };
        let plan = self.plan_cache.plan_or_insert(key, || {
            Optimizer::new(&self.catalog, knobs, &self.indexes, self.model.stats_seed)
                .plan_extracted(&preds)
        });
        (*plan).clone()
    }

    /// Extracted predicates of `query`, memoized per query text. The schema
    /// catalog is immutable for the lifetime of the instance, so the query
    /// fingerprint alone keys the entry.
    pub fn predicates(&self, query: &Query) -> Arc<QueryPredicates> {
        self.predicates_cached(query_tag(query), query)
    }

    /// Plan-cache hit/miss counters (plans and predicate extractions).
    pub fn cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// Plan/extract-cache counters accumulated since the last
    /// [`SimDb::take_cache_window`] call (cumulative counters untouched).
    pub fn cache_window_stats(&self) -> CacheStats {
        self.plan_cache.window_stats()
    }

    /// Returns the windowed cache counters and starts a fresh window. The
    /// drift monitor calls this per observation interval: a *recent* hit
    /// rate can collapse even while the cumulative rate stays high.
    pub fn take_cache_window(&self) -> CacheStats {
        self.plan_cache.take_window()
    }

    fn predicates_cached(&self, tag: u64, query: &Query) -> Arc<QueryPredicates> {
        self.plan_cache
            .predicates_or_insert(tag, || extract(query, &self.catalog))
    }

    /// Plans under the *current* knobs and indexes through the cache.
    ///
    /// The index component of the key is the canonical fingerprint of the
    /// indexes on *this query's tables* only: creating an index on an
    /// unrelated table (the evaluator builds indexes lazily between tuning
    /// rounds) leaves every other query's cached plan valid.
    /// A local miss falls through to the process-wide shared tier (see
    /// [`crate::global_cache`]) before planning from scratch; fresh plans
    /// are published back so concurrent sessions on the same catalog and
    /// seed skip the optimizer entirely.
    fn plan_cached(&self, tag: u64, preds: &QueryPredicates) -> Arc<Plan> {
        let key = PlanKey {
            query: tag,
            knobs: self.planner_fp,
            indexes: self.indexes.fingerprint_for_tables(&preds.tables),
        };
        let global_key = crate::global_cache::GlobalPlanKey {
            catalog: self.catalog_fp,
            stats_seed: self.model.stats_seed,
            key,
        };
        self.plan_cache.plan_or_insert(key, || {
            if let Some(shared) = crate::global_cache::lookup(&global_key) {
                return (*shared).clone();
            }
            let plan = Optimizer::new(
                &self.catalog,
                &self.knobs,
                &self.indexes,
                self.model.stats_seed,
            )
            .plan_extracted(preds);
            crate::global_cache::publish(global_key, Arc::new(plan.clone()));
            plan
        })
    }

    fn ctx(&self) -> ExecutionContext<'_> {
        ExecutionContext {
            catalog: &self.catalog,
            knobs: &self.knobs,
            indexes: &self.indexes,
            hardware: &self.hardware,
        }
    }

    fn refresh_fingerprint(&mut self) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (name, value) in self.knobs.non_default() {
            name.hash(&mut h);
            value.as_f64().to_bits().hash(&mut h);
        }
        for idx in self.indexes.iter() {
            idx.table.hash(&mut h);
            idx.columns.hash(&mut h);
        }
        self.knob_fingerprint = h.finish();
        self.planner_fp = self.knobs.planner_fingerprint();
    }
}

/// Stable identifier of a query derived from its text.
pub fn query_tag(query: &Query) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    query.to_string().hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_sql::parse_query;

    fn db() -> SimDb {
        let mut c = Catalog::new();
        c.add_table("lineitem", 6_000_000)
            .primary_key("l_orderkey", 8)
            .column("l_shipdate", 4, 2_500.0)
            .column("l_quantity", 8, 50.0)
            .column("l_pad", 100, 100.0)
            .finish();
        c.add_table("orders", 1_500_000)
            .primary_key("o_orderkey", 8)
            .column("o_pad", 60, 100.0)
            .finish();
        SimDb::new(Dbms::Postgres, c, Hardware::p3_2xlarge(), 99)
    }

    #[test]
    fn execute_advances_clock_by_query_time() {
        let mut db = db();
        let q = parse_query("select count(*) from orders").unwrap();
        let before = db.now();
        let out = db.execute(&q, Secs::INFINITY);
        assert!(out.completed);
        assert_eq!(db.now(), before + out.time);
        assert_eq!(db.queries_executed(), 1);
        assert_eq!(db.queries_completed(), 1);
    }

    #[test]
    fn timeout_interrupts_and_charges_timeout_only() {
        let mut db = db();
        let q =
            parse_query("select * from lineitem, orders where l_orderkey = o_orderkey").unwrap();
        let tiny = secs(1e-3);
        let before = db.now();
        let out = db.execute(&q, tiny);
        assert!(!out.completed);
        assert_eq!(out.time, tiny);
        assert_eq!(db.now(), before + tiny);
        assert_eq!(db.queries_completed(), 0);
    }

    #[test]
    fn apply_knobs_charges_reconfiguration_time() {
        let mut db = db();
        let cfg = Configuration::parse(
            "ALTER SYSTEM SET work_mem = '1GB';",
            Dbms::Postgres,
            db.catalog(),
        );
        let before = db.now();
        db.apply_knobs(&cfg);
        assert!(db.now() > before);
        assert_eq!(db.knobs().get_f64("work_mem"), (1u64 << 30) as f64);
    }

    #[test]
    fn create_index_charges_build_time_and_is_idempotent() {
        let mut db = db();
        let spec = IndexSpec {
            table: db.catalog().table_by_name("lineitem").unwrap(),
            columns: vec![db.catalog().resolve_column(None, "l_orderkey").unwrap()],
            name: None,
        };
        let (id1, t1) = db.create_index(&spec);
        assert!(t1 > secs(0.01));
        let (id2, t2) = db.create_index(&spec);
        assert_eq!(id1, id2);
        assert!(t2 <= secs(0.01));
        assert_eq!(db.indexes().len(), 1);
    }

    #[test]
    fn drop_all_indexes_clears_catalog() {
        let mut db = db();
        let spec = IndexSpec {
            table: db.catalog().table_by_name("orders").unwrap(),
            columns: vec![db.catalog().resolve_column(None, "o_orderkey").unwrap()],
            name: None,
        };
        db.create_index(&spec);
        db.drop_all_indexes();
        assert!(db.indexes().is_empty());
    }

    #[test]
    fn tuned_config_beats_default_on_a_join() {
        let mut db = db();
        let q =
            parse_query("select * from lineitem, orders where l_orderkey = o_orderkey").unwrap();
        let t_default = db.execute(&q, Secs::INFINITY).time;
        let cfg = Configuration::parse(
            "ALTER SYSTEM SET work_mem = '4GB';\n\
             ALTER SYSTEM SET shared_buffers = '15GB';\n\
             ALTER SYSTEM SET max_parallel_workers_per_gather = '4';",
            Dbms::Postgres,
            db.catalog(),
        );
        db.apply_knobs(&cfg);
        let t_tuned = db.execute(&q, Secs::INFINITY).time;
        assert!(
            t_tuned < t_default,
            "tuned {t_tuned} should beat default {t_default}"
        );
    }

    #[test]
    fn explain_is_free() {
        let db = db();
        let q = parse_query("select count(*) from orders").unwrap();
        let before = db.now();
        let plan = db.explain(&q);
        assert!(plan.total_cost() > 0.0);
        assert_eq!(db.now(), before);
    }

    #[test]
    fn unrelated_index_creation_keeps_cached_plans_valid() {
        let mut db = db();
        let q = parse_query("select count(*) from orders").unwrap();
        db.execute(&q, Secs::INFINITY);
        let misses_before = db.cache_stats().plan_misses;
        // Lazy index creation on a table the query never touches (the
        // evaluator does this between tuning rounds) must not invalidate
        // the cached plan.
        let spec = IndexSpec {
            table: db.catalog().table_by_name("lineitem").unwrap(),
            columns: vec![db.catalog().resolve_column(None, "l_shipdate").unwrap()],
            name: None,
        };
        db.create_index(&spec);
        db.execute(&q, Secs::INFINITY);
        let stats = db.cache_stats();
        assert_eq!(stats.plan_misses, misses_before, "plan was re-planned");
        assert!(stats.plan_hits >= 1);
        // An index on the query's own table *does* key a fresh plan.
        let spec = IndexSpec {
            table: db.catalog().table_by_name("orders").unwrap(),
            columns: vec![db.catalog().resolve_column(None, "o_orderkey").unwrap()],
            name: None,
        };
        db.create_index(&spec);
        db.execute(&q, Secs::INFINITY);
        assert_eq!(db.cache_stats().plan_misses, misses_before + 1);
    }

    #[test]
    fn what_if_indexes_change_plans_without_materializing() {
        let db = db();
        let q = parse_query("select * from orders where o_orderkey = 5").unwrap();
        let mut hyp = IndexCatalog::new();
        hyp.add(
            db.catalog().table_by_name("orders").unwrap(),
            vec![db.catalog().resolve_column(None, "o_orderkey").unwrap()],
            None,
        );
        let mut cheap = KnobSet::defaults(Dbms::Postgres);
        cheap.set_text("random_page_cost", "1.1").unwrap();
        cheap.set_text("effective_cache_size", "45GB").unwrap();
        // Compare plan costs with and without the hypothetical index under
        // index-friendly knobs.
        let base = db.explain_with_knobs(&q, &cheap);
        let opt = Optimizer::new(db.catalog(), &cheap, &hyp, 1);
        let with_idx = opt.plan(&q);
        assert!(with_idx.total_cost() < base.total_cost());
        assert!(db.indexes().is_empty());
    }

    #[test]
    fn explain_analyze_reports_est_vs_actual() {
        let mut db = db();
        let q =
            parse_query("select * from lineitem, orders where l_orderkey = o_orderkey").unwrap();
        let (text, outcome) = db.explain_analyze(&q);
        assert!(outcome.completed);
        assert!(text.contains("rows est="), "{text}");
        assert!(text.contains("actual="), "{text}");
        assert!(text.contains("Execution Time"), "{text}");
        // The join node appears with both children indented below it.
        assert!(
            text.contains("Hash Join") || text.contains("Merge Join"),
            "{text}"
        );
    }

    #[test]
    fn reset_knobs_restores_defaults() {
        let mut db = db();
        let cfg = Configuration::parse(
            "ALTER SYSTEM SET work_mem = '1GB';",
            Dbms::Postgres,
            db.catalog(),
        );
        db.apply_knobs(&cfg);
        db.reset_knobs();
        assert!(db.knobs().non_default().is_empty());
    }
}
