//! Physical query plans.
//!
//! The optimizer produces a [`PlanNode`] tree; the execution model walks the
//! same tree to derive simulated run time. Nodes carry the information both
//! consumers need: the operator, estimated output cardinality, estimated
//! *cumulative* planner cost (PostgreSQL-style arbitrary units) and output
//! width.

use lt_common::{ColumnId, IndexId, TableId};
use std::fmt;

/// Physical operator.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Full scan of a base table with residual filter selectivity.
    SeqScan {
        /// Scanned table.
        table: TableId,
        /// Estimated fraction of rows surviving the filter.
        selectivity: f64,
    },
    /// B-tree index scan driven by a filter or join key.
    IndexScan {
        /// Scanned table.
        table: TableId,
        /// Index used.
        index: IndexId,
        /// Estimated fraction of rows fetched.
        selectivity: f64,
    },
    /// Hash join; the **second** child is the build side.
    HashJoin {
        /// All equality conditions evaluated by this join, as
        /// `(probe key, build key)` pairs; the first is the hash key.
        keys: Vec<(ColumnId, ColumnId)>,
        /// True when the build side exceeds work memory and spills.
        spills: bool,
    },
    /// Sort-merge join.
    MergeJoin {
        /// All equality conditions, first pair is the sort key.
        keys: Vec<(ColumnId, ColumnId)>,
    },
    /// Nested-loop join; the second child is the inner side, optionally
    /// driven by an index lookup per outer row.
    NestLoopJoin {
        /// All equality conditions, `(outer key, inner key)`; the first
        /// pair drives the index lookup.
        keys: Vec<(ColumnId, ColumnId)>,
        /// Index on the inner relation's join key, if used.
        inner_index: Option<IndexId>,
    },
    /// Cartesian product (no join predicate connects the inputs).
    CrossJoin,
    /// Sort, e.g. for ORDER BY; spills when input exceeds work memory.
    Sort {
        /// True when the sort exceeds work memory.
        spills: bool,
    },
    /// Aggregation (hash or sorted; the model does not distinguish).
    Aggregate {
        /// True for GROUP BY (vs a single scalar aggregate row).
        grouped: bool,
    },
    /// Parallel gather of worker partial results.
    Gather {
        /// Number of parallel workers (excluding the leader).
        workers: u32,
    },
    /// LIMIT.
    Limit {
        /// Row budget.
        rows: u64,
    },
}

impl PlanOp {
    /// Short operator name as shown in EXPLAIN output.
    pub fn name(&self) -> &'static str {
        match self {
            PlanOp::SeqScan { .. } => "Seq Scan",
            PlanOp::IndexScan { .. } => "Index Scan",
            PlanOp::HashJoin { .. } => "Hash Join",
            PlanOp::MergeJoin { .. } => "Merge Join",
            PlanOp::NestLoopJoin { .. } => "Nested Loop",
            PlanOp::CrossJoin => "Cross Join",
            PlanOp::Sort { .. } => "Sort",
            PlanOp::Aggregate { .. } => "Aggregate",
            PlanOp::Gather { .. } => "Gather",
            PlanOp::Limit { .. } => "Limit",
        }
    }
}

/// A node of the physical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Physical operator.
    pub op: PlanOp,
    /// Inputs (0 for scans, 1 for sorts/aggregates, 2 for joins).
    pub children: Vec<PlanNode>,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated cumulative cost in planner units (includes children).
    pub est_cost: f64,
    /// Estimated output row width in bytes.
    pub width: f64,
}

impl PlanNode {
    /// Creates a leaf node.
    pub fn leaf(op: PlanOp, est_rows: f64, est_cost: f64, width: f64) -> Self {
        PlanNode {
            op,
            children: Vec::new(),
            est_rows,
            est_cost,
            width,
        }
    }

    /// Pre-order traversal.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a PlanNode)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Collects every base table scanned by the plan.
    pub fn scanned_tables(&self) -> Vec<TableId> {
        let mut tables = Vec::new();
        self.visit(&mut |n| match n.op {
            PlanOp::SeqScan { table, .. } | PlanOp::IndexScan { table, .. } => tables.push(table),
            _ => {}
        });
        tables.sort_unstable();
        tables.dedup();
        tables
    }

    /// Collects every index used by the plan.
    pub fn used_indexes(&self) -> Vec<IndexId> {
        let mut idx = Vec::new();
        self.visit(&mut |n| match n.op {
            PlanOp::IndexScan { index, .. } => idx.push(index),
            PlanOp::NestLoopJoin {
                inner_index: Some(i),
                ..
            } => idx.push(i),
            _ => {}
        });
        idx.sort_unstable();
        idx.dedup();
        idx
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        for _ in 0..depth {
            f.write_str("  ")?;
        }
        let detail = match &self.op {
            PlanOp::SeqScan { table, selectivity } => {
                format!(" on {table} (sel={selectivity:.4})")
            }
            PlanOp::IndexScan {
                table,
                index,
                selectivity,
            } => {
                format!(" on {table} using {index} (sel={selectivity:.4})")
            }
            PlanOp::HashJoin { keys, spills } => format!(
                " ({}){}",
                fmt_keys(keys),
                if *spills { " [spills]" } else { "" }
            ),
            PlanOp::MergeJoin { keys } | PlanOp::NestLoopJoin { keys, .. } => {
                format!(" ({})", fmt_keys(keys))
            }
            PlanOp::Gather { workers } => format!(" (workers={workers})"),
            PlanOp::Limit { rows } => format!(" ({rows})"),
            _ => String::new(),
        };
        writeln!(
            f,
            "{}{}  (rows={:.0} cost={:.2} width={:.0})",
            self.op.name(),
            detail,
            self.est_rows,
            self.est_cost,
            self.width
        )?;
        for c in &self.children {
            c.fmt_indented(f, depth + 1)?;
        }
        Ok(())
    }
}

fn fmt_keys(keys: &[(ColumnId, ColumnId)]) -> String {
    keys.iter()
        .map(|(l, r)| format!("{l} = {r}"))
        .collect::<Vec<_>>()
        .join(" and ")
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// A complete plan: the operator tree plus per-join-condition cost
/// attribution (used by the workload compressor to value join snippets —
/// paper §3.2's `EC_j` obtained via EXPLAIN).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Root of the operator tree.
    pub root: PlanNode,
    /// For each equality join evaluated by the plan: the column pair and the
    /// estimated cost of the join operator evaluating it (planner units).
    pub join_costs: Vec<(ColumnId, ColumnId, f64)>,
}

impl Plan {
    /// Total estimated plan cost (planner units).
    pub fn total_cost(&self) -> f64 {
        self.root.est_cost
    }

    /// EXPLAIN-style text rendering.
    pub fn explain(&self) -> String {
        self.root.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(table: u32, cost: f64) -> PlanNode {
        PlanNode::leaf(
            PlanOp::SeqScan {
                table: TableId(table),
                selectivity: 0.5,
            },
            100.0,
            cost,
            32.0,
        )
    }

    #[test]
    fn visit_counts_nodes() {
        let join = PlanNode {
            op: PlanOp::HashJoin {
                keys: vec![(ColumnId(0), ColumnId(1))],
                spills: false,
            },
            children: vec![scan(0, 10.0), scan(1, 20.0)],
            est_rows: 50.0,
            est_cost: 40.0,
            width: 64.0,
        };
        assert_eq!(join.node_count(), 3);
        assert_eq!(join.scanned_tables(), vec![TableId(0), TableId(1)]);
    }

    #[test]
    fn used_indexes_includes_nestloop_inner() {
        let nl = PlanNode {
            op: PlanOp::NestLoopJoin {
                keys: vec![(ColumnId(0), ColumnId(1))],
                inner_index: Some(IndexId(7)),
            },
            children: vec![
                scan(0, 10.0),
                PlanNode::leaf(
                    PlanOp::IndexScan {
                        table: TableId(1),
                        index: IndexId(7),
                        selectivity: 0.01,
                    },
                    1.0,
                    0.5,
                    16.0,
                ),
            ],
            est_rows: 10.0,
            est_cost: 20.0,
            width: 48.0,
        };
        assert_eq!(nl.used_indexes(), vec![IndexId(7)]);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = Plan {
            root: scan(3, 12.5),
            join_costs: vec![],
        };
        let text = plan.explain();
        assert!(text.contains("Seq Scan on t3"), "{text}");
        assert!(text.contains("cost=12.50"), "{text}");
        assert_eq!(plan.total_cost(), 12.5);
    }
}
