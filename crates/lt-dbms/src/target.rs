//! The tuning-target trait: the database surface every tuner consumes.
//!
//! `lambda-tune`'s pipeline, the baselines, drift re-tuning and the fleet
//! cache never needed anything from [`SimDb`](crate::SimDb) beyond the
//! methods below — planning, timed execution, index DDL, knob
//! reconfiguration and catalog/statistics access. [`TuningTarget`] names
//! that surface so a second backend (the real storage engine in
//! `lt-store`) can stand in for the simulator behind the same tuners.
//!
//! The trait is object-safe on purpose: `lt-serve` holds its per-session
//! database as `Box<dyn TuningTarget + Send>` and picks the backend at
//! request time (`LT_BACKEND` / `"backend"` in the request body).
//!
//! The `SimDb` implementation is pure delegation to the inherent methods,
//! so existing callers — and the bytes of every committed `results/*.json`
//! — are unaffected by the extraction.

use crate::catalog::Catalog;
use crate::config::{Configuration, IndexSpec};
use crate::db::{QueryOutcome, SimDb};
use crate::hardware::Hardware;
use crate::knobs::{Dbms, KnobSet};
use crate::physical::IndexCatalog;
use crate::plan::Plan;
use crate::plan_cache::CacheStats;
use crate::stats::QueryPredicates;
use lt_common::{Fingerprint, IndexId, Secs};
use lt_sql::ast::Query;
use std::sync::Arc;

/// A database system a tuner can observe and reconfigure.
///
/// Timed execution charges a clock (virtual seconds for the simulator,
/// measured wall seconds for a real engine); everything else — planning,
/// catalog statistics, index DDL, knob application — is the shared
/// vocabulary of the λ-Tune pipeline and the baselines.
pub trait TuningTarget {
    /// Which system's knob/script dialect this target speaks.
    fn dbms(&self) -> Dbms;
    /// The schema + statistics the optimizer plans against.
    fn catalog(&self) -> &Catalog;
    /// The machine the target (claims to) run on.
    fn hardware(&self) -> Hardware;
    /// Current knob values.
    fn knobs(&self) -> &KnobSet;
    /// Current secondary indexes.
    fn indexes(&self) -> &IndexCatalog;
    /// Fingerprint of the catalog (fleet-cache keying).
    fn catalog_fingerprint(&self) -> Fingerprint;

    /// The tuning clock, seconds since the target was created.
    fn now(&self) -> Secs;
    /// Advances the tuning clock without doing work (models time spent
    /// outside the database: LLM calls, optimizer thinking, …).
    fn clock_advance(&self, d: Secs);
    /// Queries started over the target's lifetime.
    fn queries_executed(&self) -> u64;
    /// Queries that ran to completion (no timeout).
    fn queries_completed(&self) -> u64;

    /// Applies a configuration's knob commands (index commands are the
    /// caller's business via [`TuningTarget::create_index`]), charging
    /// reconfiguration time to the clock.
    fn apply_knobs(&mut self, config: &Configuration);
    /// Restores default knob values.
    fn reset_knobs(&mut self);
    /// Builds a secondary index (idempotent), returning its id and the
    /// build time charged to the clock.
    fn create_index(&mut self, spec: &IndexSpec) -> (IndexId, Secs);
    /// Estimated build time of `spec` without building it.
    fn estimate_index_build(&self, spec: &IndexSpec) -> Secs;
    /// Drops one index; false when the id is unknown.
    fn drop_index(&mut self, id: IndexId) -> bool;
    /// Drops every secondary index.
    fn drop_all_indexes(&mut self);

    /// Runs `query` under the current configuration with a time cap,
    /// charging the (possibly truncated) execution time to the clock.
    fn execute(&mut self, query: &Query, timeout: Secs) -> QueryOutcome;
    /// Plans `query` under the current configuration.
    fn explain(&self, query: &Query) -> Plan;
    /// Plans `query` as if `hypothetical` were the index set (what-if
    /// advising; nothing is built).
    fn explain_with_indexes(&self, query: &Query, hypothetical: &IndexCatalog) -> Plan;
    /// Plans `query` as if `knobs` were in force (nothing is applied).
    fn explain_with_knobs(&self, query: &Query, knobs: &KnobSet) -> Plan;
    /// `EXPLAIN ANALYZE`: the rendered plan plus a real timed execution.
    fn explain_analyze(&mut self, query: &Query) -> (String, QueryOutcome);
    /// Extracted (cached) predicate summary of `query`.
    fn predicates(&self, query: &Query) -> Arc<QueryPredicates>;

    /// Lifetime plan/extract cache counters.
    fn cache_stats(&self) -> CacheStats;
    /// Cache counters since the last [`TuningTarget::take_cache_window`].
    fn cache_window_stats(&self) -> CacheStats;
    /// Drains and returns the windowed cache counters.
    fn take_cache_window(&self) -> CacheStats;
}

impl TuningTarget for SimDb {
    fn dbms(&self) -> Dbms {
        SimDb::dbms(self)
    }
    fn catalog(&self) -> &Catalog {
        SimDb::catalog(self)
    }
    fn hardware(&self) -> Hardware {
        SimDb::hardware(self)
    }
    fn knobs(&self) -> &KnobSet {
        SimDb::knobs(self)
    }
    fn indexes(&self) -> &IndexCatalog {
        SimDb::indexes(self)
    }
    fn catalog_fingerprint(&self) -> Fingerprint {
        SimDb::catalog_fingerprint(self)
    }
    fn now(&self) -> Secs {
        SimDb::now(self)
    }
    fn clock_advance(&self, d: Secs) {
        SimDb::clock_advance(self, d)
    }
    fn queries_executed(&self) -> u64 {
        SimDb::queries_executed(self)
    }
    fn queries_completed(&self) -> u64 {
        SimDb::queries_completed(self)
    }
    fn apply_knobs(&mut self, config: &Configuration) {
        SimDb::apply_knobs(self, config)
    }
    fn reset_knobs(&mut self) {
        SimDb::reset_knobs(self)
    }
    fn create_index(&mut self, spec: &IndexSpec) -> (IndexId, Secs) {
        SimDb::create_index(self, spec)
    }
    fn estimate_index_build(&self, spec: &IndexSpec) -> Secs {
        SimDb::estimate_index_build(self, spec)
    }
    fn drop_index(&mut self, id: IndexId) -> bool {
        SimDb::drop_index(self, id)
    }
    fn drop_all_indexes(&mut self) {
        SimDb::drop_all_indexes(self)
    }
    fn execute(&mut self, query: &Query, timeout: Secs) -> QueryOutcome {
        SimDb::execute(self, query, timeout)
    }
    fn explain(&self, query: &Query) -> Plan {
        SimDb::explain(self, query)
    }
    fn explain_with_indexes(&self, query: &Query, hypothetical: &IndexCatalog) -> Plan {
        SimDb::explain_with_indexes(self, query, hypothetical)
    }
    fn explain_with_knobs(&self, query: &Query, knobs: &KnobSet) -> Plan {
        SimDb::explain_with_knobs(self, query, knobs)
    }
    fn explain_analyze(&mut self, query: &Query) -> (String, QueryOutcome) {
        SimDb::explain_analyze(self, query)
    }
    fn predicates(&self, query: &Query) -> Arc<QueryPredicates> {
        SimDb::predicates(self, query)
    }
    fn cache_stats(&self) -> CacheStats {
        SimDb::cache_stats(self)
    }
    fn cache_window_stats(&self) -> CacheStats {
        SimDb::cache_window_stats(self)
    }
    fn take_cache_window(&self) -> CacheStats {
        SimDb::take_cache_window(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("lineitem", 6_000_000)
            .primary_key("l_orderkey", 8)
            .column("l_quantity", 8, 50.0)
            .finish();
        c.add_table("orders", 1_500_000)
            .primary_key("o_orderkey", 8)
            .finish();
        c
    }

    /// The trait must stay usable as `dyn TuningTarget` (lt-serve boxes
    /// it), and delegation must agree with the inherent methods.
    #[test]
    fn simdb_behind_the_trait_matches_the_inherent_surface() {
        let mut inherent = SimDb::new(Dbms::Postgres, catalog(), Hardware::p3_2xlarge(), 7);
        let mut boxed: Box<dyn TuningTarget> = Box::new(SimDb::new(
            Dbms::Postgres,
            catalog(),
            Hardware::p3_2xlarge(),
            7,
        ));
        assert_eq!(boxed.catalog_fingerprint(), inherent.catalog_fingerprint());
        let queries = [
            "select count(*) from orders",
            "select * from lineitem, orders where l_orderkey = o_orderkey",
        ];
        for sql in queries {
            let q = parse_query(sql).unwrap();
            let a = inherent.execute(&q, Secs::INFINITY);
            let b = boxed.execute(&q, Secs::INFINITY);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.time, b.time, "{sql}");
        }
        assert_eq!(inherent.now(), boxed.now());
        assert_eq!(inherent.queries_completed(), boxed.queries_completed());
    }
}
