//! Process-wide plan-cache tier shared across per-session [`SimDb`]s.
//!
//! Under fleet load many tenants tune against the same catalog with the
//! same knob/index configurations, but each session owns a private
//! [`PlanCache`](crate::PlanCache) that starts cold. This tier sits behind
//! the per-session cache as a read-through: a local miss consults the
//! shared map before planning, and freshly planned entries are published
//! back. Sharing is safe because planning is pure — a plan depends only on
//! (catalog, statistics seed, query, planner knobs, index set), all of
//! which are folded into [`GlobalPlanKey`]. The statistics seed matters:
//! two sessions with different `stats_seed`s see different misestimation
//! patterns and therefore different plans for the same query.
//!
//! Bounded LRU (`LT_GLOBAL_PLAN_CAP`, evictions counted as
//! `fleet.plan_shared_evict`). Disabled by `LT_GLOBAL_PLAN_CACHE=0` or,
//! together with every other cache, by `LT_PLAN_CACHE=0`.
//!
//! [`SimDb`]: crate::SimDb

use crate::plan::Plan;
use crate::plan_cache::PlanKey;
use lt_common::lru::{cap_from_env, LruMap};
use lt_common::{obs, Fingerprint};
use std::sync::{Arc, Mutex, OnceLock};

/// Default bound on the shared tier; override with `LT_GLOBAL_PLAN_CAP`.
const DEFAULT_GLOBAL_CAP: usize = 16_384;

/// Key of one shared plan: the session-local [`PlanKey`] widened by the
/// facts that vary *between* sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalPlanKey {
    /// `Catalog::fingerprint()` of the schema + statistics planned against.
    pub catalog: Fingerprint,
    /// Statistics seed of the session's execution model: it perturbs the
    /// optimizer's estimates, so plans are only shareable at equal seeds.
    pub stats_seed: u64,
    /// The session-local planning context (query, knobs, indexes).
    pub key: PlanKey,
}

type SharedTier = Option<Mutex<LruMap<GlobalPlanKey, Arc<Plan>>>>;

fn shared_plans() -> Option<&'static Mutex<LruMap<GlobalPlanKey, Arc<Plan>>>> {
    static TIER: OnceLock<SharedTier> = OnceLock::new();
    TIER.get_or_init(|| {
        let off = |var: &str| {
            matches!(
                std::env::var(var).as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            )
        };
        let enabled = !off("LT_PLAN_CACHE") && !off("LT_GLOBAL_PLAN_CACHE");
        enabled.then(|| {
            Mutex::new(LruMap::new(cap_from_env(
                "LT_GLOBAL_PLAN_CAP",
                DEFAULT_GLOBAL_CAP,
            )))
        })
    })
    .as_ref()
}

/// Looks a plan up in the shared tier. Counts `fleet.plan_shared_hit` /
/// `fleet.plan_shared_miss`; returns `None` when the tier is disabled
/// (without counting — a disabled tier is not a miss, it is absent).
pub fn lookup(key: &GlobalPlanKey) -> Option<Arc<Plan>> {
    let tier = shared_plans()?;
    match tier.lock().unwrap().get(key) {
        Some(plan) => {
            obs::counter("fleet.plan_shared_hit", 1);
            Some(Arc::clone(plan))
        }
        None => {
            obs::counter("fleet.plan_shared_miss", 1);
            None
        }
    }
}

/// Publishes a freshly planned entry to the shared tier (no-op when
/// disabled). Counts `fleet.plan_shared_evict` when the insert displaced
/// the coldest entry.
pub fn publish(key: GlobalPlanKey, plan: Arc<Plan>) {
    if let Some(tier) = shared_plans() {
        let mut guard = tier.lock().unwrap();
        if !guard.contains(&key) && guard.insert(key, plan).is_some() {
            obs::counter("fleet.plan_shared_evict", 1);
        }
    }
}

/// Live entry count of the shared tier (0 when disabled). For tests and
/// diagnostics.
pub fn len() -> usize {
    shared_plans().map_or(0, |t| t.lock().unwrap().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanNode, PlanOp};
    use lt_common::TableId;

    fn gkey(catalog: u64, seed: u64, query: u64) -> GlobalPlanKey {
        GlobalPlanKey {
            catalog: Fingerprint(catalog),
            stats_seed: seed,
            key: PlanKey {
                query,
                knobs: Fingerprint(1),
                indexes: Fingerprint(2),
            },
        }
    }

    fn plan(cost: f64) -> Arc<Plan> {
        Arc::new(Plan {
            root: PlanNode::leaf(
                PlanOp::SeqScan {
                    table: TableId(0),
                    selectivity: 1.0,
                },
                1.0,
                cost,
                8.0,
            ),
            join_costs: Vec::new(),
        })
    }

    #[test]
    fn publish_then_lookup_round_trips() {
        let key = gkey(0xFEE7, 1, 99);
        assert!(lookup(&key).is_none());
        let p = plan(5.0);
        publish(key, Arc::clone(&p));
        let hit = lookup(&key).expect("published plan");
        assert!(Arc::ptr_eq(&hit, &p));
        // A different stats seed is a different plan identity.
        assert!(lookup(&gkey(0xFEE7, 2, 99)).is_none());
        // As is a different catalog.
        assert!(lookup(&gkey(0xBEEF, 1, 99)).is_none());
    }
}
