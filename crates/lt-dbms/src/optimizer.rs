//! Cost-based query optimizer.
//!
//! A Selinger-style planner: per-table access-path selection (sequential
//! scan vs B-tree index scan) followed by dynamic-programming join ordering
//! over left-deep trees, with hash, merge and index-nested-loop join
//! methods. All cost formulas use the knobs' planner constants
//! (`seq_page_cost`, `random_page_cost`, `cpu_*_cost`, `effective_cache_size`,
//! `work_mem`), so configuration changes move plan choices exactly the way
//! they do in PostgreSQL — the behaviour λ-Tune's generated configurations
//! exploit (paper §6.3: lowering `random_page_cost` and raising
//! `effective_cache_size` "motivate the query optimizer to use indexes more
//! often").
//!
//! # Join enumeration
//!
//! The production enumerator ([`JoinEnumerator::Auto`]) is a DPccp-style
//! dynamic program ([`Optimizer::dpccp_join`]): instead of enumerating all
//! `2^n` subsets into a `HashMap` of cloned plan trees, it walks only the
//! *connected* subsets of the join graph (disconnected subsets can never
//! appear in an edge-linked plan), keeps a dense `Vec`-indexed memo of
//! `(cost, rows, width, best_split)` cells over bitmasks, prunes subsets
//! that already cost more than a greedy pilot plan for their component
//! (admissible: the optimum is never pruned), and reconstructs the single
//! winning `PlanNode` tree once at the end. That makes full DP affordable
//! for every Join Order Benchmark query (the original JOB joins up to 17
//! relations); beyond [`DEFAULT_DP_RELATION_LIMIT`] a greedy heuristic
//! (PostgreSQL's GEQO analogue) takes over. The pre-DPccp planner is preserved verbatim as
//! [`JoinEnumerator::Legacy`] so benchmarks and property tests can compare
//! old vs new plans.

use crate::catalog::{Catalog, PAGE_SIZE};
use crate::knobs::KnobSet;
use crate::physical::IndexCatalog;
use crate::plan::{Plan, PlanNode, PlanOp};
use crate::stats::{extract, Estimator, FilterKind, QueryPredicates};
use lt_common::{obs, ColumnId, IndexId, TableId};
use lt_sql::ast::Query;
use std::collections::HashMap;
use std::sync::OnceLock;

/// DP ceiling of the pre-DPccp planner. Kept as (a) the `Legacy`
/// enumerator's naive-DP cutoff and (b) the width above which `Auto` also
/// runs the greedy heuristic and keeps the cheaper plan: greedy can build
/// bushy trees the left-deep DP space does not contain, so this guarantees
/// the DP upgrade never regresses a query that the old planner handled
/// greedily.
pub const LEGACY_DP_RELATION_LIMIT: usize = 13;

/// Default maximum number of relations planned with exact DP. The original
/// Join Order Benchmark's widest queries join 17 relations (our single-alias
/// repro caps at 12), so every JOB query gets a full DP plan with headroom.
/// Override with `LT_DP_LIMIT` (clamped to [1, 26]); beyond the limit the
/// planner falls back to the greedy heuristic.
pub const DEFAULT_DP_RELATION_LIMIT: usize = 17;

/// Hard ceiling on dense-memo DP: the memo is `Vec`-indexed by bitmask, so
/// memory is `32 bytes * 2^n`. 26 relations ⇒ 2 GiB would be absurd anyway;
/// `LT_DP_LIMIT` is clamped here.
const DENSE_DP_MAX: usize = 26;

fn env_dp_limit() -> usize {
    static LIMIT: OnceLock<usize> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        std::env::var("LT_DP_LIMIT")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|v| v.clamp(1, DENSE_DP_MAX))
            .unwrap_or(DEFAULT_DP_RELATION_LIMIT)
    })
}

/// Join-enumeration strategy (see module docs). `Auto` is what production
/// planning uses; the other variants exist for `planner_bench` and the
/// enumerator property-test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinEnumerator {
    /// DPccp up to the configured relation limit, greedy beyond; between
    /// [`LEGACY_DP_RELATION_LIMIT`] and the limit the greedy plan is also
    /// built and the cheaper of the two wins.
    Auto,
    /// Force DPccp regardless of width (falls back to greedy only above
    /// the dense-memo ceiling). Test/bench use.
    Dpccp,
    /// Force the naive all-subsets `HashMap` DP. Test/bench use only —
    /// exponential in both time and cloned plan trees.
    NaiveDp,
    /// Force the greedy heuristic.
    Greedy,
    /// The exact pre-DPccp production policy: naive DP up to
    /// [`LEGACY_DP_RELATION_LIMIT`], greedy beyond.
    Legacy,
}

/// Planner cost constants resolved once per planner instance (knob lookups
/// are string-keyed; the DP inner loop must not pay for them per candidate).
/// Every value is computed with exactly the expression the cost formulas
/// used inline, so plans are bit-identical to per-call lookup.
#[derive(Debug, Clone, Copy)]
struct PlannerCosts {
    seq_page: f64,
    cpu_tuple: f64,
    cpu_index_tuple: f64,
    /// `cpu_tuple * 0.25`, the per-comparison operator cost.
    cpu_op: f64,
    eff_random_page: f64,
    work_mem_bytes: f64,
}

/// The query planner.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    knobs: &'a KnobSet,
    indexes: &'a IndexCatalog,
    est: Estimator<'a>,
    costs: PlannerCosts,
    dp_limit: usize,
}

/// One candidate access path / partial join result during planning.
#[derive(Debug, Clone)]
struct Candidate {
    node: PlanNode,
    /// Tables covered by this candidate.
    tables: u64,
}

/// Scalar view of one join input: everything the cost formulas need,
/// without materializing a plan tree.
#[derive(Debug, Clone, Copy)]
struct JoinSide {
    rows: f64,
    cost: f64,
    width: f64,
}

impl JoinSide {
    fn of(node: &PlanNode) -> JoinSide {
        JoinSide {
            rows: node.est_rows,
            cost: node.est_cost,
            width: node.width,
        }
    }
}

/// Join method picked by [`Optimizer::choose_join`], with enough detail to
/// rebuild the corresponding `PlanNode` exactly.
#[derive(Debug, Clone, Copy)]
enum JoinMethod {
    Cross,
    Hash {
        /// True when the inner input is the probe side (build on outer).
        swapped: bool,
        spills: bool,
    },
    Merge,
    IndexNl {
        index: IndexId,
        per_probe: f64,
        matches_per_probe: f64,
        lookup_sel: f64,
    },
}

/// Outcome of scalar join costing.
#[derive(Debug, Clone, Copy)]
struct JoinChoice {
    method: JoinMethod,
    rows: f64,
    cost: f64,
}

/// Dense DP memo cell: the best left-deep plan for one table subset, as
/// scalars plus the last-joined table for reconstruction. Empty cells carry
/// an infinite cost.
#[derive(Debug, Clone, Copy)]
struct DpCell {
    cost: f64,
    rows: f64,
    width: f64,
    split: u8,
}

impl DpCell {
    const EMPTY: DpCell = DpCell {
        cost: f64::INFINITY,
        rows: 0.0,
        width: 0.0,
        split: u8::MAX,
    };

    fn is_empty(&self) -> bool {
        self.cost.is_infinite()
    }
}

/// One join-graph edge with both endpoints resolved to `preds.tables`
/// indexes and its estimated selectivity computed once.
#[derive(Debug, Clone, Copy)]
struct GraphEdge {
    li: usize,
    ri: usize,
    left: ColumnId,
    right: ColumnId,
    sel: f64,
}

/// The query's join graph, preprocessed for O(degree) connection tests: the
/// naive enumerator re-resolved every edge's tables and re-estimated its
/// selectivity on every `connection()` call.
struct JoinGraph {
    n: usize,
    edges: Vec<GraphEdge>,
    /// Edge indexes incident to each table, ascending — i.e. in global
    /// `preds.joins` order, which fixes key order and selectivity
    /// multiplication order exactly as the naive enumerator had them.
    edges_at: Vec<Vec<usize>>,
    /// Adjacency bitmasks.
    adj: Vec<u64>,
}

impl JoinGraph {
    fn build(catalog: &Catalog, est: &Estimator<'_>, preds: &QueryPredicates) -> JoinGraph {
        let n = preds.tables.len();
        let mut edges = Vec::with_capacity(preds.joins.len());
        let mut edges_at = vec![Vec::new(); n];
        let mut adj = vec![0u64; n];
        for edge in &preds.joins {
            let lt = catalog.column(edge.left).table;
            let rt = catalog.column(edge.right).table;
            let li = preds.tables.iter().position(|t| *t == lt);
            let ri = preds.tables.iter().position(|t| *t == rt);
            let (Some(li), Some(ri)) = (li, ri) else {
                continue;
            };
            if li == ri {
                continue;
            }
            let e = edges.len();
            edges.push(GraphEdge {
                li,
                ri,
                left: edge.left,
                right: edge.right,
                sel: est.estimated_join_selectivity(*edge),
            });
            edges_at[li].push(e);
            edges_at[ri].push(e);
            adj[li] |= 1 << ri;
            adj[ri] |= 1 << li;
        }
        JoinGraph {
            n,
            edges,
            edges_at,
            adj,
        }
    }

    /// First (outer key, inner key) pair and combined selectivity of the
    /// edges linking `covered` to table `t` — the scalars join costing
    /// needs, without allocating the full key vector.
    fn connection_first(&self, covered: u64, t: usize) -> Option<(ColumnId, ColumnId, f64)> {
        let mut sel = 1.0;
        let mut first: Option<(ColumnId, ColumnId)> = None;
        for &e in &self.edges_at[t] {
            let ed = &self.edges[e];
            let (ok, ik) = if ed.ri == t && covered & (1 << ed.li) != 0 {
                (ed.left, ed.right)
            } else if ed.li == t && covered & (1 << ed.ri) != 0 {
                (ed.right, ed.left)
            } else {
                continue;
            };
            sel *= ed.sel;
            if first.is_none() {
                first = Some((ok, ik));
            }
        }
        first.map(|(ok, ik)| (ok, ik, sel))
    }

    /// All connecting key pairs plus combined selectivity (reconstruction
    /// needs the full vector for the join operator).
    fn connection_keys(&self, covered: u64, t: usize) -> Option<(Vec<(ColumnId, ColumnId)>, f64)> {
        let mut keys: Vec<(ColumnId, ColumnId)> = Vec::new();
        let mut sel = 1.0;
        for &e in &self.edges_at[t] {
            let ed = &self.edges[e];
            let pair = if ed.ri == t && covered & (1 << ed.li) != 0 {
                (ed.left, ed.right)
            } else if ed.li == t && covered & (1 << ed.ri) != 0 {
                (ed.right, ed.left)
            } else {
                continue;
            };
            keys.push(pair);
            sel *= ed.sel;
        }
        if keys.is_empty() {
            None
        } else {
            Some((keys, sel))
        }
    }

    /// Connected components as bitmasks, ordered by lowest table index.
    fn components(&self) -> Vec<u64> {
        let mut seen = 0u64;
        let mut comps = Vec::new();
        for start in 0..self.n {
            if seen & (1 << start) != 0 {
                continue;
            }
            let mut comp = 1u64 << start;
            loop {
                let mut grown = comp;
                for (i, a) in self.adj.iter().enumerate() {
                    if comp & (1 << i) != 0 {
                        grown |= a;
                    }
                }
                if grown == comp {
                    break;
                }
                comp = grown;
            }
            seen |= comp;
            comps.push(comp);
        }
        comps
    }
}

/// A join's inner side qualifies for index nested loop only when it is a
/// bare base-table scan.
fn nl_inner_table(node: &PlanNode) -> Option<TableId> {
    match node.op {
        PlanOp::SeqScan { table, .. } | PlanOp::IndexScan { table, .. } => Some(table),
        _ => None,
    }
}

impl<'a> Optimizer<'a> {
    /// Creates a planner over the given catalog, knobs and index set.
    /// `stats_seed` fixes the misestimation pattern of the underlying
    /// estimator (shared with the execution model for consistency).
    pub fn new(
        catalog: &'a Catalog,
        knobs: &'a KnobSet,
        indexes: &'a IndexCatalog,
        stats_seed: u64,
    ) -> Self {
        let quality = match knobs.dbms() {
            crate::knobs::Dbms::Postgres => {
                Estimator::quality_from_stats_target(knobs.get_f64("default_statistics_target"))
            }
            crate::knobs::Dbms::Mysql => 0.0,
        };
        let est = Estimator::new(catalog, stats_seed).with_stats_quality(quality);
        let cache = knobs.planner_cache_bytes() as f64;
        let data = catalog.total_bytes() as f64;
        let miss = (1.0 - cache / (cache + data)).clamp(0.05, 1.0);
        let spc = knobs.seq_page_cost();
        let rpc = knobs.random_page_cost();
        let ctc = knobs.cpu_tuple_cost();
        let costs = PlannerCosts {
            seq_page: spc,
            cpu_tuple: ctc,
            cpu_index_tuple: knobs.cpu_index_tuple_cost(),
            cpu_op: ctc * 0.25,
            eff_random_page: spc + (rpc - spc).max(0.0) * miss,
            work_mem_bytes: knobs.work_mem_bytes() as f64,
        };
        Optimizer {
            catalog,
            knobs,
            indexes,
            est,
            costs,
            dp_limit: env_dp_limit(),
        }
    }

    /// Overrides the exact-DP relation limit for this planner instance
    /// (tests and benchmarks; production planning reads `LT_DP_LIMIT` once
    /// per process).
    pub fn with_dp_limit(mut self, limit: usize) -> Self {
        self.dp_limit = limit.clamp(1, DENSE_DP_MAX);
        self
    }

    /// Plans a query. Queries referencing no known table produce a trivial
    /// constant plan.
    pub fn plan(&self, query: &Query) -> Plan {
        let preds = extract(query, self.catalog);
        self.plan_extracted(&preds)
    }

    /// Plans from already-extracted predicates (used by the facade to avoid
    /// re-extraction).
    pub fn plan_extracted(&self, preds: &QueryPredicates) -> Plan {
        self.plan_extracted_with(preds, JoinEnumerator::Auto)
    }

    /// Plans with an explicit join-enumeration strategy.
    pub fn plan_extracted_with(&self, preds: &QueryPredicates, enumerator: JoinEnumerator) -> Plan {
        if preds.tables.is_empty() {
            let root = PlanNode::leaf(PlanOp::Limit { rows: 1 }, 1.0, 0.01, 8.0);
            return Plan {
                root,
                join_costs: Vec::new(),
            };
        }
        let base: Vec<Candidate> = preds
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| Candidate {
                node: self.best_access_path(*t, preds),
                tables: 1 << i,
            })
            .collect();
        let n = base.len();
        let joined = match enumerator {
            JoinEnumerator::Auto => {
                if n <= self.dp_limit {
                    let dp = self.dpccp_join(&base, preds);
                    if n > LEGACY_DP_RELATION_LIMIT {
                        // Greedy can produce bushy trees outside the
                        // left-deep DP space; keeping the cheaper of the two
                        // guarantees no query costs more than under the old
                        // greedy-only fallback.
                        let greedy = self.greedy_join(base, preds);
                        if greedy.node.est_cost < dp.node.est_cost {
                            obs::counter(obs::names::PLANNER_GREEDY_PLANS, 1);
                            greedy
                        } else {
                            dp
                        }
                    } else {
                        dp
                    }
                } else {
                    obs::counter(obs::names::PLANNER_GREEDY_PLANS, 1);
                    self.greedy_join(base, preds)
                }
            }
            JoinEnumerator::Dpccp => {
                if n <= DENSE_DP_MAX {
                    self.dpccp_join(&base, preds)
                } else {
                    self.greedy_join(base, preds)
                }
            }
            JoinEnumerator::NaiveDp => self.naive_dp_join(&base, preds),
            JoinEnumerator::Greedy => self.greedy_join(base, preds),
            JoinEnumerator::Legacy => {
                if n <= LEGACY_DP_RELATION_LIMIT {
                    self.naive_dp_join(&base, preds)
                } else {
                    self.greedy_join(base, preds)
                }
            }
        };
        let mut join_costs = Vec::new();
        self.collect_join_costs(&joined.node, preds, &mut join_costs);
        let mut root = joined.node;
        root = self.maybe_gather(root);
        root = self.finalize(root, preds);
        Plan { root, join_costs }
    }

    // ---- access paths ----

    /// Effective per-page cost of a random fetch under the cache assumption
    /// (resolved once at planner construction; the miss fraction derives
    /// from `effective_cache_size` relative to the database size — a larger
    /// assumed cache makes index scans cheaper).
    fn effective_random_page_cost(&self) -> f64 {
        self.costs.eff_random_page
    }

    fn seq_scan_cost(&self, table: TableId) -> f64 {
        let t = self.catalog.table(table);
        let pages = t.pages(self.catalog) as f64;
        let rows = t.rows as f64;
        pages * self.knobs.seq_page_cost() + rows * self.knobs.cpu_tuple_cost()
    }

    fn index_scan_cost(&self, table: TableId, selectivity: f64) -> f64 {
        let t = self.catalog.table(table);
        let rows = t.rows as f64;
        let pages = t.pages(self.catalog) as f64;
        let fetched_rows = (selectivity * rows).max(1.0);
        // Heap pages touched: one random fetch per row, capped by the heap.
        let heap_pages = fetched_rows.min(pages);
        let descent = (rows.max(2.0)).log2() * self.knobs.cpu_index_tuple_cost() * 10.0;
        descent
            + fetched_rows * self.knobs.cpu_index_tuple_cost()
            + heap_pages * self.effective_random_page_cost()
            + fetched_rows * self.knobs.cpu_tuple_cost()
    }

    /// Chooses the cheapest access path for one base table given its filter
    /// terms and the available indexes.
    fn best_access_path(&self, table: TableId, preds: &QueryPredicates) -> PlanNode {
        let t = self.catalog.table(table);
        let rows = t.rows as f64;
        let width = t.row_width(self.catalog) as f64;
        let empty = Vec::new();
        let terms = preds.filters.get(&table).unwrap_or(&empty);
        let sel = self.est.estimated_table_selectivity(terms);
        let out_rows = (rows * sel).max(1.0);

        let seq = PlanNode::leaf(
            PlanOp::SeqScan {
                table,
                selectivity: sel,
            },
            out_rows,
            self.seq_scan_cost(table),
            width,
        );

        // An index is usable when its leading column carries a sargable
        // filter; the index lookup covers that term's selectivity and the
        // remaining terms filter residually.
        let mut best = seq;
        for term in terms {
            if !sargable(term.kind) {
                continue;
            }
            let Some(index) = self.indexes.with_leading_column(term.column) else {
                continue;
            };
            if index.table != table {
                continue;
            }
            let term_sel = self.est.estimated_table_selectivity(&[*term]);
            let cost = self.index_scan_cost(table, term_sel);
            if cost < best.est_cost {
                best = PlanNode::leaf(
                    PlanOp::IndexScan {
                        table,
                        index: index.id,
                        selectivity: sel,
                    },
                    out_rows,
                    cost,
                    width,
                );
            }
        }
        best
    }

    // ---- join costing (scalar core) ----

    /// Costs every join method for `outer ⋈ inner` and picks the cheapest,
    /// on scalars only. This is the single source of truth for join
    /// arithmetic: the DP memo, the greedy pilot and the final tree
    /// reconstruction all go through it, so memo costs and rebuilt
    /// `PlanNode`s agree bit-for-bit.
    ///
    /// `conn` is the first connecting key pair plus the combined selectivity
    /// of all connecting edges (`None` ⇒ Cartesian product). `nl_inner`
    /// names the inner side's base table when the inner is a bare scan —
    /// the only shape index nested loop applies to.
    fn choose_join(
        &self,
        outer: JoinSide,
        inner: JoinSide,
        conn: Option<(ColumnId, ColumnId, f64)>,
        nl_inner: Option<TableId>,
    ) -> JoinChoice {
        let Some((_okey, ikey, sel)) = conn else {
            // Cartesian product: rows multiply; heavily penalized.
            let rows = (outer.rows * inner.rows).max(1.0);
            let cost = outer.cost + inner.cost + rows * self.costs.cpu_tuple * 4.0;
            return JoinChoice {
                method: JoinMethod::Cross,
                rows,
                cost,
            };
        };
        let out_rows = (outer.rows * inner.rows * sel).max(1.0);
        let cpu_op = self.costs.cpu_op;

        // Hash join: build on the smaller input (we put the build side
        // second, matching PlanOp's convention).
        let (probe, build, swapped) = if outer.rows >= inner.rows {
            (outer, inner, false)
        } else {
            (inner, outer, true)
        };
        let build_bytes = build.rows * build.width;
        let spills = build_bytes > self.costs.work_mem_bytes;
        let mut hash_cost = probe.cost
            + build.cost
            + build.rows * cpu_op * 2.0
            + probe.rows * cpu_op
            + out_rows * self.costs.cpu_tuple * 0.5;
        if spills {
            let spill_pages = (build_bytes + probe.rows * probe.width) / PAGE_SIZE as f64;
            hash_cost += 2.0 * spill_pages * self.costs.seq_page;
        }

        // Merge join: sort both inputs (ignoring interesting orders).
        let sort_cost = |rows: f64| {
            let r = rows.max(2.0);
            r * r.log2() * cpu_op * 2.0
        };
        let merge_cost = outer.cost
            + inner.cost
            + sort_cost(outer.rows)
            + sort_cost(inner.rows)
            + (outer.rows + inner.rows) * cpu_op
            + out_rows * self.costs.cpu_tuple * 0.5;

        let (mut method, mut cost) = if hash_cost <= merge_cost {
            (JoinMethod::Hash { swapped, spills }, hash_cost)
        } else {
            (JoinMethod::Merge, merge_cost)
        };

        // Index nested loop: inner side must be a bare scan of a table with
        // an index on the inner join key.
        if let Some(inner_table) = nl_inner {
            if self.catalog.column(ikey).table == inner_table {
                if let Some(index) = self.indexes.with_leading_column(ikey) {
                    let t = self.catalog.table(inner_table);
                    let inner_rows = t.rows as f64;
                    let matches_per_probe =
                        (inner_rows / self.catalog.column(ikey).ndv.max(1.0)).max(1.0);
                    let descent = (inner_rows.max(2.0)).log2() * self.costs.cpu_index_tuple * 10.0;
                    let per_probe = descent
                        + matches_per_probe
                            * (self.costs.cpu_index_tuple
                                + self.costs.eff_random_page
                                + self.costs.cpu_tuple);
                    let nl_cost = outer.cost + outer.rows * per_probe;
                    if nl_cost < cost {
                        let lookup_sel = (matches_per_probe / inner_rows).clamp(1e-12, 1.0);
                        method = JoinMethod::IndexNl {
                            index: index.id,
                            per_probe,
                            matches_per_probe,
                            lookup_sel,
                        };
                        cost = nl_cost;
                    }
                }
            }
        }

        JoinChoice {
            method,
            rows: out_rows,
            cost,
        }
    }

    /// Builds the plan node for `outer ⋈ inner` with the cheapest method
    /// (the tree-shaped companion of [`Optimizer::choose_join`]).
    fn join_node(
        &self,
        outer: &PlanNode,
        inner: &PlanNode,
        keys: Option<(Vec<(ColumnId, ColumnId)>, f64)>,
    ) -> PlanNode {
        let out_width = outer.width + inner.width;
        let conn = keys.as_ref().map(|(k, sel)| (k[0].0, k[0].1, *sel));
        let choice = self.choose_join(
            JoinSide::of(outer),
            JoinSide::of(inner),
            conn,
            nl_inner_table(inner),
        );
        match choice.method {
            JoinMethod::Cross => PlanNode {
                op: PlanOp::CrossJoin,
                children: vec![outer.clone(), inner.clone()],
                est_rows: choice.rows,
                est_cost: choice.cost,
                width: out_width,
            },
            JoinMethod::Hash { swapped, spills } => {
                let (probe, build) = if swapped {
                    (inner, outer)
                } else {
                    (outer, inner)
                };
                PlanNode {
                    op: PlanOp::HashJoin {
                        keys: keys.expect("hash join requires keys").0,
                        spills,
                    },
                    children: vec![probe.clone(), build.clone()],
                    est_rows: choice.rows,
                    est_cost: choice.cost,
                    width: out_width,
                }
            }
            JoinMethod::Merge => PlanNode {
                op: PlanOp::MergeJoin {
                    keys: keys.expect("merge join requires keys").0,
                },
                children: vec![outer.clone(), inner.clone()],
                est_rows: choice.rows,
                est_cost: choice.cost,
                width: out_width,
            },
            JoinMethod::IndexNl {
                index,
                per_probe,
                matches_per_probe,
                lookup_sel,
            } => {
                let inner_table =
                    nl_inner_table(inner).expect("index NL requires a bare inner scan");
                let inner_leaf = PlanNode::leaf(
                    PlanOp::IndexScan {
                        table: inner_table,
                        index,
                        selectivity: lookup_sel,
                    },
                    matches_per_probe,
                    per_probe,
                    inner.width,
                );
                PlanNode {
                    op: PlanOp::NestLoopJoin {
                        keys: keys.expect("NL join requires keys").0,
                        inner_index: Some(index),
                    },
                    children: vec![outer.clone(), inner_leaf],
                    est_rows: choice.rows,
                    est_cost: choice.cost,
                    width: out_width,
                }
            }
        }
    }

    // ---- join enumeration: DPccp ----

    /// DPccp-style exact DP over connected subsets (left-deep trees).
    ///
    /// Memo layout: `memo[mask]` is the best `(cost, rows, width, split)`
    /// for the table subset `mask`; only connected subsets ever become
    /// non-empty, and the winning tree is reconstructed from `split` chains
    /// at the end — no plan trees are cloned during enumeration.
    ///
    /// Pruning: per connected component, a greedy left-deep pilot chain
    /// (built with the same scalar costing) gives an upper bound `U` on the
    /// component's optimal cost; any subset whose best cost exceeds `U` can
    /// never be a prefix of an optimal chain (costs only grow along a
    /// chain), so its cell stays empty. This is admissible — the plan it
    /// produces is identical to unpruned DP, including tie-breaks.
    fn dpccp_join(&self, base: &[Candidate], preds: &QueryPredicates) -> Candidate {
        let n = base.len();
        if n == 1 {
            return base[0].clone();
        }
        assert!(n <= DENSE_DP_MAX, "dense DP memo capped at {DENSE_DP_MAX}");
        let graph = JoinGraph::build(self.catalog, &self.est, preds);
        let comps = graph.components();
        let mut memo = vec![DpCell::EMPTY; 1usize << n];
        for (i, c) in base.iter().enumerate() {
            memo[1usize << i] = DpCell {
                cost: c.node.est_cost,
                rows: c.node.est_rows,
                width: c.node.width,
                split: i as u8,
            };
        }
        let mut pairs: u64 = 0;
        let mut pruned: u64 = 0;
        for &comp in &comps {
            if comp.count_ones() < 2 {
                continue;
            }
            let bound = self.pilot_bound(&graph, base, comp);
            // Enumerate submasks of the component in ascending numeric
            // order (rest = sub minus one bit is always smaller, so cells
            // are final before use).
            let mut sub: u64 = 0;
            loop {
                sub = sub.wrapping_sub(comp) & comp;
                if sub == 0 {
                    break;
                }
                if sub.count_ones() < 2 {
                    continue;
                }
                let mut best: Option<(usize, JoinChoice)> = None;
                let mut bits = sub;
                while bits != 0 {
                    let t = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let rest = sub & !(1u64 << t);
                    let rest_cell = memo[rest as usize];
                    if rest_cell.is_empty() {
                        continue;
                    }
                    // Cross joins are never enumerated here: a subset with
                    // no connecting edge gets no cell, so a connected join
                    // graph only produces edge-linked plans. Disconnected
                    // graphs are handled below by cross-joining the
                    // per-component winners.
                    let Some((okey, ikey, sel)) = graph.connection_first(rest, t) else {
                        continue;
                    };
                    pairs += 1;
                    let choice = self.choose_join(
                        JoinSide {
                            rows: rest_cell.rows,
                            cost: rest_cell.cost,
                            width: rest_cell.width,
                        },
                        JoinSide::of(&base[t].node),
                        Some((okey, ikey, sel)),
                        nl_inner_table(&base[t].node),
                    );
                    if best
                        .as_ref()
                        .map(|(_, b)| choice.cost < b.cost)
                        .unwrap_or(true)
                    {
                        best = Some((t, choice));
                    }
                }
                if let Some((t, choice)) = best {
                    if choice.cost > bound {
                        pruned += 1;
                        continue;
                    }
                    let rest = sub & !(1u64 << (t as u32));
                    memo[sub as usize] = DpCell {
                        cost: choice.cost,
                        rows: choice.rows,
                        width: memo[rest as usize].width + base[t].node.width,
                        split: t as u8,
                    };
                }
            }
        }
        obs::counter(obs::names::PLANNER_DP_PLANS, 1);
        if pairs > 0 {
            obs::counter(obs::names::PLANNER_CCP_PAIRS, pairs);
            obs::counter(obs::names::PLANNER_CCP_PRUNED, pruned);
        }
        let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let node = if comps.len() == 1 {
            self.rebuild(full, &memo, &graph, base)
        } else {
            // Disconnected join graph: the only way to combine components
            // is a Cartesian product, in component order.
            let mut it = comps.iter();
            let first = *it.next().expect("at least one component");
            let mut acc = self.rebuild(first, &memo, &graph, base);
            for &comp in it {
                let right = self.rebuild(comp, &memo, &graph, base);
                acc = self.join_node(&acc, &right, None);
            }
            acc
        };
        Candidate { node, tables: full }
    }

    /// Greedy left-deep pilot over one component: from every start table,
    /// repeatedly absorb the cheapest connected table; the best chain cost
    /// is an upper bound on the component's optimal left-deep cost.
    fn pilot_bound(&self, graph: &JoinGraph, base: &[Candidate], comp: u64) -> f64 {
        let mut best = f64::INFINITY;
        let mut starts = comp;
        while starts != 0 {
            let s = starts.trailing_zeros() as usize;
            starts &= starts - 1;
            let mut covered = 1u64 << s;
            let mut side = JoinSide::of(&base[s].node);
            let mut dead = false;
            while covered != comp {
                let mut pick: Option<(usize, JoinChoice)> = None;
                let mut rem = comp & !covered;
                while rem != 0 {
                    let t = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    let Some((okey, ikey, sel)) = graph.connection_first(covered, t) else {
                        continue;
                    };
                    let choice = self.choose_join(
                        side,
                        JoinSide::of(&base[t].node),
                        Some((okey, ikey, sel)),
                        nl_inner_table(&base[t].node),
                    );
                    if pick
                        .as_ref()
                        .map(|(_, p)| choice.cost < p.cost)
                        .unwrap_or(true)
                    {
                        pick = Some((t, choice));
                    }
                }
                let Some((t, choice)) = pick else {
                    dead = true;
                    break;
                };
                side = JoinSide {
                    rows: choice.rows,
                    cost: choice.cost,
                    width: side.width + base[t].node.width,
                };
                covered |= 1 << t;
            }
            if !dead && side.cost < best {
                best = side.cost;
            }
        }
        best
    }

    /// Reconstructs the winning plan tree for `mask` from the memo's split
    /// chain, re-deriving each join through [`Optimizer::join_node`] so the
    /// rebuilt nodes carry exactly the costs the DP computed.
    fn rebuild(
        &self,
        mask: u64,
        memo: &[DpCell],
        graph: &JoinGraph,
        base: &[Candidate],
    ) -> PlanNode {
        if mask.count_ones() == 1 {
            return base[mask.trailing_zeros() as usize].node.clone();
        }
        let cell = memo[mask as usize];
        debug_assert!(!cell.is_empty(), "rebuilding an empty DP cell");
        let t = cell.split as usize;
        let rest = mask & !(1u64 << t);
        let left = self.rebuild(rest, memo, graph, base);
        let keys = graph
            .connection_keys(rest, t)
            .expect("a DP cell implies a connection");
        let node = self.join_node(&left, &base[t].node, Some(keys));
        debug_assert_eq!(
            node.est_cost.to_bits(),
            cell.cost.to_bits(),
            "rebuilt node cost drifted from DP memo"
        );
        node
    }

    // ---- join enumeration: legacy ----

    /// Join edges connecting a covered set to a new base table; returns
    /// every `(outer key, inner key)` pair plus the combined selectivity of
    /// all connecting edges. (Legacy enumerator path; DPccp uses the
    /// preprocessed [`JoinGraph`].)
    fn connection(
        &self,
        covered: u64,
        next: usize,
        preds: &QueryPredicates,
    ) -> Option<(Vec<(ColumnId, ColumnId)>, f64)> {
        let next_table = preds.tables[next];
        let mut keys: Vec<(ColumnId, ColumnId)> = Vec::new();
        let mut sel = 1.0;
        for edge in &preds.joins {
            let lt = self.catalog.column(edge.left).table;
            let rt = self.catalog.column(edge.right).table;
            let l_idx = preds.tables.iter().position(|t| *t == lt);
            let r_idx = preds.tables.iter().position(|t| *t == rt);
            let (Some(li), Some(ri)) = (l_idx, r_idx) else {
                continue;
            };
            let l_in = covered & (1 << li) != 0;
            let r_in = covered & (1 << ri) != 0;
            if l_in && rt == next_table {
                keys.push((edge.left, edge.right));
                sel *= self.est.estimated_join_selectivity(*edge);
            } else if r_in && lt == next_table {
                keys.push((edge.right, edge.left));
                sel *= self.est.estimated_join_selectivity(*edge);
            }
        }
        if keys.is_empty() {
            None
        } else {
            Some((keys, sel))
        }
    }

    /// The pre-DPccp exact DP: all-subsets enumeration with a `HashMap` of
    /// cloned plan trees. Kept verbatim (minus the join-cost side channel)
    /// as the baseline for `planner_bench` and the equivalence property
    /// suite.
    fn naive_dp_join(&self, base: &[Candidate], preds: &QueryPredicates) -> Candidate {
        let n = base.len();
        if n == 1 {
            return base[0].clone();
        }
        let mut best: HashMap<u64, Candidate> = HashMap::new();
        for c in base {
            best.insert(c.tables, c.clone());
        }
        for size in 2..=n {
            for mask in 1u64..(1 << n) {
                if mask.count_ones() as usize != size {
                    continue;
                }
                let mut best_for_mask: Option<Candidate> = None;
                for (next, base_entry) in base.iter().enumerate() {
                    if mask & (1 << next) == 0 {
                        continue;
                    }
                    let rest = mask & !(1 << next);
                    let Some(left) = best.get(&rest) else {
                        continue;
                    };
                    let Some(keys) = self.connection(rest, next, preds) else {
                        continue;
                    };
                    let node = self.join_node(&left.node, &base_entry.node, Some(keys));
                    if best_for_mask
                        .as_ref()
                        .map(|b| node.est_cost < b.node.est_cost)
                        .unwrap_or(true)
                    {
                        best_for_mask = Some(Candidate { node, tables: mask });
                    }
                }
                if let Some(b) = best_for_mask {
                    best.insert(mask, b);
                }
            }
        }
        let full = (1u64 << n) - 1;
        match best.remove(&full) {
            Some(w) => w,
            None => {
                // The join graph is disconnected: every connected component
                // has a DP winner (single tables are base entries), and the
                // only way to combine components is a Cartesian product.
                let mut comps = self.components(n, preds).into_iter();
                let first = comps.next().expect("at least one component");
                let mut acc = best.remove(&first).expect("component winner exists");
                for comp in comps {
                    let right = best.remove(&comp).expect("component winner exists");
                    let node = self.join_node(&acc.node, &right.node, None);
                    acc = Candidate {
                        node,
                        tables: acc.tables | comp,
                    };
                }
                acc
            }
        }
    }

    /// Connected components of the join graph, as bitmasks over
    /// `preds.tables` indices, ordered by their lowest table index.
    fn components(&self, n: usize, preds: &QueryPredicates) -> Vec<u64> {
        let mut adj = vec![0u64; n];
        for edge in &preds.joins {
            let lt = self.catalog.column(edge.left).table;
            let rt = self.catalog.column(edge.right).table;
            let li = preds.tables.iter().position(|t| *t == lt);
            let ri = preds.tables.iter().position(|t| *t == rt);
            let (Some(li), Some(ri)) = (li, ri) else {
                continue;
            };
            if li != ri {
                adj[li] |= 1 << ri;
                adj[ri] |= 1 << li;
            }
        }
        let mut seen = 0u64;
        let mut comps = Vec::new();
        for start in 0..n {
            if seen & (1 << start) != 0 {
                continue;
            }
            let mut comp = 1u64 << start;
            loop {
                let mut grown = comp;
                for (i, a) in adj.iter().enumerate() {
                    if comp & (1 << i) != 0 {
                        grown |= a;
                    }
                }
                if grown == comp {
                    break;
                }
                comp = grown;
            }
            seen |= comp;
            comps.push(comp);
        }
        comps
    }

    /// Greedy fallback for very wide joins: repeatedly merge the pair with
    /// the smallest result cost.
    fn greedy_join(&self, mut cands: Vec<Candidate>, preds: &QueryPredicates) -> Candidate {
        while cands.len() > 1 {
            // A connected pair always beats a cross join, whatever the
            // costs; cross joins only happen once the remaining candidates
            // are mutually disconnected (separate join-graph components).
            let mut best: Option<(usize, usize, PlanNode, bool)> = None;
            for i in 0..cands.len() {
                for j in 0..cands.len() {
                    if i == j {
                        continue;
                    }
                    let keys = self.connection_between(cands[i].tables, cands[j].tables, preds);
                    let connected = keys.is_some();
                    if !connected && best.as_ref().is_some_and(|(_, _, _, c)| *c) {
                        continue;
                    }
                    let node = self.join_node(&cands[i].node, &cands[j].node, keys);
                    let better = match &best {
                        None => true,
                        Some((_, _, b, best_conn)) => {
                            (connected && !best_conn)
                                || (connected == *best_conn && node.est_cost < b.est_cost)
                        }
                    };
                    if better {
                        best = Some((i, j, node, connected));
                    }
                }
            }
            let (i, j, node, _) = best.expect("at least one pair exists");
            let tables = cands[i].tables | cands[j].tables;
            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
            cands.swap_remove(hi);
            cands.swap_remove(lo);
            cands.push(Candidate { node, tables });
        }
        cands.pop().expect("one candidate remains")
    }

    fn connection_between(
        &self,
        left_set: u64,
        right_set: u64,
        preds: &QueryPredicates,
    ) -> Option<(Vec<(ColumnId, ColumnId)>, f64)> {
        let mut keys: Vec<(ColumnId, ColumnId)> = Vec::new();
        let mut sel = 1.0;
        for edge in &preds.joins {
            let lt = self.catalog.column(edge.left).table;
            let rt = self.catalog.column(edge.right).table;
            let li = preds.tables.iter().position(|t| *t == lt);
            let ri = preds.tables.iter().position(|t| *t == rt);
            let (Some(li), Some(ri)) = (li, ri) else {
                continue;
            };
            let l_left = left_set & (1 << li) != 0;
            let r_right = right_set & (1 << ri) != 0;
            let l_right = right_set & (1 << li) != 0;
            let r_left = left_set & (1 << ri) != 0;
            if l_left && r_right {
                keys.push((edge.left, edge.right));
                sel *= self.est.estimated_join_selectivity(*edge);
            } else if l_right && r_left {
                keys.push((edge.right, edge.left));
                sel *= self.est.estimated_join_selectivity(*edge);
            }
        }
        if keys.is_empty() {
            None
        } else {
            Some((keys, sel))
        }
    }

    /// Re-derives per-join-condition incremental costs from the final tree
    /// (the DP explores many candidates; only the winner's joins count).
    fn collect_join_costs(
        &self,
        node: &PlanNode,
        _preds: &QueryPredicates,
        out: &mut Vec<(ColumnId, ColumnId, f64)>,
    ) {
        node.visit(&mut |n| {
            let child_cost: f64 = n.children.iter().map(|c| c.est_cost).sum();
            match &n.op {
                PlanOp::HashJoin { keys, .. }
                | PlanOp::MergeJoin { keys }
                | PlanOp::NestLoopJoin { keys, .. } => {
                    let incremental = (n.est_cost - child_cost).max(0.0);
                    for (l, r) in keys {
                        out.push((*l, *r, incremental));
                    }
                }
                _ => {}
            }
        });
    }

    // ---- post-join operators ----

    /// Wraps the plan in a Gather when parallel workers are configured and
    /// the input is large enough to benefit (PostgreSQL's
    /// `min_parallel_table_scan_size` analogue).
    fn maybe_gather(&self, node: PlanNode) -> PlanNode {
        let workers = self.knobs.parallel_workers();
        if workers == 0 {
            return node;
        }
        let biggest_pages = node
            .scanned_tables()
            .iter()
            .map(|t| self.catalog.table(*t).pages(self.catalog))
            .max()
            .unwrap_or(0);
        if biggest_pages < 1024 {
            return node;
        }
        let speedup = 1.0 + 0.7 * workers as f64;
        let est_rows = node.est_rows;
        let width = node.width;
        let cost = node.est_cost / speedup + 100.0 * workers as f64 * self.knobs.cpu_tuple_cost();
        PlanNode {
            op: PlanOp::Gather { workers },
            children: vec![node],
            est_rows,
            est_cost: cost,
            width,
        }
    }

    fn finalize(&self, mut node: PlanNode, preds: &QueryPredicates) -> PlanNode {
        let cpu_op = self.knobs.cpu_tuple_cost() * 0.25;
        if preds.has_aggregates || preds.group_by_columns > 0 {
            let grouped = preds.group_by_columns > 0;
            let in_rows = node.est_rows;
            let out_rows = if grouped {
                (in_rows * 0.1).max(1.0)
            } else {
                1.0
            };
            let cost = node.est_cost + in_rows * cpu_op * 2.0;
            let width = node.width.min(64.0);
            node = PlanNode {
                op: PlanOp::Aggregate { grouped },
                children: vec![node],
                est_rows: out_rows,
                est_cost: cost,
                width,
            };
        }
        if preds.order_by_columns > 0 {
            let rows = node.est_rows.max(2.0);
            let bytes = rows * node.width;
            let spills = bytes > self.knobs.work_mem_bytes() as f64;
            let mut cost = node.est_cost + rows * rows.log2() * cpu_op;
            if spills {
                cost += 2.0 * (bytes / PAGE_SIZE as f64) * self.knobs.seq_page_cost();
            }
            let est_rows = node.est_rows;
            let width = node.width;
            node = PlanNode {
                op: PlanOp::Sort { spills },
                children: vec![node],
                est_rows,
                est_cost: cost,
                width,
            };
        }
        if let Some(limit) = preds.limit {
            let est_rows = node.est_rows.min(limit as f64);
            let cost = node.est_cost;
            let width = node.width;
            node = PlanNode {
                op: PlanOp::Limit { rows: limit },
                children: vec![node],
                est_rows,
                est_cost: cost,
                width,
            };
        }
        node
    }
}

/// Filter kinds an index lookup can serve.
fn sargable(kind: FilterKind) -> bool {
    matches!(
        kind,
        FilterKind::Equality
            | FilterKind::Range
            | FilterKind::Between
            | FilterKind::InList(_)
            | FilterKind::LikePrefix
            | FilterKind::SemiJoin
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::{Dbms, KnobSet};
    use lt_sql::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table("lineitem", 6_000_000)
            .primary_key("l_orderkey", 8)
            .foreign_key("l_partkey", 8, 200_000.0)
            .column("l_shipdate", 4, 2_500.0)
            .column("l_extendedprice", 8, 900_000.0)
            .finish();
        c.add_table("orders", 1_500_000)
            .primary_key("o_orderkey", 8)
            .foreign_key("o_custkey", 8, 150_000.0)
            .column("o_orderdate", 4, 2_400.0)
            .finish();
        c.add_table("customer", 150_000)
            .primary_key("c_custkey", 8)
            .column("c_mktsegment", 10, 5.0)
            .finish();
        c
    }

    fn plan_sql(c: &Catalog, knobs: &KnobSet, idx: &IndexCatalog, sql: &str) -> Plan {
        let q = parse_query(sql).unwrap();
        Optimizer::new(c, knobs, idx, 42).plan(&q)
    }

    #[test]
    fn single_table_seq_scan_by_default() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from customer where c_mktsegment = 'A'",
        );
        assert!(
            matches!(p.root.op, PlanOp::SeqScan { .. }),
            "{}",
            p.explain()
        );
    }

    #[test]
    fn index_scan_when_selective_and_cheap_random_io() {
        let c = catalog();
        let mut knobs = KnobSet::defaults(Dbms::Postgres);
        knobs.set_text("random_page_cost", "1.1").unwrap();
        knobs.set_text("effective_cache_size", "45GB").unwrap();
        let mut idx = IndexCatalog::new();
        let col = c.resolve_column(None, "o_orderkey").unwrap();
        let t = c.table_by_name("orders").unwrap();
        idx.add(t, vec![col], None);
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from orders where o_orderkey = 42",
        );
        // Highly selective equality + index + cheap random IO ⇒ index scan.
        let has_index_scan = p.root.used_indexes().len() == 1;
        assert!(has_index_scan, "{}", p.explain());
    }

    #[test]
    fn high_random_page_cost_discourages_index() {
        let c = catalog();
        let mut knobs = KnobSet::defaults(Dbms::Postgres);
        knobs.set_text("random_page_cost", "1000").unwrap();
        knobs.set_text("effective_cache_size", "8kB").unwrap();
        let mut idx = IndexCatalog::new();
        let col = c.resolve_column(None, "l_shipdate").unwrap();
        let t = c.table_by_name("lineitem").unwrap();
        idx.add(t, vec![col], None);
        // A between filter touches ~12% of rows; with absurd random IO cost
        // the seq scan must win.
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from lineitem where l_shipdate between date '1994-01-01' and date '1994-03-01'",
        );
        assert!(p.root.used_indexes().is_empty(), "{}", p.explain());
    }

    #[test]
    fn join_plan_covers_all_tables() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from lineitem l, orders o, customer cu \
             where l.l_orderkey = o.o_orderkey and o.o_custkey = cu.c_custkey",
        );
        let tables = p.root.scanned_tables();
        assert_eq!(tables.len(), 3, "{}", p.explain());
        // Two join conditions → two join cost entries.
        assert_eq!(p.join_costs.len(), 2, "{:?}", p.join_costs);
    }

    #[test]
    fn work_mem_affects_spill_flag() {
        let c = catalog();
        let mut small = KnobSet::defaults(Dbms::Postgres);
        small.set_text("work_mem", "64kB").unwrap();
        let mut big = KnobSet::defaults(Dbms::Postgres);
        big.set_text("work_mem", "8GB").unwrap();
        let idx = IndexCatalog::new();
        let sql = "select * from lineitem, orders where l_orderkey = o_orderkey";
        let p_small = plan_sql(&c, &small, &idx, sql);
        let p_big = plan_sql(&c, &big, &idx, sql);
        let spill_of = |p: &Plan| {
            let mut spilled = false;
            p.root.visit(&mut |n| {
                if let PlanOp::HashJoin { spills, .. } = n.op {
                    spilled |= spills;
                }
            });
            spilled
        };
        // With 8GB of work memory nothing spills; the big plan must also be
        // cheaper.
        assert!(!spill_of(&p_big), "{}", p_big.explain());
        assert!(p_big.total_cost() <= p_small.total_cost());
    }

    #[test]
    fn aggregates_sort_and_limit_are_added() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select o_orderdate, count(*) from orders group by o_orderdate \
             order by o_orderdate limit 10",
        );
        let text = p.explain();
        assert!(text.contains("Limit"), "{text}");
        assert!(text.contains("Sort"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn parallel_workers_add_gather() {
        let c = catalog();
        let mut knobs = KnobSet::defaults(Dbms::Postgres);
        knobs
            .set_text("max_parallel_workers_per_gather", "4")
            .unwrap();
        let idx = IndexCatalog::new();
        let p = plan_sql(&c, &knobs, &idx, "select count(*) from lineitem");
        assert!(p.explain().contains("Gather"), "{}", p.explain());

        let mut no_par = KnobSet::defaults(Dbms::Postgres);
        no_par
            .set_text("max_parallel_workers_per_gather", "0")
            .unwrap();
        let p2 = plan_sql(&c, &no_par, &idx, "select count(*) from lineitem");
        assert!(!p2.explain().contains("Gather"), "{}", p2.explain());
    }

    #[test]
    fn nestloop_with_index_for_fk_join() {
        let c = catalog();
        let mut knobs = KnobSet::defaults(Dbms::Postgres);
        knobs.set_text("random_page_cost", "1.1").unwrap();
        knobs.set_text("effective_cache_size", "45GB").unwrap();
        let mut idx = IndexCatalog::new();
        let t = c.table_by_name("customer").unwrap();
        let col = c.resolve_column(None, "c_custkey").unwrap();
        idx.add(t, vec![col], None);
        // Small filtered orders side probing customer by PK: NL-index wins.
        let p = plan_sql(
            &c,
            &knobs,
            &idx,
            "select * from orders, customer where o_custkey = c_custkey \
             and o_orderdate = date '1995-01-01'",
        );
        let mut has_nl = false;
        p.root.visit(&mut |n| {
            if matches!(
                n.op,
                PlanOp::NestLoopJoin {
                    inner_index: Some(_),
                    ..
                }
            ) {
                has_nl = true;
            }
        });
        assert!(has_nl, "{}", p.explain());
    }

    #[test]
    fn query_without_known_tables_yields_trivial_plan() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let p = plan_sql(&c, &knobs, &idx, "select * from unknown_table");
        assert_eq!(p.root.node_count(), 1);
    }

    #[test]
    fn plans_are_deterministic() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let sql = "select * from lineitem, orders, customer \
                   where l_orderkey = o_orderkey and o_custkey = c_custkey";
        let p1 = plan_sql(&c, &knobs, &idx, sql);
        let p2 = plan_sql(&c, &knobs, &idx, sql);
        assert_eq!(p1, p2);
    }

    #[test]
    fn dpccp_matches_naive_dp_on_small_queries() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let sql = "select * from lineitem l, orders o, customer cu \
                   where l.l_orderkey = o.o_orderkey and o.o_custkey = cu.c_custkey";
        let q = parse_query(sql).unwrap();
        let opt = Optimizer::new(&c, &knobs, &idx, 42);
        let preds = extract(&q, &c);
        let a = opt.plan_extracted_with(&preds, JoinEnumerator::Dpccp);
        let b = opt.plan_extracted_with(&preds, JoinEnumerator::NaiveDp);
        assert_eq!(a, b, "DPccp and naive DP must produce identical plans");
    }

    #[test]
    fn dpccp_matches_naive_dp_with_cross_join_components() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        // lineitem–orders connected; customer is an island → cross join.
        let sql = "select * from lineitem, orders, customer where l_orderkey = o_orderkey";
        let q = parse_query(sql).unwrap();
        let opt = Optimizer::new(&c, &knobs, &idx, 42);
        let preds = extract(&q, &c);
        let a = opt.plan_extracted_with(&preds, JoinEnumerator::Dpccp);
        let b = opt.plan_extracted_with(&preds, JoinEnumerator::NaiveDp);
        assert_eq!(a, b);
        let mut crosses = 0;
        a.root.visit(&mut |n| {
            if matches!(n.op, PlanOp::CrossJoin) {
                crosses += 1;
            }
        });
        assert_eq!(crosses, 1, "{}", a.explain());
    }

    #[test]
    fn dp_limit_override_forces_greedy() {
        let c = catalog();
        let knobs = KnobSet::defaults(Dbms::Postgres);
        let idx = IndexCatalog::new();
        let sql = "select * from lineitem l, orders o, customer cu \
                   where l.l_orderkey = o.o_orderkey and o.o_custkey = cu.c_custkey";
        let q = parse_query(sql).unwrap();
        let preds = extract(&q, &c);
        let opt = Optimizer::new(&c, &knobs, &idx, 42).with_dp_limit(2);
        let auto = opt.plan_extracted_with(&preds, JoinEnumerator::Auto);
        let greedy = opt.plan_extracted_with(&preds, JoinEnumerator::Greedy);
        assert_eq!(auto, greedy, "3 relations > limit 2 must plan greedily");
    }
}
